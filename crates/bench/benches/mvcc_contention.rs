//! Mixed-workload contention bench: N reader threads run prepared point
//! selects **against a continuously committing writer**. The headline MVCC
//! numbers: aggregate reader ops/s per thread count and — the property this
//! subsystem exists for — a reader error count that must be **zero** (before
//! MVCC, every reader racing the writer's table lock got a retryable
//! `LockConflict`, so this column counted thousands and every service caller
//! carried a retry loop).
//!
//! The writer loops single-row autocommit UPDATEs for the whole measurement
//! window; its commit count is reported so runs are comparable. On a
//! single-core host aggregate throughput stays flat as threads are added;
//! run on a multi-core machine (e.g. the CI runners) to see the scaling.

use relstore::{Database, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

const ROWS: i64 = 5_000;

fn setup_db() -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    db.execute("CREATE INDEX ON jobs (state)").unwrap();
    let ins = db
        .prepare("INSERT INTO jobs VALUES (?, ?, 'idle', 60000)")
        .unwrap();
    db.session()
        .execute_batch(&ins, (0..ROWS).map(|i| (i, format!("user{}", i % 50))))
        .unwrap();
    db
}

struct Run {
    ops: u64,
    reader_errors: u64,
    writer_commits: u64,
    secs: f64,
}

/// Drives `threads` readers for `iters_per_thread` point selects each while
/// one writer thread commits updates in a loop until the readers finish.
fn run_contended(db: &Database, threads: usize, iters_per_thread: u64) -> Run {
    let select = db.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
    let update = db
        .prepare("UPDATE jobs SET runtime_ms = runtime_ms + 1, state = ? WHERE job_id = ?")
        .unwrap();
    let stop_writer = AtomicBool::new(false);
    let reader_errors = AtomicU64::new(0);
    let writer_commits = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 2);
    let mut secs = 0.0f64;
    std::thread::scope(|s| {
        let mut readers = Vec::with_capacity(threads);
        for t in 0..threads {
            let select = select.clone();
            let (barrier, reader_errors) = (&barrier, &reader_errors);
            readers.push(s.spawn(move || {
                barrier.wait();
                for i in 0..iters_per_thread {
                    let id = ((t as u64 * 2_654_435_761 + i * 40_503) % ROWS as u64) as i64;
                    match db.query_prepared(&select, &[Value::Int(id)]) {
                        Ok(r) => {
                            std::hint::black_box(r);
                        }
                        Err(_) => {
                            reader_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
        let writer = {
            let (barrier, stop_writer, writer_commits) =
                (&barrier, &stop_writer, &writer_commits);
            let update = update.clone();
            s.spawn(move || {
                barrier.wait();
                let mut i = 0u64;
                while !stop_writer.load(Ordering::Relaxed) {
                    let id = (i % ROWS as u64) as i64;
                    let state = if i.is_multiple_of(2) { "busy" } else { "idle" };
                    db.execute_prepared(&update, &[Value::from(state), Value::Int(id)])
                        .expect("the only writer cannot conflict");
                    writer_commits.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        };
        barrier.wait();
        let start = Instant::now();
        for handle in readers {
            handle.join().unwrap();
        }
        secs = start.elapsed().as_secs_f64();
        stop_writer.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });
    Run {
        ops: threads as u64 * iters_per_thread,
        reader_errors: reader_errors.load(Ordering::Relaxed),
        writer_commits: writer_commits.load(Ordering::Relaxed),
        secs,
    }
}

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "MVCC contention: prepared point selects vs a continuous writer, \
         {ROWS}-row jobs table, host parallelism = {parallelism}"
    );
    let db = setup_db();

    // Warm the statement cache and branch predictors.
    let _ = run_contended(&db, 1, 2_000);

    let total_iters = 200_000u64;
    let mut failed = false;
    for &threads in &[1usize, 2, 4, 8] {
        let iters = (total_iters / threads as u64).max(1);
        let run = run_contended(&db, threads, iters);
        println!(
            "mvcc_point_select_vs_writer threads={threads}  {:>12.0} reader ops/s  \
             {:>10.1} ns/op  reader errors {}  writer commits {:>7}",
            run.ops as f64 / run.secs,
            run.secs * 1e9 / (run.ops / threads as u64) as f64,
            run.reader_errors,
            run.writer_commits,
        );
        if run.reader_errors != 0 {
            failed = true;
        }
    }
    // Version-store bookkeeping for the run: how much vacuum kept up with.
    let stats = db.stats();
    println!(
        "version store: created {} vacuumed {} max chain {} snapshots {}",
        stats.versions_created,
        stats.versions_vacuumed,
        stats.max_version_chain,
        stats.snapshots_taken,
    );
    db.check_consistency().expect("consistency after contention");
    assert!(
        !failed,
        "MVCC readers must finish with ZERO errors against a committing writer"
    );
}
