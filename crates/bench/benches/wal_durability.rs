//! Insert throughput under each durability mode: the price of an fsync per
//! commit vs an fsync per window vs none at all.
//!
//! `mem_baseline` is the embedded in-memory engine (no durable device);
//! `fs_always` forces the log on every commit; `fs_batch_8` syncs once per
//! 8 commits; `fs_checkpoint_only` never syncs on the commit path. The
//! gap between `mem_baseline` and `fs_checkpoint_only` is the cost of
//! encoding + appending records to a file; the gap up to `fs_always` is
//! almost entirely fsync latency.

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::{Database, DurabilityPolicy};
use std::hint::black_box;
use std::path::PathBuf;

const INSERTS: i64 = 32;

fn temp_log(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "relstore_bench_wal_{}_{}.wal",
        tag,
        std::process::id()
    ))
}

fn setup(db: &Database) {
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT, state TEXT)").unwrap();
}

/// One iteration: INSERTS autocommit inserts (each its own commit), then a
/// wipe so every iteration starts empty.
fn run_inserts(db: &Database, ins: &relstore::Prepared, wipe: &relstore::Prepared) {
    let mut sql = db.session();
    for i in 0..INSERTS {
        sql.execute(black_box(ins), (i, "user", "idle")).unwrap();
    }
    sql.execute(wipe, ()).unwrap();
}

fn bench_wal_durability(c: &mut Criterion) {
    let cases: Vec<(&str, Database, Option<PathBuf>)> = vec![
        ("mem_baseline", Database::new(), None),
        {
            let path = temp_log("always");
            let _ = std::fs::remove_file(&path);
            (
                "fs_always",
                Database::open_durable_with(&path, DurabilityPolicy::Always).unwrap(),
                Some(path),
            )
        },
        {
            let path = temp_log("batch8");
            let _ = std::fs::remove_file(&path);
            (
                "fs_batch_8",
                Database::open_durable_with(&path, DurabilityPolicy::Batch(8)).unwrap(),
                Some(path),
            )
        },
        {
            let path = temp_log("ckpt");
            let _ = std::fs::remove_file(&path);
            (
                "fs_checkpoint_only",
                Database::open_durable_with(&path, DurabilityPolicy::Checkpoint).unwrap(),
                Some(path),
            )
        },
    ];

    for (name, db, path) in &cases {
        setup(db);
        let ins = db.prepare("INSERT INTO jobs VALUES (?, ?, ?)").unwrap();
        let wipe = db.prepare("DELETE FROM jobs").unwrap();
        c.bench_function(&format!("wal_insert_{INSERTS}_{name}"), |b| {
            b.iter(|| run_inserts(db, &ins, &wipe))
        });
        // Keep the log from growing across the whole run: compact it once
        // per benchmarked mode (also exercises rotation under load).
        if db.is_durable() {
            db.checkpoint().unwrap();
        }
        if let Some(p) = path {
            let _ = std::fs::remove_file(p);
        }
    }
}

criterion_group!(benches, bench_wal_durability);
criterion_main!(benches);
