//! Paged storage engine benchmarks: point selects and scans with the
//! dataset roughly 10× the buffer pool (so the cold numbers include real
//! eviction traffic), the same shapes with a pool-resident hot set, and
//! inserts under continuous eviction pressure.
//!
//! The paged database here lives on in-memory block devices — the numbers
//! isolate the page-format, buffer-pool and WAL-coupling overhead rather
//! than disk latency.

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::{Database, DurabilityPolicy, MemBlockDevice, MemDevice, PagedConfig, Value};
use std::hint::black_box;

const ROWS: usize = 5_000;

/// ~64 rows per 4 KiB page → 5 000 rows ≈ 80 heap pages; an 8-frame pool
/// keeps roughly a tenth of the dataset resident.
fn paged_db(pool_pages: usize) -> Database {
    let db = Database::open_paged_with_devices(
        Box::new(MemDevice::new()),
        Box::new(MemBlockDevice::new()),
        Box::new(MemDevice::new()),
        DurabilityPolicy::Always,
        PagedConfig {
            page_size: 4096,
            pool_pages,
        },
    )
    .unwrap();
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    let ins = db.prepare("INSERT INTO jobs VALUES (?, ?, ?, ?)").unwrap();
    db.session()
        .execute_batch(
            &ins,
            (0..ROWS as i64).map(|i| (i, format!("user{}", i % 50), "idle", 60_000i64)),
        )
        .unwrap();
    db
}

fn bench_page_store(c: &mut Criterion) {
    // Dataset ≈ 10× pool: queries run against the in-memory catalog while
    // every commit streams through the pool, so the interesting numbers are
    // the write-side ones — but the reads confirm the paged engine stays
    // out of the read path entirely.
    let small_pool = paged_db(8);
    c.bench_function("paged_point_select_cold_pool", |b| {
        let q = small_pool.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
        let params = [Value::Int(2500)];
        b.iter(|| small_pool.query_prepared(black_box(&q), black_box(&params)).unwrap())
    });
    c.bench_function("paged_scan_cold_pool", |b| {
        b.iter(|| {
            small_pool
                .query(black_box("SELECT COUNT(*) FROM jobs WHERE state = 'idle'"))
                .unwrap()
        })
    });

    let warm_pool = paged_db(128);
    c.bench_function("paged_point_select_warm_pool", |b| {
        let q = warm_pool.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
        let params = [Value::Int(2500)];
        b.iter(|| warm_pool.query_prepared(black_box(&q), black_box(&params)).unwrap())
    });

    // Insert throughput with an 8-frame pool: every batch of commits forces
    // evictions, so this is page write-back + journal + WAL coupling.
    c.bench_function("paged_insert_under_eviction", |b| {
        let db = paged_db(8);
        let ins = db.prepare("INSERT INTO jobs VALUES (?, ?, ?, ?)").unwrap();
        let mut next = ROWS as i64;
        b.iter(|| {
            db.execute_prepared(
                black_box(&ins),
                &[
                    Value::Int(next),
                    Value::Text("userX".into()),
                    Value::Text("idle".into()),
                    Value::Int(60_000),
                ],
            )
            .unwrap();
            next += 1;
        })
    });

    // The same insert against the purely in-memory engine: the gap is the
    // full cost of the paged mirror.
    c.bench_function("inmem_insert_baseline", |b| {
        let db = Database::new();
        db.execute(
            "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
        )
        .unwrap();
        let ins = db.prepare("INSERT INTO jobs VALUES (?, ?, ?, ?)").unwrap();
        let mut next = 0i64;
        b.iter(|| {
            db.execute_prepared(
                black_box(&ins),
                &[
                    Value::Int(next),
                    Value::Text("userX".into()),
                    Value::Text("idle".into()),
                    Value::Int(60_000),
                ],
            )
            .unwrap();
            next += 1;
        })
    });
}

criterion_group!(benches, bench_page_store);
criterion_main!(benches);
