//! Figure 11/12/15/16 bench: the mixed workload on CondorJ2 and on Condor
//! with and without the per-schedd running-job limit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::{condor_mixed_workload, condorj2_mixed_workload, Scale};

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_workload");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("fig11_12_condorj2_quick", |b| {
        b.iter(|| condorj2_mixed_workload(Scale::Quick, 1))
    });
    group.bench_function("fig15_condor_unlimited_quick", |b| {
        b.iter(|| condor_mixed_workload(Scale::Quick, false, 1))
    });
    group.bench_function("fig16_condor_limited_quick", |b| {
        b.iter(|| condor_mixed_workload(Scale::Quick, true, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
