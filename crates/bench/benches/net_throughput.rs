//! Network throughput bench: prepared point selects over loopback TCP at
//! 1/2/4/8 client threads, against the in-process `Session` baseline on the
//! same table. The interesting numbers are (a) the per-op cost of one wire
//! round trip vs an embedded call and (b) how aggregate remote throughput
//! scales as client threads are added (each client is its own connection,
//! served by its own worker thread).
//!
//! Batching is the wire's answer to round-trip cost, so the bench also
//! measures a 64-select `query_batch` pipeline — one request frame, one
//! shared server-side guard — against 64 single-query round trips.

use relstore::Database;
use std::sync::Arc;
use std::time::Instant;
use wire::{serve_with, Client, ServerConfig};

const ROWS: i64 = 5_000;

fn setup_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    let ins = db
        .prepare("INSERT INTO jobs VALUES (?, ?, 'idle', 60000)")
        .unwrap();
    db.session()
        .execute_batch(&ins, (0..ROWS).map(|i| (i, format!("user{}", i % 50))))
        .unwrap();
    db
}

/// In-process baseline: single-thread prepared point selects via Session.
fn bench_in_process(db: &Database, iters: u64) -> f64 {
    let select = db.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
    let mut session = db.session();
    let start = Instant::now();
    for i in 0..iters {
        let id = ((i * 40_503) % ROWS as u64) as i64;
        let r = session.query(&select, (id,)).unwrap();
        std::hint::black_box(r);
    }
    start.elapsed().as_secs_f64()
}

/// `threads` clients, each on its own connection, doing point selects.
fn bench_remote(addr: std::net::SocketAddr, threads: usize, iters_per_thread: u64) -> f64 {
    let barrier = std::sync::Barrier::new(threads + 1);
    let mut secs = 0.0;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let select = client
                    .prepare("SELECT * FROM jobs WHERE job_id = ?")
                    .unwrap();
                barrier.wait();
                for i in 0..iters_per_thread {
                    let id = ((t as u64 * 2_654_435_761 + i * 40_503) % ROWS as u64) as i64;
                    let r = client.query(select, (id,)).unwrap();
                    std::hint::black_box(r);
                }
            }));
        }
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            handle.join().unwrap();
        }
        secs = start.elapsed().as_secs_f64();
    });
    secs
}

/// One 64-select pipelined batch per iteration vs 64 single round trips.
fn bench_remote_batch(addr: std::net::SocketAddr, iters: u64) -> (f64, f64) {
    let mut client = Client::connect(addr).unwrap();
    let select = client
        .prepare("SELECT owner FROM jobs WHERE job_id = ?")
        .unwrap();
    let bindings: Vec<(i64,)> = (0..64i64).map(|i| ((i * 79) % ROWS,)).collect();

    let start = Instant::now();
    for _ in 0..iters {
        let results = client.query_batch(select, bindings.clone()).unwrap();
        assert_eq!(results.len(), 64);
        std::hint::black_box(results);
    }
    let batched = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..iters {
        for b in &bindings {
            let r = client.query(select, *b).unwrap();
            std::hint::black_box(r);
        }
    }
    let looped = start.elapsed().as_secs_f64();
    (batched, looped)
}

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "net_throughput: loopback prepared point selects vs in-process, \
         {ROWS}-row jobs table, host parallelism = {parallelism}"
    );
    let db = setup_db();
    let server = serve_with(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            workers: 16,
            max_connections: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Warm up: statement caches, connections, branch predictors.
    bench_in_process(&db, 2_000);
    bench_remote(addr, 1, 1_000);

    let iters = 30_000u64;
    let secs = bench_in_process(&db, iters);
    println!(
        "in_process_point_select              {:>12.0} ops/s  {:>10.2} µs/op",
        iters as f64 / secs,
        secs * 1e6 / iters as f64
    );

    let total_remote = 40_000u64;
    for &threads in &[1usize, 2, 4, 8] {
        let iters = (total_remote / threads as u64).max(1);
        let secs = bench_remote(addr, threads, iters);
        let ops = threads as u64 * iters;
        println!(
            "net_point_select threads={threads}            {:>12.0} ops/s  {:>10.2} µs/op",
            ops as f64 / secs,
            secs * 1e6 / iters as f64
        );
    }

    let batch_iters = 300u64;
    let (batched, looped) = bench_remote_batch(addr, batch_iters);
    println!(
        "net_query_batch_64                   {:>12.2} µs/batch  ({:.2} µs/select)",
        batched * 1e6 / batch_iters as f64,
        batched * 1e6 / (batch_iters * 64) as f64
    );
    println!(
        "net_query_loop_64                    {:>12.2} µs/loop   ({:.2} µs/select, {:.1}x the batch)",
        looped * 1e6 / batch_iters as f64,
        looped * 1e6 / (batch_iters * 64) as f64,
        looped / batched
    );

    let stats = server.stats();
    println!(
        "server: {} frames decoded, {:.1} MB in, {:.1} MB out, {} connections at peak",
        stats.frames_decoded,
        stats.net_bytes_in as f64 / 1e6,
        stats.net_bytes_out as f64 / 1e6,
        stats.active_connections,
    );
    server.shutdown();
    db.check_consistency().expect("consistency after the bench");
}
