//! Measures what observability costs on the statement hot path — the
//! pay-for-what-you-arm claim, quantified.
//!
//! Observability is always on (histograms and profiles have no off switch),
//! so `prepared_point_select` here IS the fully-instrumented hot path: one
//! stopwatch pair and one relaxed histogram add per statement on top of the
//! work itself. The acceptance band for this bench is the same one the
//! pre-observability engine held, so any regression the instrumentation
//! introduces shows up as a band violation, not a silent drift.
//!
//! The remaining functions price the optional layers: an *armed but quiet*
//! slow-query log (threshold high, nothing captured — one extra relaxed
//! load per statement), a *capturing* slow-query log (threshold zero, every
//! statement enters the ring — the worst case a misconfigured threshold can
//! buy), and the monitoring queries themselves (a full `rel_histograms`
//! synthesis + scan, priced so dashboards know what they spend).

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::{Database, Value};
use std::hint::black_box;
use std::time::Duration;

fn setup_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    for i in 0..rows {
        db.execute(&format!(
            "INSERT INTO jobs VALUES ({i}, 'user{}', 'idle', 60000)",
            i % 50
        ))
        .unwrap();
    }
    db
}

fn bench_obs_overhead(c: &mut Criterion) {
    let db = setup_db(5_000);
    let q = db.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
    let params = [Value::Int(2500)];

    // Histograms + statement profile armed (they always are): the band this
    // must hold is the engine's pre-observability prepared point select.
    c.bench_function("prepared_point_select", |b| {
        b.iter(|| db.query_prepared(black_box(&q), black_box(&params)).unwrap())
    });

    // Slow-query log armed with a threshold nothing crosses: adds one
    // relaxed load + compare per statement.
    db.set_slow_query_threshold(Some(Duration::from_secs(10)));
    c.bench_function("prepared_point_select_slowlog_armed", |b| {
        b.iter(|| db.query_prepared(black_box(&q), black_box(&params)).unwrap())
    });

    // Threshold zero: every statement formats its SQL and enters the ring
    // under a mutex — the price of a misconfigured (or deliberately
    // capture-everything) threshold.
    db.set_slow_query_threshold(Some(Duration::ZERO));
    c.bench_function("prepared_point_select_slowlog_capturing", |b| {
        b.iter(|| db.query_prepared(black_box(&q), black_box(&params)).unwrap())
    });
    db.set_slow_query_threshold(None);

    // What a monitoring dashboard pays per poll: synthesize rel_histograms
    // from the live atomics and scan it through the ordinary executor.
    c.bench_function("system_table_scan", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT name, count, p50_us, p99_us FROM rel_histograms",
            ))
            .unwrap()
        })
    });

    // And the raw in-process path the wire monitor sits on top of: one
    // histogram snapshot + three quantile walks, no SQL.
    c.bench_function("histogram_snapshot_quantiles", |b| {
        b.iter(|| {
            let snap = db.obs().histograms.statement(relstore::StmtKind::Select).snapshot();
            black_box((snap.quantile(0.5), snap.quantile(0.95), snap.quantile(0.99)))
        })
    });
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
