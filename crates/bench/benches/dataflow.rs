//! Table 1 / Table 2 bench: end-to-end cost of shepherding one job through
//! each system, including the data-flow trace capture.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::{condor_dataflow_trace, condorj2_dataflow_trace};

fn bench_dataflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow_tables");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("table1_condor_single_job", |b| b.iter(|| condor_dataflow_trace(1)));
    group.bench_function("table2_condorj2_single_job", |b| b.iter(|| condorj2_dataflow_trace(1)));
    group.finish();
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
