//! Proof that resource governance is free when disarmed: the prepared
//! point select — the hottest statement shape in the cluster-middleware
//! workload — through the ungoverned API, through the governed API with
//! `Governance::NONE` (the disarmed governor: one branch per check), and
//! through a fully armed governor with generous limits. The first two must
//! be indistinguishable from the `relstore_ops` `prepared_point_select`
//! baseline; the third prices what arming actually costs.

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::{Database, Governance, Value};
use std::hint::black_box;
use std::time::Duration;

fn setup_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    db.execute("CREATE INDEX ON jobs (state)").unwrap();
    for i in 0..rows {
        db.execute(&format!(
            "INSERT INTO jobs VALUES ({i}, 'user{}', 'idle', 60000)",
            i % 50
        ))
        .unwrap();
    }
    db
}

fn bench_governance(c: &mut Criterion) {
    let db = setup_db(5_000);
    let q = db.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
    let params = [Value::Int(2500)];

    // The ungoverned entry point — must match relstore_ops'
    // prepared_point_select (it is the same code path).
    c.bench_function("prepared_point_select_ungoverned", |b| {
        b.iter(|| db.query_prepared(black_box(&q), black_box(&params)).unwrap())
    });

    // The governed entry point with no limits: arms a disarmed governor,
    // whose every check is one predictable branch. The delta against the
    // ungoverned path is the entire disarmed-governance tax.
    c.bench_function("prepared_point_select_governed_none", |b| {
        b.iter(|| {
            db.query_prepared_governed(black_box(&q), black_box(&params), &Governance::NONE)
                .unwrap()
        })
    });

    // Fully armed with generous limits nothing trips: deadline arithmetic,
    // budget counters and row sizing all run. This is the worst case a
    // governed service statement pays.
    let armed = Governance {
        deadline: Some(Duration::from_secs(30)),
        max_rows: Some(1_000_000),
        max_bytes: Some(1 << 30),
        ..Governance::default()
    };
    c.bench_function("prepared_point_select_governed_armed", |b| {
        b.iter(|| {
            db.query_prepared_governed(black_box(&q), black_box(&params), black_box(&armed))
                .unwrap()
        })
    });

    // The armed tax on a statement that actually ticks per row: a bounded
    // index range (50 rows) under full limits.
    let range = db
        .prepare("SELECT job_id FROM jobs WHERE job_id >= ? AND job_id < ?")
        .unwrap();
    let range_params = [Value::Int(2400), Value::Int(2450)];
    c.bench_function("range_select_governed_armed", |b| {
        b.iter(|| {
            db.query_prepared_governed(black_box(&range), black_box(&range_params), black_box(&armed))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_governance);
criterion_main!(benches);
