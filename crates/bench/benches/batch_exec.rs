//! Batched vs per-statement prepared execution: the scheduler-sweep shape.
//!
//! A matchmaking pass writes N near-identical rows. `loop_insert` pays one
//! catalog write guard and ~3 WAL appends per row; `batch_insert` runs the
//! same bindings through `execute_batch` — one guard, one WAL append for the
//! whole batch. `batch_point_select` pipelines N point lookups under a single
//! shared read guard against the 5k-row table, vs the per-call loop.

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::Database;
use std::hint::black_box;

const BATCH: i64 = 100;
const SELECT_BATCH: usize = 64;

fn setup_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    db.execute("CREATE INDEX ON jobs (state)").unwrap();
    let ins = db
        .prepare("INSERT INTO jobs VALUES (?, ?, 'idle', 60000)")
        .unwrap();
    db.session()
        .execute_batch(&ins, (0..rows).map(|i| (i as i64, format!("user{}", i % 50))))
        .unwrap();
    db
}

fn bench_batch_exec(c: &mut Criterion) {
    let db = setup_db(5_000);
    db.execute("CREATE TABLE matches (match_id INT PRIMARY KEY, job_id INT, machine_id INT)")
        .unwrap();
    let insert = db.prepare("INSERT INTO matches VALUES (?, ?, ?)").unwrap();
    let wipe = db.prepare("DELETE FROM matches").unwrap();

    // N inserts through one execute_batch call (one guard, one WAL append),
    // then a wipe so every iteration starts empty.
    c.bench_function("batch_insert_100", |b| {
        b.iter(|| {
            let n = db
                .session()
                .execute_batch(
                    black_box(&insert),
                    (0..BATCH).map(|i| (i, 1_000 + i, 2_000 + i)),
                )
                .unwrap();
            assert_eq!(n, BATCH as usize);
            db.session().execute(&wipe, ()).unwrap();
        })
    });

    // The same N inserts as a per-statement loop (the pre-batching shape).
    c.bench_function("loop_insert_100", |b| {
        b.iter(|| {
            let mut sql = db.session();
            for i in 0..BATCH {
                sql.execute(black_box(&insert), (i, 1_000 + i, 2_000 + i)).unwrap();
            }
            sql.execute(&wipe, ()).unwrap();
        })
    });

    // N point selects pipelined under one shared catalog guard...
    let point = db.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
    c.bench_function("batch_point_select_64", |b| {
        b.iter(|| {
            let results = db
                .session()
                .query_batch(
                    black_box(&point),
                    (0..SELECT_BATCH).map(|i| ((i as i64 * 79) % 5_000,)),
                )
                .unwrap();
            assert_eq!(results.len(), SELECT_BATCH);
            black_box(results)
        })
    });

    // ...vs the same selects as individual statements.
    c.bench_function("loop_point_select_64", |b| {
        b.iter(|| {
            let mut sql = db.session();
            for i in 0..SELECT_BATCH {
                black_box(
                    sql.query(black_box(&point), ((i as i64 * 79) % 5_000,)).unwrap(),
                );
            }
        })
    });
}

criterion_group!(benches, bench_batch_exec);
criterion_main!(benches);
