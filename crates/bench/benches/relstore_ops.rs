//! Microbenchmarks of the storage/query engine operations on the critical
//! path of every CAS service call (the "HTTP-to-SQL transformation" cost).

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::{Database, Value};
use std::hint::black_box;

fn setup_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    db.execute("CREATE INDEX ON jobs (state)").unwrap();
    for i in 0..rows {
        db.execute(&format!(
            "INSERT INTO jobs VALUES ({i}, 'user{}', 'idle', 60000)",
            i % 50
        ))
        .unwrap();
    }
    db
}

fn bench_relstore(c: &mut Criterion) {
    let db = setup_db(5_000);
    // Parse-per-call baseline: the statement cache is disabled, so every call
    // pays the full lex + parse cost (the pre-optimisation behaviour).
    let uncached = setup_db(5_000);
    uncached.set_statement_cache_capacity(0);
    c.bench_function("pk_point_select_uncached", |b| {
        b.iter(|| {
            uncached
                .query(black_box("SELECT * FROM jobs WHERE job_id = 2500"))
                .unwrap()
        })
    });
    // Same SQL text through the (warm) statement cache.
    c.bench_function("pk_point_select", |b| {
        b.iter(|| db.query(black_box("SELECT * FROM jobs WHERE job_id = 2500")).unwrap())
    });
    // Prepared once, parameters bound per call — no parsing at all.
    c.bench_function("prepared_point_select", |b| {
        let q = db.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
        let params = [Value::Int(2500)];
        b.iter(|| db.query_prepared(black_box(&q), black_box(&params)).unwrap())
    });
    // Bounded range over the primary-key index (50 of 5000 rows touched).
    c.bench_function("range_index_select", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT job_id FROM jobs WHERE job_id >= 2400 AND job_id < 2450",
            ))
            .unwrap()
        })
    });
    // The same shape on an unindexed column still needs the full scan;
    // the gap against range_index_select is the access-path win.
    c.bench_function("range_scan_select", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT job_id FROM jobs WHERE runtime_ms >= 2400 AND runtime_ms < 2450",
            ))
            .unwrap()
        })
    });
    c.bench_function("indexed_select_with_filter", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT job_id FROM jobs WHERE state = 'idle' AND runtime_ms > 1000 ORDER BY job_id LIMIT 10",
            ))
            .unwrap()
        })
    });
    c.bench_function("aggregate_group_by", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT owner, COUNT(*), AVG(runtime_ms) FROM jobs GROUP BY owner",
            ))
            .unwrap()
        })
    });
    c.bench_function("single_row_update", |b| {
        b.iter(|| {
            db.execute(black_box("UPDATE jobs SET state = 'running' WHERE job_id = 123")).unwrap()
        })
    });
    c.bench_function("insert_delete_round_trip", |b| {
        b.iter(|| {
            db.execute(black_box(
                "INSERT INTO jobs VALUES (9999999, 'bench', 'idle', 1000)",
            ))
            .unwrap();
            db.execute(black_box("DELETE FROM jobs WHERE job_id = 9999999")).unwrap();
        })
    });
    c.bench_function("sql_parse_only", |b| {
        b.iter(|| {
            relstore::sql::parse(black_box(
                "SELECT jobs.job_id, machines.name FROM jobs JOIN matches ON jobs.job_id = matches.job_id \
                 JOIN machines ON matches.machine_id = machines.machine_id WHERE jobs.state = 'idle' LIMIT 5",
            ))
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_relstore);
criterion_main!(benches);
