//! Microbenchmarks of the storage/query engine operations on the critical
//! path of every CAS service call (the "HTTP-to-SQL transformation" cost).

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::Database;
use std::hint::black_box;

fn setup_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    db.execute("CREATE INDEX ON jobs (state)").unwrap();
    for i in 0..rows {
        db.execute(&format!(
            "INSERT INTO jobs VALUES ({i}, 'user{}', 'idle', 60000)",
            i % 50
        ))
        .unwrap();
    }
    db
}

fn bench_relstore(c: &mut Criterion) {
    let db = setup_db(5_000);
    c.bench_function("pk_point_select", |b| {
        b.iter(|| db.query(black_box("SELECT * FROM jobs WHERE job_id = 2500")).unwrap())
    });
    c.bench_function("indexed_select_with_filter", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT job_id FROM jobs WHERE state = 'idle' AND runtime_ms > 1000 ORDER BY job_id LIMIT 10",
            ))
            .unwrap()
        })
    });
    c.bench_function("aggregate_group_by", |b| {
        b.iter(|| {
            db.query(black_box(
                "SELECT owner, COUNT(*), AVG(runtime_ms) FROM jobs GROUP BY owner",
            ))
            .unwrap()
        })
    });
    c.bench_function("single_row_update", |b| {
        b.iter(|| {
            db.execute(black_box("UPDATE jobs SET state = 'running' WHERE job_id = 123")).unwrap()
        })
    });
    c.bench_function("insert_delete_round_trip", |b| {
        b.iter(|| {
            db.execute(black_box(
                "INSERT INTO jobs VALUES (9999999, 'bench', 'idle', 1000)",
            ))
            .unwrap();
            db.execute(black_box("DELETE FROM jobs WHERE job_id = 9999999")).unwrap();
        })
    });
    c.bench_function("sql_parse_only", |b| {
        b.iter(|| {
            relstore::sql::parse(black_box(
                "SELECT jobs.job_id, machines.name FROM jobs JOIN matches ON jobs.job_id = matches.job_id \
                 JOIN machines ON matches.machine_id = machines.machine_id WHERE jobs.state = 'idle' LIMIT 5",
            ))
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_relstore);
criterion_main!(benches);
