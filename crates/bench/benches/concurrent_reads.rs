//! Multi-threaded read-throughput bench: proves the shared-lock read path
//! lets SELECT throughput scale with cores while per-call latency holds.
//!
//! Unlike the single-thread `relstore_ops` microbenches this target drives
//! the engine through `condorj2::concurrent::drive_reads` — the same harness
//! the consistency tests use — at 1/2/4/8 threads and prints aggregate
//! ops/sec, per-call latency and speedup over the 1-thread run. On a
//! single-core host the speedup column stays ~1.0x by construction; run on a
//! multi-core machine (e.g. the CI runners) to see the scaling.

use condorj2::concurrent::drive_reads;
use relstore::{Database, IntoParams};

fn setup_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime_ms INT)",
    )
    .unwrap();
    db.execute("CREATE INDEX ON jobs (state)").unwrap();
    let ins = db
        .prepare("INSERT INTO jobs VALUES (?, ?, 'idle', 60000)")
        .unwrap();
    db.session()
        .execute_batch(
            &ins,
            (0..rows).map(|i| (i as i64, format!("user{}", i % 50))),
        )
        .unwrap();
    db
}

/// Runs one workload at each thread count, keeping total work roughly
/// constant so wall-clock per line stays comparable.
fn report<P: IntoParams>(
    name: &str,
    db: &Database,
    sql: &str,
    total_iters: u64,
    params: impl Fn(usize, u64) -> P + Sync,
) {
    // Warm the statement cache and the branch predictors once.
    drive_reads(db, 1, total_iters / 50, sql, &params).unwrap();
    let mut base_ops = 0.0f64;
    for &threads in &[1usize, 2, 4, 8] {
        let iters = (total_iters / threads as u64).max(1);
        let t = drive_reads(db, threads, iters, sql, &params).unwrap();
        let ops = t.ops_per_sec();
        if threads == 1 {
            base_ops = ops;
        }
        println!(
            "{name:<24} threads={threads}  {:>12.0} ops/s  {:>10.1} ns/op  speedup {:>5.2}x",
            ops,
            t.nanos_per_op(),
            ops / base_ops
        );
    }
}

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "concurrent read throughput, 5k-row jobs table, host parallelism = {parallelism}"
    );
    let db = setup_db(5_000);

    report(
        "concurrent_point_select",
        &db,
        "SELECT * FROM jobs WHERE job_id = ?",
        400_000,
        |t, i| (((t as u64 * 2_654_435_761 + i * 40_503) % 5_000) as i64,),
    );
    report(
        "concurrent_range_select",
        &db,
        "SELECT job_id FROM jobs WHERE job_id >= ? AND job_id < ?",
        20_000,
        |t, i| {
            let lo = ((t as u64 * 997 + i * 131) % 4_950) as i64;
            (lo, lo + 50)
        },
    );
}
