//! Cost-based join planning: what the planner buys, priced.
//!
//! `planned_3table_join` vs `naive_3table_join` is the headline number: the
//! same skewed three-table join on identical data, once with the cost-based
//! planner choosing the join order from ANALYZE statistics, once pinned to
//! the syntactic left-to-right order (`set_join_reorder(false)`). The
//! selective side (`tiny`, filtered to a handful of rows) should be joined
//! first; left-to-right materializes the full big⋈mid intermediate instead.
//! The planner must win by ≥2× on this shape.
//!
//! `prepared_join_reused` vs `prepared_join_rebuilt` prices the cached
//! hash-join build side on a prepared statement: the rebuilt variant pays a
//! one-row touch of the build table per iteration to invalidate the cache.
//!
//! `planned_point_select` vs `forced_scan_point_select` is the access-path
//! choice in isolation, and the `app_side_join` / `sql_join` pair measures
//! the application-side join loop the CAS used to run against the single
//! JOIN statement that replaced it.

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::{Database, Value};
use std::hint::black_box;

const BIG_ROWS: i64 = 10_000;
const MID_ROWS: i64 = 2_000;
const MID_KEYS: i64 = 1_000;
const TINY_ROWS: i64 = 20;

/// Three tables with deliberately skewed sizes: the `mid` join fans out 2x
/// (two `mid` rows per key), the `tiny` join — filtered to a single row —
/// cuts the pipeline 20x. Joining `tiny` first keeps the intermediate
/// result small; left-to-right materializes the doubled big⋈mid product
/// before throwing 95% of it away.
fn skewed_db() -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE big (id INT PRIMARY KEY, fk_mid INT, fk_tiny INT, pad TEXT)",
    )
    .unwrap();
    db.execute("CREATE INDEX ON big (fk_mid)").unwrap();
    db.execute("CREATE TABLE mid (id INT PRIMARY KEY, fk INT, label TEXT)").unwrap();
    db.execute("CREATE INDEX ON mid (fk)").unwrap();
    db.execute("CREATE TABLE tiny (id INT PRIMARY KEY, flag INT)").unwrap();

    let ins = db
        .prepare("INSERT INTO big VALUES (?, ?, ?, 'payload-padding-bytes')")
        .unwrap();
    db.session()
        .execute_batch(&ins, (0..BIG_ROWS).map(|i| (i, i % MID_KEYS, i % TINY_ROWS)))
        .unwrap();
    let ins = db.prepare("INSERT INTO mid VALUES (?, ?, 'mid-label')").unwrap();
    db.session()
        .execute_batch(&ins, (0..MID_ROWS).map(|i| (i, i % MID_KEYS)))
        .unwrap();
    // Exactly one tiny row carries flag = 1, so the filtered build side is
    // a single entry and the early join cuts the pipeline 20x.
    let ins = db.prepare("INSERT INTO tiny VALUES (?, ?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..TINY_ROWS).map(|i| (i, i64::from(i == 7))))
        .unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

const SKEWED_JOIN: &str = "SELECT COUNT(*) FROM big \
     JOIN mid ON big.fk_mid = mid.fk \
     JOIN tiny ON big.fk_tiny = tiny.id \
     WHERE tiny.flag = 1";

fn bench_join_order(c: &mut Criterion) {
    let planned = skewed_db();
    let naive = skewed_db();
    naive.set_join_reorder(false);

    // Both configurations must agree before either number means anything.
    let expected = planned.query(SKEWED_JOIN).unwrap().scalar_int().unwrap();
    assert_eq!(expected, 2 * BIG_ROWS / TINY_ROWS);
    assert_eq!(naive.query(SKEWED_JOIN).unwrap().scalar_int().unwrap(), expected);

    c.bench_function("planned_3table_join", |b| {
        b.iter(|| {
            let r = planned.query(black_box(SKEWED_JOIN)).unwrap();
            assert_eq!(r.scalar_int().unwrap(), expected);
            black_box(r)
        })
    });

    c.bench_function("naive_3table_join", |b| {
        b.iter(|| {
            let r = naive.query(black_box(SKEWED_JOIN)).unwrap();
            assert_eq!(r.scalar_int().unwrap(), expected);
            black_box(r)
        })
    });
}

fn bench_build_reuse(c: &mut Criterion) {
    let db = skewed_db();
    let join = db
        .prepare("SELECT COUNT(*) FROM big JOIN mid ON big.fk_mid = mid.id")
        .unwrap();
    let touch = db.prepare("UPDATE mid SET label = ? WHERE id = 0").unwrap();

    // Steady state: no writes between executions, so the hash-join build
    // side over `mid` is validated and reused, not rebuilt.
    c.bench_function("prepared_join_reused", |b| {
        b.iter(|| {
            let r = db.query_prepared(black_box(&join), &[]).unwrap();
            assert_eq!(r.scalar_int().unwrap(), BIG_ROWS);
            black_box(r)
        })
    });

    // A one-row touch of the build table per iteration bumps its version,
    // invalidating the cached build: every execution rebuilds the map.
    c.bench_function("prepared_join_rebuilt", |b| {
        b.iter(|| {
            db.execute_prepared(&touch, &[Value::Text("touched".into())]).unwrap();
            let r = db.query_prepared(black_box(&join), &[]).unwrap();
            assert_eq!(r.scalar_int().unwrap(), BIG_ROWS);
            black_box(r)
        })
    });
}

fn bench_access_path(c: &mut Criterion) {
    let planned = skewed_db();
    let scan = skewed_db();
    scan.set_force_scan(true);

    let point_planned = planned.prepare("SELECT * FROM big WHERE id = ?").unwrap();
    let point_scan = scan.prepare("SELECT * FROM big WHERE id = ?").unwrap();

    c.bench_function("planned_point_select", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 79) % BIG_ROWS;
            let r = planned.query_prepared(black_box(&point_planned), &[Value::Int(k)]).unwrap();
            assert_eq!(r.len(), 1);
            black_box(r)
        })
    });

    c.bench_function("forced_scan_point_select", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 79) % BIG_ROWS;
            let r = scan.query_prepared(black_box(&point_scan), &[Value::Int(k)]).unwrap();
            assert_eq!(r.len(), 1);
            black_box(r)
        })
    });
}

/// The CAS shape this PR rewrote: fetching a job and its run used to be two
/// point queries glued together in application code; now it is one JOIN.
/// `jobs` and `runs` here mirror the real schema closely enough for the
/// delta to transfer.
fn bench_app_side_vs_join(c: &mut Criterion) {
    const JOBS: i64 = 512;
    let db = Database::new();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT, runtime_ms INT)")
        .unwrap();
    db.execute("CREATE TABLE runs (run_id INT PRIMARY KEY, job_id INT, machine_id INT)")
        .unwrap();
    db.execute("CREATE INDEX ON runs (job_id)").unwrap();
    let ins = db.prepare("INSERT INTO jobs VALUES (?, ?, 60000)").unwrap();
    db.session()
        .execute_batch(&ins, (0..JOBS).map(|i| (i, format!("user{}", i % 16))))
        .unwrap();
    let ins = db.prepare("INSERT INTO runs VALUES (?, ?, ?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..JOBS).map(|i| (i, i, i % 32)))
        .unwrap();
    db.execute("ANALYZE").unwrap();

    let job_q = db.prepare("SELECT owner, runtime_ms FROM jobs WHERE job_id = ?").unwrap();
    let run_q = db.prepare("SELECT machine_id FROM runs WHERE job_id = ?").unwrap();
    let joined = db
        .prepare(
            "SELECT jobs.owner, jobs.runtime_ms, runs.machine_id \
             FROM jobs JOIN runs ON jobs.job_id = runs.job_id WHERE jobs.job_id = ?",
        )
        .unwrap();

    // Two round trips into the engine per job, results glued in app code.
    c.bench_function("app_side_join_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 37) % JOBS;
            let job = db.query_prepared(&job_q, &[Value::Int(k)]).unwrap();
            let run = db.query_prepared(&run_q, &[Value::Int(k)]).unwrap();
            assert_eq!(job.len() + run.len(), 2);
            black_box((job, run))
        })
    });

    // The rewrite: one statement, one pass through the engine.
    c.bench_function("sql_join_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 37) % JOBS;
            let r = db.query_prepared(black_box(&joined), &[Value::Int(k)]).unwrap();
            assert_eq!(r.len(), 1);
            black_box(r)
        })
    });

    // The usage report, the other CAS rewrite: one aggregate query per
    // owner glued in app code vs a single JOIN + GROUP BY.
    const OWNERS: i64 = 16;
    db.execute("CREATE TABLE users (name TEXT PRIMARY KEY, priority DOUBLE)").unwrap();
    let ins = db.prepare("INSERT INTO users VALUES (?, 0.5)").unwrap();
    db.session()
        .execute_batch(&ins, (0..OWNERS).map(|i| (format!("user{i}"),)))
        .unwrap();
    db.execute("CREATE TABLE job_history (job_id INT PRIMARY KEY, owner TEXT, runtime_ms INT)")
        .unwrap();
    db.execute("CREATE INDEX ON job_history (owner)").unwrap();
    let ins = db.prepare("INSERT INTO job_history VALUES (?, ?, 60000)").unwrap();
    db.session()
        .execute_batch(&ins, (0..JOBS).map(|i| (i, format!("user{}", i % OWNERS))))
        .unwrap();
    db.execute("ANALYZE").unwrap();

    let owners_q = db.prepare("SELECT name, priority FROM users ORDER BY name").unwrap();
    let per_owner = db
        .prepare("SELECT COUNT(*), SUM(runtime_ms) FROM job_history WHERE owner = ?")
        .unwrap();
    let report = db
        .prepare(
            "SELECT users.name, users.priority, COUNT(*), SUM(job_history.runtime_ms) \
             FROM job_history JOIN users ON job_history.owner = users.name \
             GROUP BY users.name, users.priority ORDER BY users.name",
        )
        .unwrap();

    c.bench_function("app_side_usage_report", |b| {
        b.iter(|| {
            let owners = db.query_prepared(&owners_q, &[]).unwrap();
            assert_eq!(owners.len(), OWNERS as usize);
            let mut total = 0i64;
            for row in &owners.rows {
                let r = db
                    .query_prepared(&per_owner, std::slice::from_ref(row.get(0)))
                    .unwrap();
                match r.rows[0].get(0) {
                    Value::Int(n) => total += n,
                    other => panic!("COUNT(*) must be an int, got {other:?}"),
                }
            }
            assert_eq!(total, JOBS);
            black_box(total)
        })
    });

    c.bench_function("sql_usage_report", |b| {
        b.iter(|| {
            let r = db.query_prepared(black_box(&report), &[]).unwrap();
            assert_eq!(r.len(), OWNERS as usize);
            black_box(r)
        })
    });
}

criterion_group!(
    benches,
    bench_join_order,
    bench_build_reuse,
    bench_access_path,
    bench_app_side_vs_join
);
criterion_main!(benches);
