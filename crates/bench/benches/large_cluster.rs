//! Figure 10 / Section 5.3.2 bench: large-cluster behaviour of both systems.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::{condor_large_cluster, large_cluster_experiment, Scale};

fn bench_large_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_cluster");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("fig10_condorj2_quick", |b| {
        b.iter(|| large_cluster_experiment(Scale::Quick, 1))
    });
    group.bench_function("sec532_condor_crash_quick", |b| {
        b.iter(|| condor_large_cluster(Scale::Quick, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_large_cluster);
criterion_main!(benches);
