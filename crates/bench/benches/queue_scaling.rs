//! Figure 13/14 bench: Condor scheduling rate and schedd CPU versus job-queue
//! length.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::{queue_length_experiment, Scale};

fn bench_queue_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_14");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("condor_queue_length_sweep_quick", |b| {
        b.iter(|| queue_length_experiment(Scale::Quick, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_queue_scaling);
criterion_main!(benches);
