//! Figure 7/8/9 bench: the CondorJ2 scheduling-throughput experiment family
//! at quick scale (the full-scale series is produced by the `figures` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::{throughput_experiment, Scale};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_8_9");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("condorj2_throughput_sweep_quick", |b| {
        b.iter(|| throughput_experiment(Scale::Quick, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
