//! Benchmark support crate: see the `figures` binary and the Criterion
//! benches under `benches/`, one per table/figure of the paper.
