//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [--paper] [fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|
//!          table1|table2|large-condor|codebase|all]...
//! ```
//!
//! By default every experiment runs at a reduced ("quick") scale; pass
//! `--paper` to use the cluster sizes and durations reported in the paper
//! (the 10,000-VM Figure 10 run takes several minutes of wall-clock time).

use workloads::{
    codebase_size, condor_dataflow_trace, condor_large_cluster, condor_mixed_workload,
    condorj2_dataflow_trace, condorj2_mixed_workload, large_cluster_experiment,
    queue_length_experiment, throughput_experiment, Scale,
};

const SEED: u64 = 20070107; // CIDR 2007

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Quick
    };
    let mut targets: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_ascii_lowercase())
        .collect();
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let wants = |name: &str| targets.iter().any(|t| t == name || t == "all");

    println!(
        "CondorJ2 reproduction — regenerating paper figures at {scale:?} scale\n"
    );

    if wants("table1") {
        println!(
            "{}",
            condor_dataflow_trace(SEED)
                .to_table("Table 1 / Figure 5: data flow of one job through Condor")
        );
    }
    if wants("table2") {
        println!(
            "{}",
            condorj2_dataflow_trace(SEED)
                .to_table("Table 2 / Figure 6: data flow of one job through CondorJ2")
        );
    }
    if wants("codebase") {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .unwrap_or_else(|| std::path::Path::new("."));
        let (per_crate, total) = codebase_size(root);
        println!("Section 4.2.3.1: code-base size of this reproduction");
        for (name, lines) in &per_crate {
            println!("  {name:<14} {lines:>8} lines");
        }
        println!("  {:<14} {total:>8} lines\n", "total");
    }
    if wants("fig7") || wants("fig8") || wants("fig9") {
        println!("{}", throughput_experiment(scale, SEED).render());
    }
    if wants("fig10") {
        println!("{}", large_cluster_experiment(scale, SEED).render());
    }
    if wants("fig11") || wants("fig12") {
        println!("{}", condorj2_mixed_workload(scale, SEED).render());
    }
    if wants("fig13") || wants("fig14") {
        println!("{}", queue_length_experiment(scale, SEED).render());
    }
    if wants("large-condor") {
        println!("{}", condor_large_cluster(scale, SEED).render());
    }
    if wants("fig15") {
        println!("{}", condor_mixed_workload(scale, false, SEED).render());
    }
    if wants("fig16") {
        println!("{}", condor_mixed_workload(scale, true, SEED).render());
    }
    println!("done.");
}
