//! A minimal ClassAd-style attribute/requirement mechanism.
//!
//! Condor's matchmaking framework describes jobs and machines as ClassAds —
//! attribute lists with `Requirements` expressions evaluated against the other
//! party's ad. The baseline only needs enough of this to make matchmaking
//! decisions in the negotiator: numeric and string attributes plus simple
//! comparison requirements.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An attribute value in a ClassAd.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdValue {
    /// Numeric attribute.
    Number(f64),
    /// String attribute.
    Str(String),
    /// Boolean attribute.
    Bool(bool),
}

impl fmt::Display for AdValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdValue::Number(n) => write!(f, "{n}"),
            AdValue::Str(s) => write!(f, "\"{s}\""),
            AdValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A comparison operator inside a requirement clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReqOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
}

/// One requirement clause: `other.attribute <op> value`. A ClassAd matches a
/// counterpart only when all clauses hold against the counterpart's ad.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    /// The attribute looked up in the counterpart ad.
    pub attribute: String,
    /// Comparison operator.
    pub op: ReqOp,
    /// The value compared against.
    pub value: AdValue,
}

/// A ClassAd: named attributes plus requirement clauses over the counterpart.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassAd {
    attrs: BTreeMap<String, AdValue>,
    requirements: Vec<Requirement>,
}

impl ClassAd {
    /// Creates an empty ad.
    pub fn new() -> Self {
        ClassAd::default()
    }

    /// Builder-style numeric attribute.
    pub fn with_number(mut self, name: impl Into<String>, value: f64) -> Self {
        self.attrs.insert(name.into().to_ascii_lowercase(), AdValue::Number(value));
        self
    }

    /// Builder-style string attribute.
    pub fn with_str(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs
            .insert(name.into().to_ascii_lowercase(), AdValue::Str(value.into()));
        self
    }

    /// Builder-style boolean attribute.
    pub fn with_bool(mut self, name: impl Into<String>, value: bool) -> Self {
        self.attrs.insert(name.into().to_ascii_lowercase(), AdValue::Bool(value));
        self
    }

    /// Builder-style requirement clause.
    pub fn require(mut self, attribute: impl Into<String>, op: ReqOp, value: AdValue) -> Self {
        self.requirements.push(Requirement {
            attribute: attribute.into().to_ascii_lowercase(),
            op,
            value,
        });
        self
    }

    /// Looks up an attribute.
    pub fn get(&self, name: &str) -> Option<&AdValue> {
        self.attrs.get(&name.to_ascii_lowercase())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the ad has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Evaluates this ad's requirements against `other`. Missing attributes
    /// fail the clause (as an undefined ClassAd expression would).
    pub fn requirements_met_by(&self, other: &ClassAd) -> bool {
        self.requirements.iter().all(|req| {
            let Some(actual) = other.get(&req.attribute) else {
                return false;
            };
            match (actual, &req.value) {
                (AdValue::Number(a), AdValue::Number(b)) => match req.op {
                    ReqOp::Eq => (a - b).abs() < f64::EPSILON,
                    ReqOp::Ne => (a - b).abs() >= f64::EPSILON,
                    ReqOp::Ge => a >= b,
                    ReqOp::Le => a <= b,
                    ReqOp::Gt => a > b,
                    ReqOp::Lt => a < b,
                },
                (AdValue::Str(a), AdValue::Str(b)) => match req.op {
                    ReqOp::Eq => a == b,
                    ReqOp::Ne => a != b,
                    _ => false,
                },
                (AdValue::Bool(a), AdValue::Bool(b)) => match req.op {
                    ReqOp::Eq => a == b,
                    ReqOp::Ne => a != b,
                    _ => false,
                },
                _ => false,
            }
        })
    }

    /// Symmetric match: both ads' requirements hold against each other, the
    /// test the negotiator applies to a (job, machine) pair.
    pub fn matches(&self, other: &ClassAd) -> bool {
        self.requirements_met_by(other) && other.requirements_met_by(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_ad(memory: f64, arch: &str) -> ClassAd {
        ClassAd::new()
            .with_number("memory", memory)
            .with_str("arch", arch)
            .with_bool("start", true)
    }

    fn job_ad(min_memory: f64, arch: &str) -> ClassAd {
        ClassAd::new()
            .with_number("imagesize", 120.0)
            .require("memory", ReqOp::Ge, AdValue::Number(min_memory))
            .require("arch", ReqOp::Eq, AdValue::Str(arch.into()))
    }

    #[test]
    fn matching_respects_requirements() {
        let machine = machine_ad(2048.0, "x86_64");
        assert!(job_ad(1024.0, "x86_64").matches(&machine));
        assert!(!job_ad(4096.0, "x86_64").matches(&machine));
        assert!(!job_ad(1024.0, "ppc").matches(&machine));
    }

    #[test]
    fn missing_attributes_fail_requirements() {
        let bare = ClassAd::new();
        assert!(!job_ad(1.0, "x86_64").matches(&bare));
        // An ad with no requirements matches anything that has none either.
        assert!(bare.matches(&ClassAd::new()));
    }

    #[test]
    fn symmetric_matching() {
        // Machine requires jobs to be small; job requires memory.
        let machine = machine_ad(2048.0, "x86_64").require(
            "imagesize",
            ReqOp::Le,
            AdValue::Number(512.0),
        );
        let small_job = job_ad(1024.0, "x86_64");
        let big_job = ClassAd::new()
            .with_number("imagesize", 4096.0)
            .require("memory", ReqOp::Ge, AdValue::Number(1024.0));
        assert!(machine.matches(&small_job));
        assert!(!machine.matches(&big_job));
    }

    #[test]
    fn accessors_and_display() {
        let ad = machine_ad(1024.0, "x86_64");
        assert_eq!(ad.len(), 3);
        assert!(!ad.is_empty());
        assert_eq!(ad.get("ARCH"), Some(&AdValue::Str("x86_64".into())));
        assert_eq!(ad.get("missing"), None);
        assert_eq!(AdValue::Number(3.0).to_string(), "3");
        assert_eq!(AdValue::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(AdValue::Bool(true).to_string(), "true");
    }

    #[test]
    fn type_mismatches_never_match() {
        let machine = ClassAd::new().with_str("memory", "lots");
        let job = ClassAd::new().require("memory", ReqOp::Ge, AdValue::Number(1.0));
        assert!(!job.requirements_met_by(&machine));
        let job = ClassAd::new().require("memory", ReqOp::Gt, AdValue::Str("x".into()));
        assert!(!job.requirements_met_by(&machine));
    }
}
