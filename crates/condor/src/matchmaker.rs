//! The collector and negotiator: Condor's centralised matchmaking pair.
//!
//! The collector is an in-memory repository of machine and job-queue status
//! that submit and execute machines refresh periodically; it keeps no
//! transactional or recovery state and simply rebuilds itself from updates
//! after a restart. The negotiator periodically pulls that information and
//! allocates execute slots to schedds. Matchmaking stops entirely while either
//! daemon is down and resumes when both are back — exactly the behaviour the
//! paper describes — which the failure-injection tests exercise.

use crate::classad::ClassAd;
use cluster_sim::{SimTime, VmId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The machine states the collector tracks for each execute slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotState {
    /// Unclaimed and willing to run jobs.
    Unclaimed,
    /// Claimed by a schedd (may or may not be running a job yet).
    Claimed,
    /// Currently executing a job.
    Busy,
}

/// One slot's entry in the collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotAd {
    /// Current state.
    pub state: SlotState,
    /// The machine's ClassAd (attributes used for matchmaking).
    pub ad: ClassAd,
    /// Time of the last status update received.
    pub last_update: SimTime,
}

/// One schedd's queue summary in the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheddSummary {
    /// Jobs waiting to run.
    pub idle_jobs: usize,
    /// Jobs currently executing.
    pub running_jobs: usize,
    /// Time of the last summary received.
    pub last_update: SimTime,
}

/// The collector daemon: a purely in-memory information repository.
#[derive(Debug, Default)]
pub struct Collector {
    slots: BTreeMap<VmId, SlotAd>,
    schedds: BTreeMap<usize, ScheddSummary>,
    updates_received: u64,
    /// When the daemon is down it discards updates and serves no queries.
    down: bool,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Handles a periodic status update from a startd.
    pub fn update_slot(&mut self, now: SimTime, vm: VmId, state: SlotState, ad: ClassAd) {
        if self.down {
            return;
        }
        self.updates_received += 1;
        self.slots.insert(
            vm,
            SlotAd {
                state,
                ad,
                last_update: now,
            },
        );
    }

    /// Handles a periodic job-queue summary from a schedd.
    pub fn update_schedd(&mut self, now: SimTime, schedd: usize, idle: usize, running: usize) {
        if self.down {
            return;
        }
        self.updates_received += 1;
        self.schedds.insert(
            schedd,
            ScheddSummary {
                idle_jobs: idle,
                running_jobs: running,
                last_update: now,
            },
        );
    }

    /// Unclaimed slots known to the collector, in id order.
    pub fn unclaimed_slots(&self) -> Vec<(VmId, &SlotAd)> {
        self.slots
            .iter()
            .filter(|(_, s)| s.state == SlotState::Unclaimed)
            .map(|(vm, s)| (*vm, s))
            .collect()
    }

    /// The latest summary for a schedd.
    pub fn schedd_summary(&self, schedd: usize) -> Option<ScheddSummary> {
        self.schedds.get(&schedd).copied()
    }

    /// Total updates ever absorbed (a proxy for collector message load).
    pub fn updates_received(&self) -> u64 {
        self.updates_received
    }

    /// Number of slots currently known.
    pub fn known_slots(&self) -> usize {
        self.slots.len()
    }

    /// Takes the daemon down. All state is lost (it was in memory only).
    pub fn fail(&mut self) {
        self.down = true;
        self.slots.clear();
        self.schedds.clear();
    }

    /// Restarts the daemon; state rebuilds as updates arrive.
    pub fn restart(&mut self) {
        self.down = false;
    }

    /// True when the daemon is running.
    pub fn is_up(&self) -> bool {
        !self.down
    }
}

/// One allocation decision: give a slot to a schedd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// The receiving schedd.
    pub schedd: usize,
    /// The allocated slot.
    pub vm: VmId,
}

/// The negotiator daemon.
#[derive(Debug, Default)]
pub struct Negotiator {
    cycles: u64,
    down: bool,
}

impl Negotiator {
    /// Creates the negotiator.
    pub fn new() -> Self {
        Negotiator::default()
    }

    /// Number of negotiation cycles run.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Takes the daemon down; matchmaking stops until restart.
    pub fn fail(&mut self) {
        self.down = true;
    }

    /// Restarts the daemon.
    pub fn restart(&mut self) {
        self.down = false;
    }

    /// True when the daemon is running.
    pub fn is_up(&self) -> bool {
        !self.down
    }

    /// Runs one negotiation cycle.
    ///
    /// `demands` describes each schedd as `(idle_jobs, currently_claimed,
    /// claim_limit)`; `job_ad` is the representative ad of the schedd's idle
    /// jobs (all jobs in the paper's experiments are homogeneous, so one ad
    /// per schedd suffices). Free slots are taken from the collector.
    ///
    /// The allocation policy reproduces the behaviour behind Figure 15: the
    /// negotiator serves schedds in priority (index) order and gives the first
    /// schedd with idle jobs as many slots as it may claim before moving on.
    /// When a per-schedd claim limit is configured (Figure 16), that limit
    /// caps each schedd's share and the remaining slots flow to the next one.
    pub fn negotiate(
        &mut self,
        collector: &Collector,
        demands: &[(usize, usize, Option<usize>)],
        job_ads: &[ClassAd],
    ) -> Vec<Allocation> {
        if self.down || !collector.is_up() {
            return Vec::new();
        }
        self.cycles += 1;
        let mut free: Vec<(VmId, &SlotAd)> = collector.unclaimed_slots();
        let mut out = Vec::new();
        for (schedd_idx, &(idle, claimed, limit)) in demands.iter().enumerate() {
            if idle == 0 || free.is_empty() {
                continue;
            }
            let want = match limit {
                Some(l) => l.saturating_sub(claimed).min(idle),
                None => idle,
            };
            if want == 0 {
                continue;
            }
            let default_ad = ClassAd::new();
            let job_ad = job_ads.get(schedd_idx).unwrap_or(&default_ad);
            let mut granted = 0usize;
            let mut remaining = Vec::new();
            for (vm, slot) in free.into_iter() {
                if granted < want && job_ad.matches(&slot.ad) {
                    out.push(Allocation {
                        schedd: schedd_idx,
                        vm,
                    });
                    granted += 1;
                } else {
                    remaining.push((vm, slot));
                }
            }
            free = remaining;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector_with_slots(n: u32) -> Collector {
        let mut c = Collector::new();
        for i in 0..n {
            c.update_slot(SimTime::ZERO, VmId(i), SlotState::Unclaimed, ClassAd::new());
        }
        c
    }

    #[test]
    fn collector_tracks_slots_and_schedds() {
        let mut c = collector_with_slots(3);
        c.update_slot(SimTime::from_secs(5), VmId(1), SlotState::Busy, ClassAd::new());
        c.update_schedd(SimTime::from_secs(5), 0, 10, 2);
        assert_eq!(c.known_slots(), 3);
        assert_eq!(c.unclaimed_slots().len(), 2);
        assert_eq!(c.schedd_summary(0).unwrap().idle_jobs, 10);
        assert!(c.schedd_summary(1).is_none());
        assert_eq!(c.updates_received(), 5);
    }

    #[test]
    fn collector_failure_loses_state_and_rebuilds() {
        let mut c = collector_with_slots(3);
        c.fail();
        assert!(!c.is_up());
        // Updates while down are dropped.
        c.update_slot(SimTime::from_secs(1), VmId(9), SlotState::Unclaimed, ClassAd::new());
        assert_eq!(c.known_slots(), 0);
        c.restart();
        c.update_slot(SimTime::from_secs(2), VmId(9), SlotState::Unclaimed, ClassAd::new());
        assert_eq!(c.known_slots(), 1);
    }

    #[test]
    fn unlimited_negotiation_gives_everything_to_first_demanding_schedd() {
        let c = collector_with_slots(6);
        let mut n = Negotiator::new();
        let allocs = n.negotiate(
            &c,
            &[(10, 0, None), (10, 0, None)],
            &[ClassAd::new(), ClassAd::new()],
        );
        assert_eq!(allocs.len(), 6);
        assert!(allocs.iter().all(|a| a.schedd == 0));
        assert_eq!(n.cycles(), 1);
    }

    #[test]
    fn claim_limit_spreads_slots_across_schedds() {
        let c = collector_with_slots(6);
        let mut n = Negotiator::new();
        let allocs = n.negotiate(
            &c,
            &[(10, 0, Some(2)), (10, 0, Some(2)), (10, 0, Some(2))],
            &[ClassAd::new(), ClassAd::new(), ClassAd::new()],
        );
        assert_eq!(allocs.len(), 6);
        for s in 0..3 {
            assert_eq!(allocs.iter().filter(|a| a.schedd == s).count(), 2);
        }
    }

    #[test]
    fn idle_job_count_bounds_allocations() {
        let c = collector_with_slots(6);
        let mut n = Negotiator::new();
        let allocs = n.negotiate(&c, &[(2, 0, None)], &[ClassAd::new()]);
        assert_eq!(allocs.len(), 2);
        let allocs = n.negotiate(&c, &[(0, 0, None)], &[ClassAd::new()]);
        assert!(allocs.is_empty());
    }

    #[test]
    fn matchmaking_requires_both_daemons_up() {
        let mut c = collector_with_slots(2);
        let mut n = Negotiator::new();
        n.fail();
        assert!(n
            .negotiate(&c, &[(5, 0, None)], &[ClassAd::new()])
            .is_empty());
        n.restart();
        c.fail();
        assert!(n
            .negotiate(&c, &[(5, 0, None)], &[ClassAd::new()])
            .is_empty());
        c.restart();
        // Collector lost its state; it must hear from the startds again first.
        assert!(n
            .negotiate(&c, &[(5, 0, None)], &[ClassAd::new()])
            .is_empty());
        c.update_slot(SimTime::from_secs(60), VmId(0), SlotState::Unclaimed, ClassAd::new());
        assert_eq!(n.negotiate(&c, &[(5, 0, None)], &[ClassAd::new()]).len(), 1);
    }

    #[test]
    fn requirements_filter_candidate_slots() {
        use crate::classad::{AdValue, ReqOp};
        let mut c = Collector::new();
        c.update_slot(
            SimTime::ZERO,
            VmId(0),
            SlotState::Unclaimed,
            ClassAd::new().with_number("memory", 512.0),
        );
        c.update_slot(
            SimTime::ZERO,
            VmId(1),
            SlotState::Unclaimed,
            ClassAd::new().with_number("memory", 4096.0),
        );
        let mut n = Negotiator::new();
        let picky = ClassAd::new().require("memory", ReqOp::Ge, AdValue::Number(1024.0));
        let allocs = n.negotiate(&c, &[(5, 0, None)], &[picky]);
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].vm, VmId(1));
    }
}
