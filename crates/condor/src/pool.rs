//! The Condor pool simulation: daemons wired into the discrete-event engine.
//!
//! [`CondorSimulation`] drives the process-centric baseline end to end: users
//! submit jobs to schedds, startds advertise to the collector, the negotiator
//! allocates slots, schedds push jobs to execute nodes subject to the job
//! throttle and their queue-length-dependent start cost, shadows and starters
//! monitor execution, and post-execution processing removes completed jobs.
//! The simulation produces the measurements behind Figures 13–16, Table 1 and
//! the Section 5.3.2 large-cluster crash observation.

use crate::classad::ClassAd;
use crate::config::CondorConfig;
use crate::matchmaker::{Collector, Negotiator, SlotState};
use crate::schedd::{QueuedJob, Schedd};
use crate::startd::ExecNode;
use appserver::{CostModel, RequestCost};
use cluster_sim::{
    Cluster, ClusterSpec, CpuAccountant, CpuSample, EventCounter, EventQueue, InProgressTracker,
    JobSpec, NodeHealth, SimDuration, SimRng, SimTime, StartOutcome, TimeSeries, TraceRecorder,
    VmId,
};
use std::collections::HashMap;

/// Events of the Condor simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// Periodic negotiation cycle.
    Negotiate,
    /// Periodic status updates from startds and schedds to the collector.
    CollectorUpdates,
    /// A schedd attempts to start its next idle job on a claimed slot.
    TryStart { schedd: usize },
    /// A deferred batch submission (used by the large-cluster ramp-up).
    Submit { schedd: usize, jobs: Vec<JobSpec> },
    /// Job setup finished on a node; the job begins executing.
    SetupDone { vm: VmId, job: u64 },
    /// Job setup timed out; the node dropped the job.
    DropDetected { vm: VmId, job: u64 },
    /// The job's runtime elapsed.
    JobFinished { vm: VmId, job: u64 },
    /// Starter teardown finished; the slot is claimed-idle again.
    TeardownDone { vm: VmId },
    /// Periodic metric sampling (queue lengths).
    Sample,
}

/// Summary of one simulation run, consumed by the experiment harness.
#[derive(Debug, Clone)]
pub struct CondorReport {
    /// Job completion events.
    pub completions: EventCounter,
    /// Jobs-in-progress series.
    pub in_progress: InProgressTracker,
    /// Total queue length (all schedds), sampled once a minute.
    pub queue_length: TimeSeries,
    /// Server-machine CPU samples (all four cores).
    pub server_cpu: Vec<CpuSample>,
    /// Per-schedd CPU samples (each schedd is a single thread / one core).
    pub schedd_cpu: Vec<Vec<CpuSample>>,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs dropped by execute nodes (each is requeued and retried).
    pub drops: u64,
    /// Distinct virtual machines that dropped at least one job.
    pub dropped_vms: usize,
    /// Distinct physical machines that dropped at least one job.
    pub dropped_phys: usize,
    /// Crash time of each schedd that crashed.
    pub crashes: Vec<(usize, SimTime)>,
    /// Status updates absorbed by the collector.
    pub collector_updates: u64,
    /// Negotiation cycles run.
    pub negotiation_cycles: u64,
    /// Data-flow trace of the first job, when tracing was enabled.
    pub trace: Option<TraceRecorder>,
    /// Simulated time when the run stopped.
    pub finished_at: SimTime,
}

/// The Condor baseline simulation.
pub struct CondorSimulation {
    config: CondorConfig,
    cluster: Cluster,
    health: NodeHealth,
    rng: SimRng,
    schedds: Vec<Schedd>,
    nodes: Vec<ExecNode>,
    collector: Collector,
    negotiator: Negotiator,
    queue: EventQueue<Event>,
    cost_model: CostModel,
    server_cpu: CpuAccountant,
    schedd_cpu: Vec<CpuAccountant>,
    completions: EventCounter,
    in_progress: InProgressTracker,
    queue_series: TimeSeries,
    job_specs: HashMap<u64, JobSpec>,
    job_schedd: HashMap<u64, usize>,
    next_job_id: u64,
    submitted: u64,
    completed: u64,
    start_pending: Vec<bool>,
    periodic_started: bool,
    trace: Option<TraceRecorder>,
    traced_job: Option<u64>,
}

impl CondorSimulation {
    /// Builds a pool over the given cluster specification.
    pub fn new(config: CondorConfig, cluster_spec: &ClusterSpec, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let cluster = cluster_spec.build(&mut rng);
        let nodes = cluster.vms.iter().map(|vm| ExecNode::new(vm.id)).collect();
        let schedds = (0..config.schedd_count.max(1))
            .map(|i| Schedd::new(i, config.clone()))
            .collect::<Vec<_>>();
        let schedd_cpu = (0..config.schedd_count.max(1))
            .map(|_| CpuAccountant::new(1, config.cpu_sample_interval))
            .collect();
        CondorSimulation {
            health: NodeHealth::new(config.failure_model),
            server_cpu: CpuAccountant::new(config.server_cores, config.cpu_sample_interval),
            schedd_cpu,
            start_pending: vec![false; config.schedd_count.max(1)],
            schedds,
            collector: Collector::new(),
            negotiator: Negotiator::new(),
            queue: EventQueue::new(),
            cost_model: CostModel::schedd_process(),
            completions: EventCounter::new("condor completions"),
            in_progress: InProgressTracker::new(),
            queue_series: TimeSeries::new("queue length"),
            job_specs: HashMap::new(),
            job_schedd: HashMap::new(),
            next_job_id: 0,
            submitted: 0,
            completed: 0,
            periodic_started: false,
            trace: None,
            traced_job: None,
            config,
            cluster,
            rng,
            nodes,
        }
    }

    /// Enables data-flow tracing of the first submitted job (Table 1).
    pub fn enable_tracing(&mut self) {
        self.trace = Some(TraceRecorder::new());
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Takes the collector down (its in-memory state is lost).
    pub fn fail_collector(&mut self) {
        self.collector.fail();
    }

    /// Restarts the collector; it repopulates as updates arrive.
    pub fn restart_collector(&mut self) {
        self.collector.restart();
    }

    /// Takes the negotiator down; no new matches are made while it is down.
    pub fn fail_negotiator(&mut self) {
        self.negotiator.fail();
    }

    /// Restarts the negotiator.
    pub fn restart_negotiator(&mut self) {
        self.negotiator.restart();
    }

    /// Submits jobs to a schedd immediately.
    pub fn submit(&mut self, schedd: usize, jobs: Vec<JobSpec>) {
        self.ensure_periodic_events();
        let now = self.queue.now();
        self.do_submit(now, schedd, jobs);
    }

    /// Schedules a batch submission at an absolute time (pulsed ramp-up).
    pub fn submit_at(&mut self, time: SimTime, schedd: usize, jobs: Vec<JobSpec>) {
        self.ensure_periodic_events();
        self.queue.schedule(time, Event::Submit { schedd, jobs });
    }

    fn do_submit(&mut self, now: SimTime, schedd: usize, jobs: Vec<JobSpec>) {
        let schedd = schedd.min(self.schedds.len() - 1);
        let mut queued = Vec::with_capacity(jobs.len());
        for spec in jobs {
            self.next_job_id += 1;
            let id = self.next_job_id;
            if self.traced_job.is_none() {
                if let Some(trace) = &mut self.trace {
                    trace.record(
                        "user",
                        "schedd",
                        "User submits job to schedd, schedd creates job in in-memory queue, logs job to disk",
                    );
                    self.traced_job = Some(id);
                }
            }
            self.job_specs.insert(id, spec.clone());
            self.job_schedd.insert(id, schedd);
            queued.push((id, spec));
            self.submitted += 1;
        }
        self.schedds[schedd].submit(now, queued);
        self.schedule_try_start(schedd);
    }

    fn ensure_periodic_events(&mut self) {
        if self.periodic_started {
            return;
        }
        self.periodic_started = true;
        self.queue
            .schedule(SimTime(1_000), Event::CollectorUpdates);
        self.queue
            .schedule(SimTime::ZERO + self.config.negotiation_interval, Event::Negotiate);
        self.queue.schedule(SimTime(30_000), Event::Sample);
    }

    fn unfinished_jobs(&self) -> u64 {
        self.submitted.saturating_sub(self.completed)
    }

    fn all_schedds_dead(&self) -> bool {
        self.schedds.iter().all(|s| !s.is_alive())
    }

    fn schedule_try_start(&mut self, schedd: usize) {
        if self.start_pending[schedd] || !self.schedds[schedd].is_alive() {
            return;
        }
        if self.schedds[schedd].queue_len() == 0 {
            return;
        }
        if self.schedds[schedd].idle_claimed_slot().is_none() {
            return;
        }
        self.start_pending[schedd] = true;
        self.queue
            .schedule(self.queue.now(), Event::TryStart { schedd });
    }

    fn charge_schedd(&mut self, schedd: usize, at: SimTime, cost: SimDuration) {
        // Schedd work is mostly user computation with a log-write IO share.
        let split = RequestCost {
            user: cost.mul_f64(0.75),
            system: cost.mul_f64(0.05),
            io: cost.mul_f64(0.20),
        };
        split.charge_to(&mut self.server_cpu, at);
        split.charge_to(&mut self.schedd_cpu[schedd], at);
    }

    /// Runs the simulation until simulated time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some((time, event)) = self.queue.pop_before(until) {
            self.dispatch(time, event);
        }
    }

    /// Runs until every submitted job has completed, every schedd has crashed,
    /// or `max_time` is reached. Returns the time the run stopped.
    pub fn run_to_completion(&mut self, max_time: SimTime) -> SimTime {
        loop {
            if self.unfinished_jobs() == 0 || self.all_schedds_dead() {
                return self.queue.now();
            }
            match self.queue.pop_before(max_time) {
                Some((time, event)) => self.dispatch(time, event),
                None => return self.queue.now().min(max_time),
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Submit { schedd, jobs } => self.do_submit(now, schedd, jobs),
            Event::Negotiate => self.handle_negotiate(now),
            Event::CollectorUpdates => self.handle_collector_updates(now),
            Event::TryStart { schedd } => self.handle_try_start(now, schedd),
            Event::SetupDone { vm, job } => self.handle_setup_done(now, vm, job),
            Event::DropDetected { vm, job } => self.handle_drop(now, vm, job),
            Event::JobFinished { vm, job } => self.handle_job_finished(now, vm, job),
            Event::TeardownDone { vm } => self.handle_teardown_done(now, vm),
            Event::Sample => self.handle_sample(now),
        }
    }

    fn machine_ad(&self, vm: VmId) -> ClassAd {
        let phys = self.cluster.phys_of(vm);
        ClassAd::new()
            .with_number("memory", 2048.0)
            .with_number("slowdown", phys.speed.slowdown)
            .with_str("name", self.cluster.vm_name(vm))
            .with_bool("start", true)
    }

    fn handle_collector_updates(&mut self, now: SimTime) {
        // Every startd and every schedd refreshes its state at the collector.
        for node in &self.nodes {
            let state = if node.is_running() {
                SlotState::Busy
            } else if node.claiming_schedd().is_some() {
                SlotState::Claimed
            } else {
                SlotState::Unclaimed
            };
            let ad = self.machine_ad(node.vm);
            self.collector.update_slot(now, node.vm, state, ad);
        }
        for schedd in &self.schedds {
            self.collector
                .update_schedd(now, schedd.index, schedd.queue_len(), schedd.running());
        }
        if let (Some(trace), false) = (&mut self.trace, self.traced_job.is_none()) {
            if trace.len() == 1 {
                trace.record("schedd", "collector", "Schedd sends job queue summary to collector");
                trace.record("startd", "collector", "Startd sends periodic heartbeat to collector");
            }
        }
        // Processing the update fan-in costs the collector a little CPU.
        let cost = RequestCost {
            user: SimDuration::from_secs_f64(8e-6 * self.nodes.len() as f64),
            system: SimDuration::from_secs_f64(6e-6 * self.nodes.len() as f64),
            io: SimDuration::ZERO,
        };
        cost.charge_to(&mut self.server_cpu, now);
        if self.unfinished_jobs() > 0 && !self.all_schedds_dead() {
            self.queue
                .schedule(now + self.config.collector_update_interval, Event::CollectorUpdates);
        }
    }

    fn handle_negotiate(&mut self, now: SimTime) {
        // Refresh the collector's view of unclaimed slots (status updates are
        // also sent on state change in real Condor; this keeps matchmaking
        // from stalling between full refresh cycles).
        for node in &self.nodes {
            if node.claiming_schedd().is_none() {
                let ad = self.machine_ad(node.vm);
                self.collector.update_slot(now, node.vm, SlotState::Unclaimed, ad);
            }
        }
        let demands: Vec<(usize, usize, Option<usize>)> = self
            .schedds
            .iter()
            .map(|s| {
                (
                    if s.is_alive() { s.queue_len() } else { 0 },
                    s.claimed_slots().len(),
                    self.config.max_running_per_schedd,
                )
            })
            .collect();
        let job_ads: Vec<ClassAd> = self.schedds.iter().map(|_| ClassAd::new()).collect();
        let allocations = self.negotiator.negotiate(&self.collector, &demands, &job_ads);

        // The negotiator walks machine and job ads in memory.
        let effort = (demands.iter().map(|d| d.0).sum::<usize>() + self.collector.known_slots()) as f64;
        self.cost_model
            .compute_cost(effort / 500.0)
            .charge_to(&mut self.server_cpu, now);

        let mut touched = Vec::new();
        let trace_first = self.trace.is_some() && !allocations.is_empty();
        for alloc in allocations {
            let node = &mut self.nodes[alloc.vm.0 as usize];
            if node.accept_claim(now, alloc.schedd) {
                self.schedds[alloc.schedd].add_claim(alloc.vm);
                touched.push(alloc.schedd);
            }
        }
        if trace_first {
            if let Some(trace) = &mut self.trace {
                if trace.len() <= 3 {
                    trace.record(
                        "collector",
                        "negotiator",
                        "Collector forwards job, machine data to negotiator for scheduling algorithm",
                    );
                    trace.record(
                        "negotiator",
                        "schedd",
                        "Negotiator contacts schedd for job-specific information, schedd sends job data to negotiator",
                    );
                    trace.record("negotiator", "schedd", "Negotiator informs schedd of job-machine match");
                    trace.record("negotiator", "startd", "Negotiator informs startd of job-machine match");
                }
            }
        }
        for schedd in touched {
            self.schedule_try_start(schedd);
        }
        if self.unfinished_jobs() > 0 && !self.all_schedds_dead() {
            self.queue
                .schedule(now + self.config.negotiation_interval, Event::Negotiate);
        }
    }

    fn handle_try_start(&mut self, now: SimTime, schedd_idx: usize) {
        self.start_pending[schedd_idx] = false;
        if !self.schedds[schedd_idx].is_alive() {
            return;
        }
        // Pick a claimed slot that is idle on *both* sides: no shadow at the
        // schedd and no starter still setting up or tearing down on the node.
        let Some(vm) = self.schedds[schedd_idx]
            .claimed_slots()
            .iter()
            .copied()
            .find(|vm| {
                self.nodes[vm.0 as usize].is_idle_claimed()
                    && self.schedds[schedd_idx].shadow_on(*vm).is_none()
            })
        else {
            return;
        };
        let Some(job) = self.schedds[schedd_idx].take_next_job() else {
            return;
        };
        let job_id = job.id;

        // The schedd's single thread processes the start: queue scan, log
        // write, contacting the startd, spawning the shadow.
        let (begin, cost) = self.schedds[schedd_idx].begin_start_processing(now);
        self.charge_schedd(schedd_idx, begin, cost);
        let handed_off = begin + cost;
        self.schedds[schedd_idx].spawn_shadow(handed_off, job_id, vm);
        self.nodes[vm.0 as usize].begin_setup(handed_off, job_id);

        if self.traced_job == Some(job_id) {
            if let Some(trace) = &mut self.trace {
                trace.record("schedd", "startd", "Schedd contacts startd to confirm match");
                trace.record("schedd", "shadow", "Schedd spawns shadow to monitor job progress");
                trace.record("startd", "starter", "Startd spawns starter to start up, monitor job");
                trace.record(
                    "shadow",
                    "starter",
                    "Shadow, starter establish socket connection to exchange job state information",
                );
            }
        }

        // The execute node sets up the job; slow, contended nodes may drop it.
        match self.health.try_start_job(&self.cluster, vm, &mut self.rng) {
            StartOutcome::Started { setup } => {
                self.queue
                    .schedule(handed_off + setup, Event::SetupDone { vm, job: job_id });
            }
            StartOutcome::Dropped { wasted } => {
                self.queue
                    .schedule(handed_off + wasted, Event::DropDetected { vm, job: job_id });
            }
        }
        // Keep pushing jobs while there is work and capacity.
        self.schedule_try_start(schedd_idx);
    }

    fn handle_setup_done(&mut self, now: SimTime, vm: VmId, job: u64) {
        self.health.finish_overhead(&self.cluster, vm);
        if !self.nodes[vm.0 as usize].begin_running(now) {
            return;
        }
        self.in_progress.start(now);
        let runtime = self
            .job_specs
            .get(&job)
            .map(|s| s.runtime)
            .unwrap_or(SimDuration::from_secs(60));
        if self.traced_job == Some(job) {
            if let Some(trace) = &mut self.trace {
                trace.record("starter", "shadow", "Starter sends shadow periodic job state update messages");
                trace.record("shadow", "schedd", "Shadow forwards job update messages to schedd");
            }
        }
        self.queue
            .schedule(now + runtime, Event::JobFinished { vm, job });
    }

    fn handle_drop(&mut self, now: SimTime, vm: VmId, job: u64) {
        self.health.finish_overhead(&self.cluster, vm);
        let schedd_idx = self.job_schedd.get(&job).copied().unwrap_or(0);
        self.nodes[vm.0 as usize].begin_teardown(now, false);
        if self.schedds[schedd_idx].is_alive() {
            self.schedds[schedd_idx].fail_job(vm);
            let spec = self
                .job_specs
                .get(&job)
                .cloned()
                .unwrap_or_else(|| JobSpec::new(SimDuration::from_secs(60), "unknown"));
            self.schedds[schedd_idx].requeue(QueuedJob {
                id: job,
                spec,
                submitted: now,
                requeues: 1,
            });
        }
        let teardown = self.health.teardown(&self.cluster, vm, &mut self.rng);
        self.queue
            .schedule(now + teardown, Event::TeardownDone { vm });
    }

    fn handle_job_finished(&mut self, now: SimTime, vm: VmId, job: u64) {
        let schedd_idx = self.job_schedd.get(&job).copied().unwrap_or(0);
        self.nodes[vm.0 as usize].begin_teardown(now, true);
        self.in_progress.finish(now);

        if self.schedds[schedd_idx].is_alive() && self.schedds[schedd_idx].over_memory() {
            // Section 5.3.2: the submit machine runs out of memory once jobs
            // start turning over with thousands of shadows resident.
            self.schedds[schedd_idx].crash(now);
        }
        if let Some((_shadow, cost)) = self.schedds[schedd_idx].complete_job(now, vm) {
            self.charge_schedd(schedd_idx, now, cost);
            self.completed += 1;
            self.completions.record(now);
            if self.traced_job == Some(job) {
                if let Some(trace) = &mut self.trace {
                    trace.record("starter", "shadow", "Starter notifies shadow when job completes, exits");
                    trace.record(
                        "shadow",
                        "schedd",
                        "Shadow exits, schedd captures exit code, removes job from queue",
                    );
                }
            }
        }
        let teardown = self.health.teardown(&self.cluster, vm, &mut self.rng);
        self.queue
            .schedule(now + teardown, Event::TeardownDone { vm });
    }

    fn handle_teardown_done(&mut self, now: SimTime, vm: VmId) {
        self.health.finish_overhead(&self.cluster, vm);
        self.nodes[vm.0 as usize].finish_teardown(now);
        let Some(schedd_idx) = self.nodes[vm.0 as usize].claiming_schedd() else {
            return;
        };
        if !self.schedds[schedd_idx].is_alive() || self.schedds[schedd_idx].queue_len() == 0 {
            // Nothing left for this claim; hand the slot back to the pool.
            self.nodes[vm.0 as usize].release(now);
            self.schedds[schedd_idx].release_claim(vm);
            return;
        }
        self.schedule_try_start(schedd_idx);
    }

    fn handle_sample(&mut self, now: SimTime) {
        let total_queue: usize = self.schedds.iter().map(Schedd::queue_len).sum();
        self.queue_series.push(now, total_queue as f64);
        if self.unfinished_jobs() > 0 && !self.all_schedds_dead() {
            self.queue.schedule(now + SimDuration::from_secs(60), Event::Sample);
        }
    }

    /// Produces the run report.
    pub fn report(&self) -> CondorReport {
        CondorReport {
            completions: self.completions.clone(),
            in_progress: self.in_progress.clone(),
            queue_length: self.queue_series.clone(),
            server_cpu: self.server_cpu.samples(),
            schedd_cpu: self.schedd_cpu.iter().map(CpuAccountant::samples).collect(),
            submitted: self.submitted,
            completed: self.completed,
            drops: self.health.total_drops(),
            dropped_vms: self.health.dropped_vm_count(),
            dropped_phys: self.health.dropped_phys_count(),
            crashes: self
                .schedds
                .iter()
                .filter_map(|s| s.crashed_at().map(|t| (s.index, t)))
                .collect(),
            collector_updates: self.collector.updates_received(),
            negotiation_cycles: self.negotiator.cycles(),
            trace: self.trace.clone(),
            finished_at: self.queue.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CondorConfig {
        CondorConfig {
            job_throttle_per_sec: 1.0,
            negotiation_interval: SimDuration::from_secs(5),
            collector_update_interval: SimDuration::from_secs(30),
            ..CondorConfig::default()
        }
    }

    #[test]
    fn completes_a_small_workload() {
        let spec = ClusterSpec::uniform_fast(5, 2);
        let mut sim = CondorSimulation::new(small_config(), &spec, 1);
        sim.submit(0, JobSpec::fixed_batch(20, SimDuration::from_secs(60), "alice"));
        let end = sim.run_to_completion(SimTime::from_mins(120));
        assert_eq!(sim.completed(), 20);
        assert_eq!(sim.submitted(), 20);
        assert!(end > SimTime::ZERO);
        let report = sim.report();
        assert_eq!(report.completed, 20);
        assert_eq!(report.completions.count(), 20);
        assert!(report.negotiation_cycles > 0);
        assert!(report.collector_updates > 0);
        assert!(report.crashes.is_empty());
        // Ten slots and a 1 job/s throttle: 20 one-minute jobs finish well
        // under ten minutes but not faster than two job "waves".
        assert!(end >= SimTime::from_secs(100));
        assert!(end <= SimTime::from_mins(10));
    }

    #[test]
    fn throttle_limits_job_start_rate() {
        let mut config = small_config();
        config.job_throttle_per_sec = 0.5;
        let spec = ClusterSpec::uniform_fast(30, 1);
        let mut sim = CondorSimulation::new(config, &spec, 2);
        // 30 ten-second jobs on 30 slots: with a 0.5/s throttle the starts
        // alone take ~60 seconds, so completion cannot beat that.
        sim.submit(0, JobSpec::fixed_batch(30, SimDuration::from_secs(10), "bob"));
        let end = sim.run_to_completion(SimTime::from_mins(30));
        assert_eq!(sim.completed(), 30);
        assert!(end >= SimTime::from_secs(60), "finished too fast: {end}");
    }

    #[test]
    fn trace_records_the_condor_data_flow() {
        let mut config = small_config();
        config.negotiation_interval = SimDuration::from_secs(2);
        config.collector_update_interval = SimDuration::from_secs(1);
        let spec = ClusterSpec::uniform_fast(1, 1);
        let mut sim = CondorSimulation::new(config, &spec, 3);
        sim.enable_tracing();
        sim.submit(0, JobSpec::fixed_batch(1, SimDuration::from_secs(30), "carol"));
        sim.run_to_completion(SimTime::from_mins(10));
        let report = sim.report();
        let trace = report.trace.expect("tracing enabled");
        assert_eq!(trace.len(), 15, "paper's Table 1 lists 15 steps:\n{}", trace.to_table("t"));
        // Seven entities: user, schedd, shadow, collector, negotiator, startd, starter.
        assert_eq!(trace.entities().len(), 7);
        // Ten distinct communication channels (Section 4.2.3).
        assert_eq!(trace.channels().len(), 10);
    }

    #[test]
    fn matchmaking_stops_while_negotiator_is_down() {
        let spec = ClusterSpec::uniform_fast(4, 1);
        let mut sim = CondorSimulation::new(small_config(), &spec, 4);
        sim.fail_negotiator();
        sim.submit(0, JobSpec::fixed_batch(4, SimDuration::from_secs(30), "dave"));
        sim.run_until(SimTime::from_mins(5));
        assert_eq!(sim.completed(), 0, "no matches while the negotiator is down");
        sim.restart_negotiator();
        sim.run_to_completion(SimTime::from_mins(30));
        assert_eq!(sim.completed(), 4, "work resumes after restart");
    }

    #[test]
    fn schedd_limit_spreads_work_across_schedds() {
        let mut config = small_config();
        config.schedd_count = 3;
        config.max_running_per_schedd = Some(2);
        let spec = ClusterSpec::uniform_fast(6, 1);
        let mut sim = CondorSimulation::new(config, &spec, 5);
        for s in 0..3 {
            sim.submit(s, JobSpec::fixed_batch(4, SimDuration::from_secs(60), "erin"));
        }
        sim.run_to_completion(SimTime::from_mins(30));
        assert_eq!(sim.completed(), 12);
        let report = sim.report();
        // Each schedd did some of the work (claims were spread by the limit).
        for cpu in &report.schedd_cpu {
            assert!(cpu.iter().any(|s| s.busy() > 0.0));
        }
    }
}
