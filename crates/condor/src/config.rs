//! Configuration of the Condor baseline.

use cluster_sim::{FailureModel, SimDuration};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the process-centric baseline.
///
/// Defaults follow the paper's description of Condor 6.8.2: a job throttle of
/// one job every two seconds, periodic status updates to the collector, and a
/// single-threaded schedd whose per-start cost grows with the length of its
/// in-memory job queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondorConfig {
    /// Number of schedds sharing the server machine (the paper runs up to
    /// three, reserving the fourth CPU for other processes).
    pub schedd_count: usize,
    /// Upper bound on job starts per second per schedd (the "job throttle").
    /// The Condor default is 0.5 (one job every two seconds).
    pub job_throttle_per_sec: f64,
    /// Optional hard limit on simultaneously executing jobs per schedd
    /// (the mitigation used for Figure 16).
    pub max_running_per_schedd: Option<usize>,
    /// Fixed component of the schedd's per-job-start processing time, in
    /// seconds.
    pub start_cost_base_secs: f64,
    /// Additional per-queued-job component of the per-start processing time,
    /// in seconds (the schedd walks its in-memory queue and rewrites its job
    /// log, so the cost grows with queue length).
    pub start_cost_per_queued_job_secs: f64,
    /// Fraction of the start cost charged again for post-execution processing
    /// (history, accounting, removing the job from the queue).
    pub completion_cost_fraction: f64,
    /// Interval between negotiation cycles.
    pub negotiation_interval: SimDuration,
    /// Interval between startd/schedd status updates to the collector.
    pub collector_update_interval: SimDuration,
    /// Resident memory per shadow process, in MiB. One shadow runs for every
    /// executing job submitted from the machine.
    pub shadow_memory_mib: f64,
    /// Resident memory per queued job in the schedd, in MiB.
    pub queued_job_memory_mib: f64,
    /// Memory available to the submit machine, in MiB. Exceeding it while
    /// jobs are turning over crashes the schedd (Section 5.3.2).
    pub submit_machine_memory_mib: f64,
    /// Execute-node failure model (shared with CondorJ2 so node behaviour is
    /// identical across systems).
    pub failure_model: FailureModel,
    /// Cores on the server machine hosting the schedds, collector and
    /// negotiator (the paper's quad Xeon).
    pub server_cores: u32,
    /// CPU sampling interval for the server machine.
    pub cpu_sample_interval: SimDuration,
}

impl Default for CondorConfig {
    fn default() -> Self {
        CondorConfig {
            schedd_count: 1,
            job_throttle_per_sec: 0.5,
            max_running_per_schedd: None,
            start_cost_base_secs: 0.05,
            start_cost_per_queued_job_secs: 0.00025,
            completion_cost_fraction: 0.4,
            negotiation_interval: SimDuration::from_secs(20),
            collector_update_interval: SimDuration::from_secs(300),
            shadow_memory_mib: 0.75,
            queued_job_memory_mib: 0.05,
            submit_machine_memory_mib: 4096.0,
            failure_model: FailureModel::default(),
            server_cores: 4,
            cpu_sample_interval: SimDuration::from_secs(60),
        }
    }
}

impl CondorConfig {
    /// The per-start processing time for a queue of `queue_len` jobs.
    pub fn start_cost(&self, queue_len: usize) -> SimDuration {
        SimDuration::from_secs_f64(
            self.start_cost_base_secs + self.start_cost_per_queued_job_secs * queue_len as f64,
        )
    }

    /// The minimum spacing between starts imposed by the job throttle.
    pub fn throttle_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.job_throttle_per_sec.max(1e-9))
    }

    /// Number of simultaneously running jobs at which the submit machine runs
    /// out of memory (shadows plus queue bookkeeping).
    pub fn crash_threshold_jobs(&self, queued: usize) -> usize {
        let queue_mem = self.queued_job_memory_mib * queued as f64;
        (((self.submit_machine_memory_mib - queue_mem).max(0.0)) / self.shadow_memory_mib) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_description() {
        let c = CondorConfig::default();
        assert_eq!(c.job_throttle_per_sec, 0.5);
        assert_eq!(c.throttle_interval(), SimDuration::from_secs(2));
        assert_eq!(c.server_cores, 4);
    }

    #[test]
    fn start_cost_grows_with_queue_length() {
        let c = CondorConfig::default();
        let empty = c.start_cost(0);
        let mid = c.start_cost(1800);
        let long = c.start_cost(5000);
        assert!(mid > empty);
        assert!(long > mid);
        // Calibration: the schedd falls behind a 2 jobs/s throttle somewhere
        // around 1,800 queued jobs and below 1 job/s around 5,000 (Figure 13).
        assert!(mid.as_secs_f64() > 0.45 && mid.as_secs_f64() < 0.60);
        assert!(long.as_secs_f64() > 1.0);
    }

    #[test]
    fn crash_threshold_is_near_five_thousand() {
        let c = CondorConfig::default();
        let threshold = c.crash_threshold_jobs(0);
        assert!(threshold > 4_000 && threshold < 6_500, "threshold {threshold}");
        // A long queue eats into the budget.
        assert!(c.crash_threshold_jobs(20_000) < threshold);
    }
}
