//! The startd and starter: the execute-machine side of the baseline.
//!
//! Each virtual machine (slot) is represented by a startd that advertises its
//! state to the collector, accepts claims from schedds, and spawns a starter
//! to set up and monitor each job. Neither daemon keeps any transactional or
//! recovery state.

use cluster_sim::{SimTime, VmId};
use serde::{Deserialize, Serialize};

/// The lifecycle of one execute slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Not claimed by any schedd.
    Unclaimed,
    /// Claimed by a schedd but not running a job.
    Claimed {
        /// The claiming schedd.
        schedd: usize,
    },
    /// A starter is setting up a job's execution environment.
    SettingUp {
        /// The claiming schedd.
        schedd: usize,
        /// The job being set up.
        job_id: u64,
    },
    /// A job is executing under a starter.
    Running {
        /// The claiming schedd.
        schedd: usize,
        /// The executing job.
        job_id: u64,
    },
    /// The starter is tearing down after a job finished or was dropped.
    TearingDown {
        /// The claiming schedd.
        schedd: usize,
    },
}

/// The startd for one execute slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecNode {
    /// The slot this startd represents.
    pub vm: VmId,
    /// Current lifecycle state.
    pub state: NodeState,
    /// Number of starters ever spawned on this slot.
    pub starters_spawned: u64,
    /// Number of jobs completed on this slot.
    pub jobs_completed: u64,
    /// Time of the last state change.
    pub last_transition: SimTime,
}

impl ExecNode {
    /// Creates an unclaimed node.
    pub fn new(vm: VmId) -> Self {
        ExecNode {
            vm,
            state: NodeState::Unclaimed,
            starters_spawned: 0,
            jobs_completed: 0,
            last_transition: SimTime::ZERO,
        }
    }

    /// The schedd holding the claim on this slot, if any.
    pub fn claiming_schedd(&self) -> Option<usize> {
        match self.state {
            NodeState::Unclaimed => None,
            NodeState::Claimed { schedd }
            | NodeState::SettingUp { schedd, .. }
            | NodeState::Running { schedd, .. }
            | NodeState::TearingDown { schedd } => Some(schedd),
        }
    }

    /// True when the slot can accept a new job start from its claiming schedd.
    pub fn is_idle_claimed(&self) -> bool {
        matches!(self.state, NodeState::Claimed { .. })
    }

    /// True when a job is currently executing.
    pub fn is_running(&self) -> bool {
        matches!(self.state, NodeState::Running { .. })
    }

    /// Accepts a claim from a schedd. Only valid for unclaimed slots.
    pub fn accept_claim(&mut self, now: SimTime, schedd: usize) -> bool {
        if self.state != NodeState::Unclaimed {
            return false;
        }
        self.state = NodeState::Claimed { schedd };
        self.last_transition = now;
        true
    }

    /// Releases the claim, returning the slot to the pool.
    pub fn release(&mut self, now: SimTime) {
        self.state = NodeState::Unclaimed;
        self.last_transition = now;
    }

    /// Spawns a starter to begin setting up `job_id`. Only valid when claimed
    /// and idle; returns `false` otherwise.
    pub fn begin_setup(&mut self, now: SimTime, job_id: u64) -> bool {
        let NodeState::Claimed { schedd } = self.state else {
            return false;
        };
        self.state = NodeState::SettingUp { schedd, job_id };
        self.starters_spawned += 1;
        self.last_transition = now;
        true
    }

    /// Marks setup complete; the job is now executing.
    pub fn begin_running(&mut self, now: SimTime) -> bool {
        let NodeState::SettingUp { schedd, job_id } = self.state else {
            return false;
        };
        self.state = NodeState::Running { schedd, job_id };
        self.last_transition = now;
        true
    }

    /// The job finished (or was dropped); the starter tears down.
    pub fn begin_teardown(&mut self, now: SimTime, completed: bool) -> Option<u64> {
        let (schedd, job_id) = match self.state {
            NodeState::Running { schedd, job_id } | NodeState::SettingUp { schedd, job_id } => {
                (schedd, Some(job_id))
            }
            NodeState::Claimed { schedd } => (schedd, None),
            _ => return None,
        };
        if completed {
            self.jobs_completed += 1;
        }
        self.state = NodeState::TearingDown { schedd };
        self.last_transition = now;
        job_id
    }

    /// Teardown finished; the slot is claimed-idle again.
    pub fn finish_teardown(&mut self, now: SimTime) -> bool {
        let NodeState::TearingDown { schedd } = self.state else {
            return false;
        };
        self.state = NodeState::Claimed { schedd };
        self.last_transition = now;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_job_lifecycle() {
        let mut node = ExecNode::new(VmId(3));
        assert_eq!(node.claiming_schedd(), None);
        assert!(node.accept_claim(SimTime::from_secs(1), 0));
        assert!(node.is_idle_claimed());
        assert_eq!(node.claiming_schedd(), Some(0));

        assert!(node.begin_setup(SimTime::from_secs(2), 42));
        assert!(!node.is_idle_claimed());
        assert!(node.begin_running(SimTime::from_secs(3)));
        assert!(node.is_running());

        assert_eq!(node.begin_teardown(SimTime::from_secs(63), true), Some(42));
        assert!(node.finish_teardown(SimTime::from_secs(64)));
        assert!(node.is_idle_claimed());
        assert_eq!(node.jobs_completed, 1);
        assert_eq!(node.starters_spawned, 1);

        node.release(SimTime::from_secs(65));
        assert_eq!(node.state, NodeState::Unclaimed);
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let mut node = ExecNode::new(VmId(0));
        assert!(!node.begin_setup(SimTime::ZERO, 1));
        assert!(!node.begin_running(SimTime::ZERO));
        assert!(node.begin_teardown(SimTime::ZERO, true).is_none());
        assert!(!node.finish_teardown(SimTime::ZERO));

        assert!(node.accept_claim(SimTime::ZERO, 1));
        assert!(!node.accept_claim(SimTime::ZERO, 2), "double claim rejected");
        assert!(!node.begin_running(SimTime::ZERO), "cannot run before setup");
    }

    #[test]
    fn dropped_setup_tears_down_without_completion() {
        let mut node = ExecNode::new(VmId(0));
        node.accept_claim(SimTime::ZERO, 0);
        node.begin_setup(SimTime::ZERO, 7);
        // The setup timed out; the job is dropped, not completed.
        assert_eq!(node.begin_teardown(SimTime::from_secs(8), false), Some(7));
        assert_eq!(node.jobs_completed, 0);
        assert!(node.finish_teardown(SimTime::from_secs(9)));
    }
}
