//! The schedd (job-queue manager) and its shadow processes.
//!
//! The schedd is the heart of the process-centric baseline: a single-threaded
//! daemon that owns an in-memory job queue backed by a persistent log used
//! only for recovery, spawns one shadow process per executing job, and starts
//! jobs no faster than its configured throttle. Its per-start processing cost
//! grows with the length of the queue, which is what produces the
//! throughput-versus-queue-length degradation of Figure 13 and the CPU
//! saturation of Figure 14.

use crate::config::CondorConfig;
use cluster_sim::{JobSpec, SimDuration, SimTime, VmId};
use std::collections::{BTreeMap, VecDeque};

/// A job queued at a schedd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    /// Pool-wide job id.
    pub id: u64,
    /// The job description.
    pub spec: JobSpec,
    /// Submission time.
    pub submitted: SimTime,
    /// How many times the job has been dropped by an execute node and requeued.
    pub requeues: u32,
}

/// One shadow process: the submit-side representative of a running job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shadow {
    /// The job the shadow monitors.
    pub job_id: u64,
    /// The execute slot the job runs on.
    pub vm: VmId,
    /// When the shadow was spawned.
    pub spawned: SimTime,
}

/// The schedd daemon state.
#[derive(Debug)]
pub struct Schedd {
    /// Index of this schedd on the submit machine.
    pub index: usize,
    config: CondorConfig,
    queue: VecDeque<QueuedJob>,
    /// Shadows keyed by execute slot; one per running job.
    shadows: BTreeMap<VmId, Shadow>,
    /// Execute slots claimed for this schedd by the negotiator.
    claimed: Vec<VmId>,
    /// Earliest time the throttle allows the next start.
    next_start_allowed: SimTime,
    /// The single schedd thread is busy until this time.
    busy_until: SimTime,
    /// Writes appended to the persistent job log (recovery only).
    log_writes: u64,
    completed: u64,
    crashed_at: Option<SimTime>,
}

impl Schedd {
    /// Creates an idle schedd.
    pub fn new(index: usize, config: CondorConfig) -> Self {
        Schedd {
            index,
            config,
            queue: VecDeque::new(),
            shadows: BTreeMap::new(),
            claimed: Vec::new(),
            next_start_allowed: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            log_writes: 0,
            completed: 0,
            crashed_at: None,
        }
    }

    /// Submits jobs to this schedd's queue (each is logged for recovery).
    pub fn submit(&mut self, now: SimTime, jobs: impl IntoIterator<Item = (u64, JobSpec)>) {
        for (id, spec) in jobs {
            self.queue.push_back(QueuedJob {
                id,
                spec,
                submitted: now,
                requeues: 0,
            });
            self.log_writes += 1;
        }
    }

    /// Jobs waiting in the queue (idle jobs).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently executing under this schedd (equals live shadows).
    pub fn running(&self) -> usize {
        self.shadows.len()
    }

    /// Jobs completed by this schedd.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total writes to the persistent job log.
    pub fn log_writes(&self) -> u64 {
        self.log_writes
    }

    /// When the schedd crashed, if it did.
    pub fn crashed_at(&self) -> Option<SimTime> {
        self.crashed_at
    }

    /// True when the schedd is still alive.
    pub fn is_alive(&self) -> bool {
        self.crashed_at.is_none()
    }

    /// Execute slots currently claimed for this schedd.
    pub fn claimed_slots(&self) -> &[VmId] {
        &self.claimed
    }

    /// Records a claim on an execute slot granted by the negotiator.
    pub fn add_claim(&mut self, vm: VmId) {
        if !self.claimed.contains(&vm) {
            self.claimed.push(vm);
        }
    }

    /// Releases a claim (slot handed back to the pool).
    pub fn release_claim(&mut self, vm: VmId) {
        self.claimed.retain(|v| *v != vm);
    }

    /// A claimed slot with no job currently running on it, if any.
    pub fn idle_claimed_slot(&self) -> Option<VmId> {
        self.claimed
            .iter()
            .copied()
            .find(|vm| !self.shadows.contains_key(vm))
    }

    /// True when the per-schedd running-job limit (if configured) is reached.
    pub fn at_running_limit(&self) -> bool {
        match self.config.max_running_per_schedd {
            Some(limit) => self.shadows.len() >= limit,
            None => false,
        }
    }

    /// Resident memory of the schedd plus its shadows, in MiB.
    pub fn memory_mib(&self) -> f64 {
        self.shadows.len() as f64 * self.config.shadow_memory_mib
            + self.queue.len() as f64 * self.config.queued_job_memory_mib
            + 64.0
    }

    /// True when memory use exceeds the submit machine's capacity.
    pub fn over_memory(&self) -> bool {
        self.memory_mib() > self.config.submit_machine_memory_mib
    }

    /// Marks the schedd as crashed (e.g. out of memory during turnover).
    pub fn crash(&mut self, now: SimTime) {
        if self.crashed_at.is_none() {
            self.crashed_at = Some(now);
            self.shadows.clear();
            self.claimed.clear();
        }
    }

    /// The processing cost of the next job start given the current queue.
    pub fn next_start_cost(&self) -> SimDuration {
        self.config.start_cost(self.queue.len())
    }

    /// Decides when the schedd can next begin start processing and how long it
    /// will take, honouring both the throttle and the single thread. Returns
    /// `(processing_begins, processing_cost)` and advances the internal
    /// throttle/busy bookkeeping; the caller charges the cost to the CPU model
    /// and schedules the downstream events.
    pub fn begin_start_processing(&mut self, now: SimTime) -> (SimTime, SimDuration) {
        let cost = self.next_start_cost();
        let begin = now.max(self.next_start_allowed).max(self.busy_until);
        self.busy_until = begin + cost;
        self.next_start_allowed = begin + self.config.throttle_interval();
        self.log_writes += 1;
        (begin, cost)
    }

    /// Pops the next idle job for starting. Returns `None` when the queue is
    /// empty or the schedd is crashed or at its running limit.
    pub fn take_next_job(&mut self) -> Option<QueuedJob> {
        if !self.is_alive() || self.at_running_limit() {
            return None;
        }
        self.queue.pop_front()
    }

    /// Requeues a job that an execute node dropped.
    pub fn requeue(&mut self, mut job: QueuedJob) {
        job.requeues += 1;
        self.log_writes += 1;
        self.queue.push_front(job);
    }

    /// Spawns a shadow for a job that has been handed to an execute slot.
    pub fn spawn_shadow(&mut self, now: SimTime, job_id: u64, vm: VmId) {
        self.shadows.insert(
            vm,
            Shadow {
                job_id,
                vm,
                spawned: now,
            },
        );
    }

    /// Completes the job running on `vm`: the shadow exits, the completion is
    /// logged, and the post-execution processing time is returned so the
    /// caller can charge it. Returns `None` if no shadow was running there
    /// (e.g. the schedd crashed in between).
    pub fn complete_job(&mut self, now: SimTime, vm: VmId) -> Option<(Shadow, SimDuration)> {
        let shadow = self.shadows.remove(&vm)?;
        self.completed += 1;
        self.log_writes += 1;
        let cost = self
            .config
            .start_cost(self.queue.len())
            .mul_f64(self.config.completion_cost_fraction);
        self.busy_until = now.max(self.busy_until) + cost;
        Some((shadow, cost))
    }

    /// Removes the shadow for a job that an execute node failed to run
    /// (dropped). The job is *not* counted as completed; the caller requeues
    /// it. Returns the shadow, if one was running on `vm`.
    pub fn fail_job(&mut self, vm: VmId) -> Option<Shadow> {
        let shadow = self.shadows.remove(&vm)?;
        self.log_writes += 1;
        Some(shadow)
    }

    /// The shadow running on `vm`, if any.
    pub fn shadow_on(&self, vm: VmId) -> Option<&Shadow> {
        self.shadows.get(&vm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedd() -> Schedd {
        Schedd::new(0, CondorConfig::default())
    }

    fn job(id: u64) -> (u64, JobSpec) {
        (id, JobSpec::new(SimDuration::from_secs(60), "alice"))
    }

    #[test]
    fn submit_and_take_jobs_in_fifo_order() {
        let mut s = schedd();
        s.submit(SimTime::ZERO, vec![job(1), job(2), job(3)]);
        assert_eq!(s.queue_len(), 3);
        assert_eq!(s.log_writes(), 3);
        assert_eq!(s.take_next_job().unwrap().id, 1);
        assert_eq!(s.take_next_job().unwrap().id, 2);
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn throttle_spaces_out_starts() {
        let mut s = schedd();
        s.submit(SimTime::ZERO, (0..10).map(job));
        let (t1, _) = s.begin_start_processing(SimTime::ZERO);
        let (t2, _) = s.begin_start_processing(SimTime::ZERO);
        assert_eq!(t1, SimTime::ZERO);
        // Default throttle is one start every two seconds.
        assert_eq!(t2, SimTime::from_secs(2));
    }

    #[test]
    fn long_queue_makes_starts_slower_than_throttle() {
        let config = CondorConfig {
            job_throttle_per_sec: 2.0,
            ..CondorConfig::default()
        };
        let mut s = Schedd::new(0, config);
        s.submit(SimTime::ZERO, (0..6000).map(job));
        let (t1, c1) = s.begin_start_processing(SimTime::ZERO);
        let (t2, _c2) = s.begin_start_processing(SimTime::ZERO);
        // With ~6,000 queued jobs the per-start cost exceeds the 0.5 s
        // throttle interval, so the single thread is the limiting factor.
        assert!(c1.as_secs_f64() > 1.0);
        assert!(t2 - t1 >= c1);
    }

    #[test]
    fn shadows_track_running_jobs_and_memory() {
        let mut s = schedd();
        s.submit(SimTime::ZERO, (0..5).map(job));
        let base_mem = s.memory_mib();
        for i in 0..3u32 {
            let queued = s.take_next_job().unwrap();
            s.spawn_shadow(SimTime::from_secs(i as u64), queued.id, VmId(i));
        }
        assert_eq!(s.running(), 3);
        assert!(s.memory_mib() > base_mem);
        assert!(s.shadow_on(VmId(1)).is_some());

        let (shadow, cost) = s.complete_job(SimTime::from_secs(100), VmId(1)).unwrap();
        assert_eq!(shadow.vm, VmId(1));
        assert!(cost.as_millis() > 0);
        assert_eq!(s.running(), 2);
        assert_eq!(s.completed(), 1);
        assert!(s.complete_job(SimTime::from_secs(101), VmId(9)).is_none());
    }

    #[test]
    fn running_limit_blocks_takes() {
        let config = CondorConfig {
            max_running_per_schedd: Some(2),
            ..CondorConfig::default()
        };
        let mut s = Schedd::new(0, config);
        s.submit(SimTime::ZERO, (0..5).map(job));
        for i in 0..2u32 {
            let j = s.take_next_job().unwrap();
            s.spawn_shadow(SimTime::ZERO, j.id, VmId(i));
        }
        assert!(s.at_running_limit());
        assert!(s.take_next_job().is_none());
        s.complete_job(SimTime::from_secs(60), VmId(0));
        assert!(!s.at_running_limit());
        assert!(s.take_next_job().is_some());
    }

    #[test]
    fn claims_and_idle_slots() {
        let mut s = schedd();
        s.add_claim(VmId(1));
        s.add_claim(VmId(2));
        s.add_claim(VmId(1));
        assert_eq!(s.claimed_slots().len(), 2);
        assert_eq!(s.idle_claimed_slot(), Some(VmId(1)));
        s.spawn_shadow(SimTime::ZERO, 1, VmId(1));
        assert_eq!(s.idle_claimed_slot(), Some(VmId(2)));
        s.release_claim(VmId(2));
        assert_eq!(s.idle_claimed_slot(), None);
    }

    #[test]
    fn crash_clears_state_and_stops_work() {
        let mut s = schedd();
        s.submit(SimTime::ZERO, (0..3).map(job));
        let j = s.take_next_job().unwrap();
        s.spawn_shadow(SimTime::ZERO, j.id, VmId(0));
        s.crash(SimTime::from_secs(10));
        assert!(!s.is_alive());
        assert_eq!(s.crashed_at(), Some(SimTime::from_secs(10)));
        assert_eq!(s.running(), 0);
        assert!(s.take_next_job().is_none());
        // Crashing twice keeps the first timestamp.
        s.crash(SimTime::from_secs(99));
        assert_eq!(s.crashed_at(), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn requeue_preserves_job_and_counts_attempts() {
        let mut s = schedd();
        s.submit(SimTime::ZERO, vec![job(7)]);
        let j = s.take_next_job().unwrap();
        s.requeue(j);
        let j = s.take_next_job().unwrap();
        assert_eq!(j.id, 7);
        assert_eq!(j.requeues, 1);
    }
}
