//! # condor — the process-centric baseline cluster manager
//!
//! This crate reimplements the Condor architecture the paper compares against
//! (Section 2): a semi-distributed, process-oriented system in which a
//! single-threaded schedd manages each submit machine's in-memory job queue, a
//! shadow process monitors every executing job, the collector/negotiator pair
//! performs centralised matchmaking from in-memory state, and the
//! startd/starter pair runs jobs on execute machines. The implementation is
//! faithful to the behaviours the evaluation depends on: the job throttle,
//! queue-length-dependent start cost, per-job shadow memory footprint,
//! sequential negotiator allocation, and loss of matchmaking while the
//! collector or negotiator is down.
//!
//! The [`pool::CondorSimulation`] type wires these daemons into the
//! `cluster-sim` event engine and produces the measurements behind Figures
//! 13–16 and Table 1 of the paper.

#![warn(missing_docs)]

pub mod classad;
pub mod config;
pub mod matchmaker;
pub mod pool;
pub mod schedd;
pub mod startd;

pub use classad::{AdValue, ClassAd, ReqOp, Requirement};
pub use config::CondorConfig;
pub use matchmaker::{Allocation, Collector, Negotiator, SlotState};
pub use pool::{CondorReport, CondorSimulation};
pub use schedd::{QueuedJob, Schedd, Shadow};
pub use startd::{ExecNode, NodeState};
