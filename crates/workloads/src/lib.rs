//! # workloads — experiment harness for the CondorJ2 reproduction
//!
//! One runner per table and figure of the paper's evaluation, each available
//! at paper scale (the published cluster sizes and durations) or at a quick
//! scale suitable for tests and Criterion benchmarks. The `bench` crate's
//! `figures` binary calls these runners and prints the same rows/series the
//! paper reports; `EXPERIMENTS.md` records the paper-versus-measured
//! comparison for each one.

#![warn(missing_docs)]

pub mod figures;

pub use figures::{
    condor_dataflow_trace, condor_large_cluster, condor_mixed_workload, condorj2_dataflow_trace,
    condorj2_mixed_workload, large_cluster_experiment, queue_length_experiment,
    throughput_experiment, CondorLargeClusterResult, LargeClusterExperiment,
    MixedWorkloadExperiment, QueueLengthExperiment, Scale, ThroughputExperiment, ThroughputPoint,
};

/// Counts the lines of Rust source in each crate of this repository, the
/// reproduction's analogue of the paper's Section 4.2.3.1 code-base-size
/// comparison. Returns `(crate name, lines)` pairs plus the total.
pub fn codebase_size(repo_root: &std::path::Path) -> (Vec<(String, usize)>, usize) {
    fn count_dir(dir: &std::path::Path) -> usize {
        let mut lines = 0;
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                lines += count_dir(&path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    lines += text.lines().count();
                }
            }
        }
        lines
    }
    let mut per_crate = Vec::new();
    let mut total = 0;
    let crates_dir = repo_root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut names: Vec<_> = entries
            .flatten()
            .filter(|e| e.path().is_dir())
            .map(|e| e.path())
            .collect();
        names.sort();
        for path in names {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("unknown")
                .to_string();
            let lines = count_dir(&path);
            total += lines;
            per_crate.push((name, lines));
        }
    }
    for extra in ["examples", "tests", "src"] {
        let lines = count_dir(&repo_root.join(extra));
        if lines > 0 {
            total += lines;
            per_crate.push((extra.to_string(), lines));
        }
    }
    (per_crate, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codebase_size_counts_this_repository() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let (per_crate, total) = codebase_size(&root);
        assert!(per_crate.iter().any(|(n, _)| n == "relstore"));
        assert!(total > 5_000, "expected a substantial code base, found {total} lines");
    }

    #[test]
    fn codebase_size_of_missing_directory_is_empty() {
        let (per_crate, total) = codebase_size(std::path::Path::new("/nonexistent/path"));
        assert!(per_crate.is_empty());
        assert_eq!(total, 0);
    }
}
