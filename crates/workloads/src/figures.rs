//! Experiment runners: one function per table/figure of the paper's
//! evaluation (Section 5), plus the Section 4.2 data-flow tables.
//!
//! Every experiment can be run at [`Scale::Paper`] (the sizes reported in the
//! paper) or [`Scale::Quick`] (a proportionally smaller configuration used by
//! tests and Criterion benchmarks). The returned structs expose both the raw
//! series and a `render()` method that prints the rows/series the paper
//! reports.

use cluster_sim::{ClusterSpec, JobSpec, SimDuration, SimTime, TraceRecorder};
use condor::{CondorConfig, CondorSimulation};
use condorj2::{CondorJ2Config, CondorJ2Simulation};
use std::fmt::Write as _;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The sizes used in the paper (e.g. 10,000 virtual machines, 8 hours).
    Paper,
    /// A proportionally reduced configuration for tests and benches.
    Quick,
}

impl Scale {
    fn shrink(&self, full: u32, quick: u32) -> u32 {
        match self {
            Scale::Paper => full,
            Scale::Quick => quick,
        }
    }
}

fn fmt_series_header(out: &mut String, title: &str, columns: &[&str]) {
    let _ = writeln!(out, "\n{title}");
    let _ = writeln!(out, "{}", columns.join("\t"));
}

// ---------------------------------------------------------------------------
// Figures 7, 8, 9: CondorJ2 scheduling throughput, node drops, CAS CPU.
// ---------------------------------------------------------------------------

/// One row of the scheduling-throughput experiment (one job length).
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Job length in seconds.
    pub job_secs: u64,
    /// The ideal throughput required to keep the cluster fully busy
    /// (`virtual machines / job length`), in jobs per second.
    pub ideal_rate: f64,
    /// The observed steady-state scheduling throughput, in jobs per second.
    pub observed_rate: f64,
    /// Distinct virtual nodes that dropped at least one job (Figure 8).
    pub dropped_vms: usize,
    /// Distinct physical nodes that dropped at least one job (Figure 8).
    pub dropped_phys: usize,
    /// Mean CAS CPU utilisation during the run (Figure 9): user %.
    pub cpu_user: f64,
    /// Mean system %.
    pub cpu_system: f64,
    /// Mean IO %.
    pub cpu_io: f64,
    /// Mean idle %.
    pub cpu_idle: f64,
}

/// Results of the Figure 7/8/9 experiment family.
#[derive(Debug, Clone)]
pub struct ThroughputExperiment {
    /// Number of virtual machines simulated.
    pub virtual_machines: u32,
    /// Number of physical machines simulated.
    pub physical_machines: u32,
    /// One point per job length, longest job first (as in the paper).
    pub points: Vec<ThroughputPoint>,
}

impl ThroughputExperiment {
    /// Renders Figures 7, 8 and 9 as text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "CondorJ2 scheduling throughput — {} virtual machines on {} physical machines",
            self.virtual_machines, self.physical_machines
        );
        fmt_series_header(
            &mut out,
            "Figure 7: scheduling throughput vs job length (jobs/sec)",
            &["job_secs", "ideal", "observed"],
        );
        for p in &self.points {
            let _ = writeln!(out, "{}\t{:.2}\t{:.2}", p.job_secs, p.ideal_rate, p.observed_rate);
        }
        fmt_series_header(
            &mut out,
            "Figure 8: execute hosts failing to run jobs",
            &["job_secs", "virtual_nodes_dropping", "physical_nodes_dropping"],
        );
        for p in &self.points {
            let _ = writeln!(out, "{}\t{}\t{}", p.job_secs, p.dropped_vms, p.dropped_phys);
        }
        fmt_series_header(
            &mut out,
            "Figure 9: CAS CPU utilisation vs scheduling throughput (percent)",
            &["observed_rate", "io", "system", "user", "idle"],
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
                p.observed_rate, p.cpu_io, p.cpu_system, p.cpu_user, p.cpu_idle
            );
        }
        out
    }
}

/// Runs the Figure 7/8/9 experiments: a 180-VM cluster (45 physical machines
/// with four VMs each at paper scale) preloaded with fixed-length jobs, one
/// run per job length from five minutes down to six seconds.
pub fn throughput_experiment(scale: Scale, seed: u64) -> ThroughputExperiment {
    let phys = scale.shrink(45, 9);
    let vms_per = 4;
    let job_lengths: &[u64] = &[300, 60, 18, 9, 6];
    let spec = ClusterSpec::paper_testbed(phys, vms_per);
    let total_vms = spec.total_vms();

    let mut points = Vec::new();
    for &job_secs in job_lengths {
        let config = CondorJ2Config::default();
        // Enough jobs to keep the whole cluster busy for the full observation
        // window (the paper pre-loads at least twenty minutes of work).
        let window_mins = 20u64;
        let job_count = (total_vms as u64 * window_mins * 60) / job_secs.max(1)
            + total_vms as u64 * 2;
        let mut sim = CondorJ2Simulation::new(config, &spec, seed ^ job_secs);
        sim.submit(JobSpec::fixed_batch(
            job_count as usize,
            SimDuration::from_secs(job_secs),
            "throughput-user",
        ));
        let horizon = SimTime::from_mins(window_mins);
        sim.run_until(horizon);
        let report = sim.report();

        // Steady-state rate excluding ramp-up and ramp-down, as the paper does:
        // completions per second over the middle of the observation window.
        let lo = SimTime((horizon.0 as f64 * 0.35) as u64);
        let hi = SimTime((horizon.0 as f64 * 0.90) as u64);
        let observed = report.completions.rate_between(lo, hi);
        let ideal = total_vms as f64 / job_secs as f64;
        let cpu = mean_cpu(&report.server_cpu, observed);
        points.push(ThroughputPoint {
            job_secs,
            ideal_rate: ideal,
            observed_rate: observed,
            dropped_vms: report.dropped_vms,
            dropped_phys: report.dropped_phys,
            cpu_user: cpu.0,
            cpu_system: cpu.1,
            cpu_io: cpu.2,
            cpu_idle: cpu.3,
        });
    }
    ThroughputExperiment {
        virtual_machines: total_vms,
        physical_machines: phys,
        points,
    }
}

fn mean_cpu(samples: &[cluster_sim::CpuSample], _rate: f64) -> (f64, f64, f64, f64) {
    // Skip the first and last samples (ramp up / down).
    let inner: Vec<_> = if samples.len() > 4 {
        samples[1..samples.len() - 1].to_vec()
    } else {
        samples.to_vec()
    };
    if inner.is_empty() {
        return (0.0, 0.0, 0.0, 100.0);
    }
    let n = inner.len() as f64;
    (
        inner.iter().map(|s| s.user).sum::<f64>() / n,
        inner.iter().map(|s| s.system).sum::<f64>() / n,
        inner.iter().map(|s| s.io).sum::<f64>() / n,
        inner.iter().map(|s| s.idle).sum::<f64>() / n,
    )
}

// ---------------------------------------------------------------------------
// Figure 10: CAS CPU in a 10,000-VM cluster.
// ---------------------------------------------------------------------------

/// Results of the large-cluster CondorJ2 experiment (Figure 10).
#[derive(Debug, Clone)]
pub struct LargeClusterExperiment {
    /// Virtual machines simulated.
    pub virtual_machines: u32,
    /// Five-minute rolling averages of CAS CPU utilisation, one per minute:
    /// `(minute, io, system, user, idle)`.
    pub cpu_series: Vec<(u64, f64, f64, f64, f64)>,
    /// Jobs submitted / completed.
    pub submitted: u64,
    /// Jobs completed by the end of the observation window.
    pub completed: u64,
    /// Connection-pool high-water mark (bounded by the pool size).
    pub pool_high_water: usize,
    /// Number of DBMS maintenance (checkpoint) runs observed.
    pub checkpoints: u64,
}

impl LargeClusterExperiment {
    /// Renders the Figure 10 series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "CondorJ2 large cluster: {} virtual machines, {} jobs submitted, {} completed, pool high-water {}, {} checkpoints",
            self.virtual_machines, self.submitted, self.completed, self.pool_high_water, self.checkpoints
        );
        fmt_series_header(
            &mut out,
            "Figure 10: CAS CPU utilisation (5-minute rolling average, percent)",
            &["minute", "io", "system", "user", "idle"],
        );
        for (m, io, sys, user, idle) in &self.cpu_series {
            let _ = writeln!(out, "{m}\t{io:.1}\t{sys:.1}\t{user:.1}\t{idle:.1}");
        }
        out
    }

    /// Mean busy percentage over a minute range (used to compare plateaus).
    pub fn mean_busy(&self, from_min: u64, to_min: u64) -> f64 {
        let sel: Vec<f64> = self
            .cpu_series
            .iter()
            .filter(|(m, ..)| *m >= from_min && *m < to_min)
            .map(|(_, io, sys, user, _)| io + sys + user)
            .collect();
        if sel.is_empty() {
            0.0
        } else {
            sel.iter().sum::<f64>() / sel.len() as f64
        }
    }
}

/// Runs the Figure 10 experiment: a 10,000-VM cluster (50 × 200 at paper
/// scale) ramped up with 20 batches of 2,500 150-minute jobs at five-minute
/// intervals, observed for eight hours.
pub fn large_cluster_experiment(scale: Scale, seed: u64) -> LargeClusterExperiment {
    let (phys, vms_per, batches, job_mins, hours) = match scale {
        Scale::Paper => (50u32, 200u32, 20u32, 150u64, 8u64),
        Scale::Quick => (10, 20, 5, 20, 2),
    };
    let spec = ClusterSpec::uniform_fast(phys, vms_per);
    let total_vms = spec.total_vms();
    let batch_size = (total_vms / batches).max(1) as usize;

    let config = CondorJ2Config::large_cluster();
    let mut sim = CondorJ2Simulation::new(config, &spec, seed);
    for b in 0..batches {
        sim.submit_at(
            SimTime::from_mins(b as u64 * 5),
            JobSpec::fixed_batch(batch_size, SimDuration::from_mins(job_mins), "ramp-user"),
        );
    }
    // A second wave keeps jobs turning over through the observation window.
    for b in 0..batches {
        sim.submit_at(
            SimTime::from_mins(job_mins + b as u64 * 5),
            JobSpec::fixed_batch(batch_size, SimDuration::from_mins(job_mins), "ramp-user"),
        );
    }
    sim.run_until(SimTime::from_mins(hours * 60));
    let report = sim.report();
    let cpu_series = report
        .server_cpu_rolling
        .iter()
        .map(|s| (s.time.0 / 60_000, s.io, s.system, s.user, s.idle))
        .collect();
    LargeClusterExperiment {
        virtual_machines: total_vms,
        cpu_series,
        submitted: report.submitted,
        completed: report.completed,
        pool_high_water: report.pool_high_water,
        checkpoints: report.db_stats.checkpoints,
    }
}

// ---------------------------------------------------------------------------
// Figures 11, 12, 15, 16: mixed workloads.
// ---------------------------------------------------------------------------

/// Results of a mixed-workload run on either system.
#[derive(Debug, Clone)]
pub struct MixedWorkloadExperiment {
    /// Which system produced the result (`"condorj2"` or `"condor"`).
    pub system: String,
    /// Whether a per-schedd running-job limit was configured (Figure 16).
    pub schedd_limited: bool,
    /// Jobs in progress, sampled once a minute.
    pub in_progress: Vec<(u64, i64)>,
    /// Job completions per minute (Figure 12).
    pub completions_per_minute: Vec<(u64, u64)>,
    /// Total jobs in the workload.
    pub total_jobs: usize,
    /// Minutes until the whole workload completed.
    pub makespan_minutes: f64,
    /// The optimal makespan implied by total work / cluster size.
    pub optimal_minutes: f64,
}

impl MixedWorkloadExperiment {
    /// Renders the in-progress and turnover series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} mixed workload ({}): {} jobs, makespan {:.1} min (optimal {:.0} min)",
            self.system,
            if self.schedd_limited { "schedd limited" } else { "no schedd limit" },
            self.total_jobs,
            self.makespan_minutes,
            self.optimal_minutes
        );
        fmt_series_header(&mut out, "Jobs in progress vs elapsed time", &["minute", "in_progress"]);
        for (m, n) in &self.in_progress {
            let _ = writeln!(out, "{m}\t{n}");
        }
        fmt_series_header(&mut out, "Job turnover rate", &["minute", "completions"]);
        for (m, n) in &self.completions_per_minute {
            let _ = writeln!(out, "{m}\t{n}");
        }
        out
    }
}

/// Runs the CondorJ2 mixed-workload experiment (Figures 11 and 12): a 540-VM
/// cluster (45 × 12 at paper scale) with 6,480 one-minute jobs and 1,620
/// six-minute jobs — 30 minutes of work at full utilisation.
pub fn condorj2_mixed_workload(scale: Scale, seed: u64) -> MixedWorkloadExperiment {
    let phys = scale.shrink(45, 9);
    let vms_per = 12;
    let spec = ClusterSpec::uniform_fast(phys, vms_per);
    let total_vms = spec.total_vms() as usize;
    let short = total_vms * 12;
    let long = total_vms * 3;

    let mut sim = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, seed);
    sim.submit(JobSpec::mixed_batch(
        short,
        SimDuration::from_secs(60),
        long,
        SimDuration::from_mins(6),
        "mixed-user",
    ));
    let end = sim.run_to_completion(SimTime::from_mins(180));
    let report = sim.report();
    mixed_report(
        "condorj2",
        false,
        total_vms,
        short + long,
        end,
        report.in_progress.sampled(SimDuration::from_secs(60), end),
        report.completions.per_bucket(SimDuration::from_secs(60)),
    )
}

/// Runs the Condor mixed-workload experiment (Figures 15 and 16): a 180-VM
/// cluster, three schedds with the job queue split evenly, with or without
/// the per-schedd limit of 60 simultaneously running jobs.
pub fn condor_mixed_workload(scale: Scale, limited: bool, seed: u64) -> MixedWorkloadExperiment {
    let phys = scale.shrink(45, 27);
    let vms_per = 4;
    let spec = ClusterSpec::uniform_fast(phys, vms_per);
    let total_vms = spec.total_vms() as usize;
    let short_total = total_vms * 12;
    let long_total = total_vms * 3;

    let config = CondorConfig {
        schedd_count: 3,
        job_throttle_per_sec: 1.0,
        max_running_per_schedd: if limited { Some(total_vms / 3) } else { None },
        negotiation_interval: SimDuration::from_secs(20),
        ..CondorConfig::default()
    };
    let mut sim = CondorSimulation::new(config, &spec, seed);
    for s in 0..3 {
        sim.submit(
            s,
            JobSpec::mixed_batch(
                short_total / 3,
                SimDuration::from_secs(60),
                long_total / 3,
                SimDuration::from_mins(6),
                "mixed-user",
            ),
        );
    }
    let end = sim.run_to_completion(SimTime::from_mins(240));
    let report = sim.report();
    mixed_report(
        "condor",
        limited,
        total_vms,
        short_total + long_total,
        end,
        report.in_progress.sampled(SimDuration::from_secs(60), end),
        report.completions.per_bucket(SimDuration::from_secs(60)),
    )
}

#[allow(clippy::too_many_arguments)]
fn mixed_report(
    system: &str,
    limited: bool,
    _total_vms: usize,
    total_jobs: usize,
    end: SimTime,
    in_progress: Vec<(SimTime, i64)>,
    per_minute: Vec<(SimTime, u64)>,
) -> MixedWorkloadExperiment {
    // Total work per VM = 12 one-minute jobs + 3 six-minute jobs = 30 minutes.
    MixedWorkloadExperiment {
        system: system.to_string(),
        schedd_limited: limited,
        in_progress: in_progress.iter().map(|(t, v)| (t.0 / 60_000, *v)).collect(),
        completions_per_minute: per_minute.iter().map(|(t, v)| (t.0 / 60_000, *v)).collect(),
        total_jobs,
        makespan_minutes: end.as_mins_f64(),
        optimal_minutes: 30.0,
    }
}

// ---------------------------------------------------------------------------
// Figures 13, 14: Condor scheduling rate and schedd CPU vs queue length.
// ---------------------------------------------------------------------------

/// One sample of the Condor queue-length experiment.
#[derive(Debug, Clone, Copy)]
pub struct QueueLengthPoint {
    /// Jobs in the schedd queue at the start of the sampling minute.
    pub queue_length: f64,
    /// Scheduling throughput during that minute, jobs per second.
    pub rate: f64,
    /// Schedd CPU busy percentage (×4 as in the paper, so 100 % = one core).
    pub cpu_busy: f64,
    /// Schedd user percentage (×4).
    pub cpu_user: f64,
    /// Schedd IO percentage (×4).
    pub cpu_io: f64,
}

/// Results of the Figure 13/14 experiment.
#[derive(Debug, Clone)]
pub struct QueueLengthExperiment {
    /// The configured job throttle (jobs/sec).
    pub throttle: f64,
    /// Samples ordered by decreasing queue length (the queue drains).
    pub points: Vec<QueueLengthPoint>,
}

impl QueueLengthExperiment {
    /// Renders Figures 13 and 14.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Condor schedd, job throttle {} jobs/sec", self.throttle);
        fmt_series_header(
            &mut out,
            "Figure 13: scheduling rate vs job queue length",
            &["queue_length", "jobs_per_sec"],
        );
        for p in &self.points {
            let _ = writeln!(out, "{:.0}\t{:.2}", p.queue_length, p.rate);
        }
        fmt_series_header(
            &mut out,
            "Figure 14: schedd CPU vs job queue length (percent of one CPU)",
            &["queue_length", "user", "io", "idle"],
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:.0}\t{:.1}\t{:.1}\t{:.1}",
                p.queue_length,
                p.cpu_user,
                p.cpu_io,
                (100.0 - p.cpu_busy).max(0.0)
            );
        }
        out
    }

    /// The largest queue length at which the observed rate still reaches
    /// `fraction` of the throttle (e.g. the paper's ~1,800-job crossover for
    /// staying at 2 jobs/s).
    pub fn crossover_queue_length(&self, fraction: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.rate >= self.throttle * fraction)
            .map(|p| p.queue_length)
            .fold(0.0, f64::max)
    }
}

/// Runs the Figure 13/14 experiment: one schedd, the job throttle raised to
/// two jobs per second, a long queue of one-minute jobs and enough virtual
/// machines to keep the schedd busy; the relationship between queue length,
/// observed rate and schedd CPU emerges as the queue drains.
pub fn queue_length_experiment(scale: Scale, seed: u64) -> QueueLengthExperiment {
    let throttle = 2.0;
    let (jobs, vms) = match scale {
        Scale::Paper => (8_000usize, 400u32),
        Scale::Quick => (1_200, 120),
    };
    let spec = ClusterSpec::uniform_fast(vms / 4, 4);
    let config = CondorConfig {
        job_throttle_per_sec: throttle,
        negotiation_interval: SimDuration::from_secs(10),
        collector_update_interval: SimDuration::from_secs(120),
        ..CondorConfig::default()
    };
    let mut sim = CondorSimulation::new(config, &spec, seed);
    sim.submit(0, JobSpec::fixed_batch(jobs, SimDuration::from_secs(60), "queue-user"));
    let end = sim.run_to_completion(SimTime::from_mins(600));
    let report = sim.report();

    // Pair per-minute completions with the queue length at that minute and the
    // schedd CPU sample for that minute (reported ×4 as in the paper).
    let per_minute = report.completions.per_bucket(SimDuration::from_secs(60));
    let schedd_cpu = report.schedd_cpu.first().cloned().unwrap_or_default();
    let mut points = Vec::new();
    for (time, count) in &per_minute {
        let minute = time.0 / 60_000;
        let queue = report
            .queue_length
            .points()
            .iter()
            .filter(|(t, _)| t.0 / 60_000 == minute)
            .map(|(_, v)| *v)
            .next();
        let Some(queue) = queue else { continue };
        if queue < 1.0 {
            continue;
        }
        let cpu = schedd_cpu
            .iter()
            .find(|s| s.time.0 / 60_000 == minute)
            .copied()
            .unwrap_or_default();
        points.push(QueueLengthPoint {
            queue_length: queue,
            rate: *count as f64 / 60.0,
            cpu_busy: cpu.busy(),
            cpu_user: cpu.user,
            cpu_io: cpu.io,
        });
    }
    let _ = end;
    QueueLengthExperiment { throttle, points }
}

// ---------------------------------------------------------------------------
// Section 5.3.2: the large-cluster Condor crash.
// ---------------------------------------------------------------------------

/// Result of trying to run a single schedd against thousands of nodes.
#[derive(Debug, Clone)]
pub struct CondorLargeClusterResult {
    /// Virtual machines in the simulated cluster.
    pub virtual_machines: u32,
    /// Peak number of simultaneously running jobs reached before any crash.
    pub peak_running: i64,
    /// Whether the schedd crashed once jobs started turning over.
    pub crashed: bool,
    /// Minute at which the crash occurred, if it did.
    pub crash_minute: Option<f64>,
    /// Jobs completed before the crash (or in total, if no crash).
    pub completed: u64,
}

impl CondorLargeClusterResult {
    /// Renders the Section 5.3.2 observation.
    pub fn render(&self) -> String {
        format!(
            "Condor single schedd on {} VMs: peak {} running jobs, crashed: {}{}, {} jobs completed\n",
            self.virtual_machines,
            self.peak_running,
            self.crashed,
            self.crash_minute
                .map(|m| format!(" (at minute {m:.0})"))
                .unwrap_or_default(),
            self.completed
        )
    }
}

/// Reproduces the Section 5.3.2 observation: a single schedd can ramp up to
/// ~5,000 simultaneously running jobs, but the submit machine runs out of
/// memory (one shadow per running job) once the jobs start to turn over.
pub fn condor_large_cluster(scale: Scale, seed: u64) -> CondorLargeClusterResult {
    let (vms, mem_mib) = match scale {
        Scale::Paper => (5_000u32, 4_096.0),
        Scale::Quick => (600, 512.0),
    };
    let spec = ClusterSpec::uniform_fast(vms / 10, 10);
    let config = CondorConfig {
        job_throttle_per_sec: 20.0,
        submit_machine_memory_mib: mem_mib,
        negotiation_interval: SimDuration::from_secs(10),
        collector_update_interval: SimDuration::from_secs(300),
        ..CondorConfig::default()
    };
    let mut sim = CondorSimulation::new(config, &spec, seed);
    // Long jobs so the pool ramps to full before any turnover happens.
    sim.submit(0, JobSpec::fixed_batch(vms as usize * 2, SimDuration::from_mins(30), "big-user"));
    sim.run_to_completion(SimTime::from_mins(600));
    let report = sim.report();
    CondorLargeClusterResult {
        virtual_machines: vms,
        peak_running: report.in_progress.peak(),
        crashed: !report.crashes.is_empty(),
        crash_minute: report.crashes.first().map(|(_, t)| t.as_mins_f64()),
        completed: report.completed,
    }
}

// ---------------------------------------------------------------------------
// Tables 1 and 2: data-flow traces.
// ---------------------------------------------------------------------------

/// Runs one job through the Condor baseline with tracing enabled and returns
/// the Table 1 data-flow trace.
pub fn condor_dataflow_trace(seed: u64) -> TraceRecorder {
    let config = CondorConfig {
        negotiation_interval: SimDuration::from_secs(2),
        collector_update_interval: SimDuration::from_secs(1),
        ..CondorConfig::default()
    };
    let spec = ClusterSpec::uniform_fast(1, 1);
    let mut sim = CondorSimulation::new(config, &spec, seed);
    sim.enable_tracing();
    sim.submit(0, JobSpec::fixed_batch(1, SimDuration::from_secs(30), "trace-user"));
    sim.run_to_completion(SimTime::from_mins(10));
    sim.report().trace.expect("tracing was enabled")
}

/// Runs one job through CondorJ2 with tracing enabled and returns the Table 2
/// data-flow trace.
pub fn condorj2_dataflow_trace(seed: u64) -> TraceRecorder {
    let config = CondorJ2Config {
        idle_poll_interval: SimDuration::from_secs(1),
        scheduler_interval: SimDuration::from_secs(1),
        running_heartbeat_interval: SimDuration::from_secs(10),
        ..CondorJ2Config::default()
    };
    let spec = ClusterSpec::uniform_fast(1, 1);
    let mut sim = CondorJ2Simulation::new(config, &spec, seed);
    sim.enable_tracing();
    sim.submit(JobSpec::fixed_batch(1, SimDuration::from_secs(30), "trace-user"));
    sim.run_to_completion(SimTime::from_mins(10));
    sim.report().trace.expect("tracing was enabled")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_experiment_matches_paper_shape() {
        let exp = throughput_experiment(Scale::Quick, 7);
        assert_eq!(exp.points.len(), 5);
        // Long jobs: observed tracks ideal closely and (almost) nothing drops.
        let long = &exp.points[0];
        assert!(long.observed_rate >= long.ideal_rate * 0.85, "{long:?}");
        // Short jobs: observed falls below ideal and many nodes drop jobs.
        let short = exp.points.last().unwrap();
        assert!(short.observed_rate < short.ideal_rate, "{short:?}");
        assert!(short.dropped_vms > long.dropped_vms);
        assert!(short.dropped_phys >= long.dropped_phys);
        // The CAS is never the bottleneck: ample idle capacity everywhere.
        for p in &exp.points {
            assert!(p.cpu_idle > 40.0, "CAS saturated unexpectedly: {p:?}");
            assert!(p.cpu_user >= p.cpu_io, "user cycles should dominate: {p:?}");
        }
        let text = exp.render();
        assert!(text.contains("Figure 7"));
        assert!(text.contains("Figure 8"));
        assert!(text.contains("Figure 9"));
    }

    #[test]
    fn condorj2_mixed_workload_reaches_full_utilisation() {
        let exp = condorj2_mixed_workload(Scale::Quick, 11);
        // Near-optimal makespan (the paper observed 32 minutes vs 30 optimal).
        assert!(exp.makespan_minutes < 40.0, "makespan {}", exp.makespan_minutes);
        let peak = exp.in_progress.iter().map(|(_, v)| *v).max().unwrap_or(0);
        assert!(peak as usize >= exp.total_jobs / 15 / 2, "cluster never filled: peak {peak}");
        assert!(exp.render().contains("Jobs in progress"));
    }

    #[test]
    fn condor_schedd_limit_improves_mixed_workload() {
        let unlimited = condor_mixed_workload(Scale::Quick, false, 13);
        let limited = condor_mixed_workload(Scale::Quick, true, 13);
        // Figure 15 vs 16: the limited configuration finishes substantially
        // sooner; the unlimited one underutilises the cluster.
        assert!(
            limited.makespan_minutes < unlimited.makespan_minutes * 0.8,
            "limited {} vs unlimited {}",
            limited.makespan_minutes,
            unlimited.makespan_minutes
        );
    }

    #[test]
    fn queue_length_experiment_shows_degradation() {
        let exp = queue_length_experiment(Scale::Quick, 17);
        assert!(!exp.points.is_empty());
        // At small queue lengths the schedd keeps up with the throttle; at the
        // longest queue lengths it falls behind.
        let longest = exp
            .points
            .iter()
            .cloned()
            .fold(QueueLengthPoint { queue_length: 0.0, rate: 0.0, cpu_busy: 0.0, cpu_user: 0.0, cpu_io: 0.0 }, |a, b| {
                if b.queue_length > a.queue_length { b } else { a }
            });
        let shortest_kept = exp.crossover_queue_length(0.9);
        assert!(shortest_kept > 0.0);
        assert!(longest.queue_length > shortest_kept * 0.9);
        assert!(exp.render().contains("Figure 13"));
    }

    #[test]
    fn dataflow_traces_match_tables_one_and_two() {
        let condor = condor_dataflow_trace(3);
        let condorj2 = condorj2_dataflow_trace(3);
        assert_eq!(condor.len(), 15);
        assert_eq!(condorj2.len(), 15);
        assert_eq!(condor.entities().len(), 7);
        assert_eq!(condorj2.entities().len(), 5);
        assert_eq!(condor.channels().len(), 10);
        assert_eq!(condorj2.channels().len(), 4);
    }

    #[test]
    fn condor_large_cluster_crashes_on_turnover() {
        let result = condor_large_cluster(Scale::Quick, 23);
        assert!(result.crashed, "{result:?}");
        assert!(result.peak_running > 0);
        assert!(result.render().contains("crashed: true"));
    }

    #[test]
    fn condorj2_large_cluster_has_headroom() {
        let exp = large_cluster_experiment(Scale::Quick, 29);
        assert!(exp.submitted > 0);
        assert!(!exp.cpu_series.is_empty());
        // The CAS never saturates: every rolling sample keeps idle capacity.
        assert!(exp.cpu_series.iter().all(|(_, io, sys, user, _)| io + sys + user < 90.0));
        assert!(exp.render().contains("Figure 10"));
    }
}
