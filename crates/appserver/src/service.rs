//! Service endpoints and the two-layer service architecture.
//!
//! CondorJ2's application tier is layered: a persistence layer of fine-grained
//! entity-bean operations is wrapped by an application-logic layer that
//! exposes coarse-grained, client-appropriate services ("the granularity of
//! service desired by a client is generally coarser than the granularity of
//! service required to maximize architectural efficiency"). The registry keeps
//! that distinction explicit: endpoints are registered as fine- or
//! coarse-grained, and only coarse-grained endpoints are reachable from the
//! external web-service interface.

use crate::message::{SoapRequest, SoapResponse};
use std::collections::BTreeMap;
use std::fmt;

/// Which architectural layer a service endpoint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Fine-grained persistence-layer operation (entity-bean method). Only
    /// callable from inside the application-logic layer.
    FineGrained,
    /// Coarse-grained application-logic operation exposed to clients through
    /// the web-service interface and the pool web site.
    CoarseGrained,
}

/// The handler signature: a service receives mutable access to the
/// application state (the CondorJ2 CAS state, in the core crate) and the
/// request, and produces a response.
pub type Handler<C> = Box<dyn Fn(&mut C, &SoapRequest) -> SoapResponse + Send + Sync>;

/// One registered endpoint.
pub struct ServiceEndpoint<C> {
    /// Endpoint name (the SOAP operation).
    pub name: String,
    /// Which layer the endpoint belongs to.
    pub kind: ServiceKind,
    /// Short human-readable description (shown by the admin interface).
    pub description: String,
    handler: Handler<C>,
}

impl<C> fmt::Debug for ServiceEndpoint<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceEndpoint")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("description", &self.description)
            .finish()
    }
}

/// The registry of service endpoints for an application.
#[derive(Debug, Default)]
pub struct ServiceRegistry<C> {
    endpoints: BTreeMap<String, ServiceEndpoint<C>>,
}

impl<C> ServiceRegistry<C> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry {
            endpoints: BTreeMap::new(),
        }
    }

    /// Registers an endpoint. Re-registering a name replaces the endpoint.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        kind: ServiceKind,
        description: impl Into<String>,
        handler: impl Fn(&mut C, &SoapRequest) -> SoapResponse + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.endpoints.insert(
            name.clone(),
            ServiceEndpoint {
                name,
                kind,
                description: description.into(),
                handler: Box::new(handler),
            },
        );
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Names of all endpoints of a given kind.
    pub fn names_of_kind(&self, kind: ServiceKind) -> Vec<String> {
        self.endpoints
            .values()
            .filter(|e| e.kind == kind)
            .map(|e| e.name.clone())
            .collect()
    }

    /// Looks up an endpoint by name.
    pub fn get(&self, name: &str) -> Option<&ServiceEndpoint<C>> {
        self.endpoints.get(name)
    }

    /// Dispatches a request arriving from an *external* client (web client or
    /// execute-machine daemon). Fine-grained endpoints are not reachable this
    /// way — the request faults, enforcing the layering rule.
    pub fn dispatch_external(&self, state: &mut C, request: &SoapRequest) -> SoapResponse {
        match self.endpoints.get(&request.operation) {
            None => SoapResponse::fault(format!("unknown operation {}", request.operation)),
            Some(ep) if ep.kind == ServiceKind::FineGrained => SoapResponse::fault(format!(
                "operation {} is internal to the persistence layer",
                request.operation
            )),
            Some(ep) => (ep.handler)(state, request),
        }
    }

    /// Dispatches a call made from *inside* the application-logic layer; both
    /// fine- and coarse-grained endpoints are reachable.
    pub fn dispatch_internal(&self, state: &mut C, request: &SoapRequest) -> SoapResponse {
        match self.endpoints.get(&request.operation) {
            None => SoapResponse::fault(format!("unknown operation {}", request.operation)),
            Some(ep) => (ep.handler)(state, request),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Value;

    #[derive(Default)]
    struct Counter {
        calls: u64,
    }

    fn registry() -> ServiceRegistry<Counter> {
        let mut reg = ServiceRegistry::new();
        reg.register(
            "submitJob",
            ServiceKind::CoarseGrained,
            "Submit a job to the pool",
            |state: &mut Counter, req| {
                state.calls += 1;
                SoapResponse::ok().with("echo", req.param("cmd"))
            },
        );
        reg.register(
            "jobBean.setState",
            ServiceKind::FineGrained,
            "Entity-bean state transition",
            |state: &mut Counter, _req| {
                state.calls += 1;
                SoapResponse::ok()
            },
        );
        reg
    }

    #[test]
    fn external_dispatch_reaches_coarse_grained_only() {
        let reg = registry();
        let mut state = Counter::default();
        let resp = reg.dispatch_external(
            &mut state,
            &SoapRequest::new("submitJob").with("cmd", "run.sh"),
        );
        assert!(resp.is_success());
        assert_eq!(resp.field("echo"), Value::Text("run.sh".into()));
        assert_eq!(state.calls, 1);

        let resp = reg.dispatch_external(&mut state, &SoapRequest::new("jobBean.setState"));
        assert!(!resp.is_success());
        assert_eq!(state.calls, 1, "fine-grained handler must not run externally");

        let resp = reg.dispatch_external(&mut state, &SoapRequest::new("noSuchOp"));
        assert!(!resp.is_success());
    }

    #[test]
    fn internal_dispatch_reaches_everything() {
        let reg = registry();
        let mut state = Counter::default();
        assert!(reg
            .dispatch_internal(&mut state, &SoapRequest::new("jobBean.setState"))
            .is_success());
        assert!(reg
            .dispatch_internal(&mut state, &SoapRequest::new("submitJob"))
            .is_success());
        assert_eq!(state.calls, 2);
    }

    #[test]
    fn registry_introspection() {
        let reg = registry();
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.names_of_kind(ServiceKind::CoarseGrained), vec!["submitJob"]);
        assert_eq!(
            reg.names_of_kind(ServiceKind::FineGrained),
            vec!["jobBean.setState"]
        );
        assert!(reg.get("submitJob").is_some());
        assert!(reg.get("absent").is_none());
        assert_eq!(ServiceRegistry::<Counter>::new().len(), 0);
    }
}
