//! The application container: request dispatch with cost accounting.
//!
//! [`AppContainer`] plays the role of JBoss AS in the paper's deployment: it
//! owns the connection pool and the service registry, dispatches each incoming
//! request to its endpoint, measures the database work the request caused, and
//! charges the resulting CPU time to the server's [`CpuAccountant`]. It also
//! runs the periodic database maintenance task (the stand-in for the DB2
//! background process responsible for the two-hourly spikes in Figure 10).

use crate::cost::{CostModel, RequestCost};
use crate::message::{SoapRequest, SoapResponse};
use crate::pool::{ConnectionPool, PoolStats};
use crate::service::ServiceRegistry;
use cluster_sim::{CpuAccountant, CpuSample, SimDuration, SimTime};
use relstore::Database;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-operation request metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OperationMetrics {
    /// Requests handled.
    pub requests: u64,
    /// Requests that returned a fault.
    pub faults: u64,
    /// Total busy CPU time attributed to the operation.
    pub total_cost: RequestCost,
}

/// The application container.
pub struct AppContainer<C> {
    db: Arc<Database>,
    registry: ServiceRegistry<C>,
    pool: ConnectionPool,
    cost_model: CostModel,
    cpu: CpuAccountant,
    metrics: BTreeMap<String, OperationMetrics>,
    maintenance_interval: SimDuration,
    last_maintenance: SimTime,
    requests_handled: u64,
}

impl<C> AppContainer<C> {
    /// Creates a container over a shared database.
    ///
    /// `cores` and `sample_interval` configure the CPU accountant for the
    /// machine hosting the container (the paper's CAS host has four cores and
    /// is sampled once a minute).
    pub fn new(
        db: Arc<Database>,
        registry: ServiceRegistry<C>,
        cost_model: CostModel,
        pool_size: usize,
        cores: u32,
        sample_interval: SimDuration,
    ) -> Self {
        AppContainer {
            db,
            registry,
            pool: ConnectionPool::new(pool_size),
            cost_model,
            cpu: CpuAccountant::new(cores, sample_interval),
            metrics: BTreeMap::new(),
            maintenance_interval: SimDuration::from_mins(120),
            last_maintenance: SimTime::ZERO,
            requests_handled: 0,
        }
    }

    /// Sets the interval of the periodic database maintenance task.
    pub fn set_maintenance_interval(&mut self, interval: SimDuration) {
        self.maintenance_interval = interval;
    }

    /// The shared database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The registered service endpoints.
    pub fn registry(&self) -> &ServiceRegistry<C> {
        &self.registry
    }

    /// Connection-pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Total requests handled so far.
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled
    }

    /// Per-operation metrics.
    pub fn metrics(&self) -> &BTreeMap<String, OperationMetrics> {
        &self.metrics
    }

    /// The server CPU accounting (per-interval utilisation samples).
    pub fn cpu_samples(&self) -> Vec<CpuSample> {
        self.cpu.samples()
    }

    /// Rolling-average CPU samples over `window` sampling intervals.
    pub fn cpu_rolling(&self, window: usize) -> Vec<CpuSample> {
        self.cpu.rolling_samples(window)
    }

    /// Mean CPU utilisation between two times.
    pub fn cpu_mean_between(&self, from: SimTime, to: SimTime) -> CpuSample {
        self.cpu.mean_between(from, to)
    }

    /// Handles one external request at simulated time `now`, charging its cost
    /// to the server CPU. Returns the response together with the cost, so the
    /// caller (the event loop) can delay the reply by the service time.
    pub fn handle(
        &mut self,
        state: &mut C,
        now: SimTime,
        request: &SoapRequest,
    ) -> (SoapResponse, RequestCost) {
        self.run_maintenance_if_due(now);
        self.requests_handled += 1;

        // Connection-pool accounting: a request that finds the pool exhausted
        // still completes (the container queues it), but the exhaustion is
        // recorded and a small extra system-time penalty is charged.
        let got_connection = self.pool.try_acquire();

        let before = self.db.stats();
        let response = self.registry.dispatch_external(state, request);
        let delta = self.db.stats().delta_since(&before);

        let mut cost = self
            .cost_model
            .request_cost(request.approx_size() + response.approx_size(), &delta);
        if !got_connection {
            cost.system += SimDuration::from_millis(2);
        } else {
            self.pool.release();
        }
        cost.charge_to(&mut self.cpu, now);

        let entry = self.metrics.entry(request.operation.clone()).or_default();
        entry.requests += 1;
        if !response.is_success() {
            entry.faults += 1;
        }
        entry.total_cost = entry.total_cost.add(&cost);

        (response, cost)
    }

    /// Charges CPU work that did not flow through a request (e.g. a periodic
    /// scheduler pass driven by the event loop rather than by a message).
    pub fn charge_background(&mut self, now: SimTime, label: &str, cost: RequestCost) {
        cost.charge_to(&mut self.cpu, now);
        let entry = self.metrics.entry(format!("background:{label}")).or_default();
        entry.requests += 1;
        entry.total_cost = entry.total_cost.add(&cost);
    }

    /// Computes the cost of database work measured between two stats
    /// snapshots, without charging it (helper for background tasks).
    pub fn cost_of(&self, before: &relstore::OpStats) -> RequestCost {
        let delta = self.db.stats().delta_since(before);
        self.cost_model.request_cost(0, &delta)
    }

    fn run_maintenance_if_due(&mut self, now: SimTime) {
        if self.maintenance_interval.as_millis() == 0 {
            return;
        }
        if (now - self.last_maintenance) < self.maintenance_interval {
            return;
        }
        self.last_maintenance = now;
        // The periodic DB2-style background task: take a checkpoint. The
        // bytes written dominate the cost, producing the isolated CPU spikes
        // the paper attributes to "a DB2 background process". A busy result
        // (transactions in flight) is retried with backoff — useful when
        // other threads share the database and can commit between attempts;
        // a single-threaded simulation just pays the (wall-clock-only,
        // ~150 µs worst case) backoff and skips to the next maintenance
        // interval.
        let bytes = self
            .db
            .session()
            .with_retries(3, |s| s.database().checkpoint())
            .unwrap_or_else(|e| {
                debug_assert!(e.is_retryable(), "checkpoint failed non-retryably: {e}");
                0
            });
        let cost = RequestCost {
            user: SimDuration::from_secs_f64(bytes as f64 * 0.02e-6 + 0.05),
            system: SimDuration::from_secs_f64(0.02),
            io: SimDuration::from_secs_f64(bytes as f64 * 0.05e-6 + 0.2),
        };
        cost.charge_to(&mut self.cpu, now);
        let entry = self.metrics.entry("background:maintenance".into()).or_default();
        entry.requests += 1;
        entry.total_cost = entry.total_cost.add(&cost);
    }
}

impl<C> std::fmt::Debug for AppContainer<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppContainer")
            .field("requests_handled", &self.requests_handled)
            .field("endpoints", &self.registry.len())
            .field("pool", &self.pool_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceKind;
    use relstore::Value;

    struct DummyState;

    fn container() -> (AppContainer<DummyState>, DummyState) {
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
        let mut registry = ServiceRegistry::new();
        let db_for_handler = Arc::clone(&db);
        registry.register(
            "submitJob",
            ServiceKind::CoarseGrained,
            "insert a job row",
            move |_state: &mut DummyState, req: &SoapRequest| {
                let id = req.int_param("job_id").unwrap_or(0);
                match db_for_handler.execute(&format!(
                    "INSERT INTO jobs (job_id, state) VALUES ({id}, 'idle')"
                )) {
                    Ok(_) => SoapResponse::ok().with("job_id", id),
                    Err(e) => SoapResponse::fault(e.to_string()),
                }
            },
        );
        let container = AppContainer::new(
            db,
            registry,
            CostModel::cas_server(),
            8,
            4,
            SimDuration::from_secs(60),
        );
        (container, DummyState)
    }

    #[test]
    fn handling_requests_charges_cpu_and_updates_metrics() {
        let (mut c, mut state) = container();
        for i in 0..10 {
            let (resp, cost) = c.handle(
                &mut state,
                SimTime::from_secs(i),
                &SoapRequest::new("submitJob").with("job_id", i as i64),
            );
            assert!(resp.is_success());
            assert_eq!(resp.field("job_id"), Value::Int(i as i64));
            assert!(cost.total().as_millis() > 0 || cost.user.as_millis() == 0);
        }
        assert_eq!(c.requests_handled(), 10);
        assert_eq!(c.database().table_len("jobs").unwrap(), 10);
        let m = c.metrics().get("submitJob").unwrap();
        assert_eq!(m.requests, 10);
        assert_eq!(m.faults, 0);
        assert!(c.cpu_samples()[0].busy() > 0.0);
        assert_eq!(c.pool_stats().acquired, 10);
        assert_eq!(c.pool_stats().exhausted, 0);
    }

    #[test]
    fn faults_are_counted() {
        let (mut c, mut state) = container();
        let (resp, _) = c.handle(
            &mut state,
            SimTime::ZERO,
            &SoapRequest::new("submitJob").with("job_id", 1i64),
        );
        assert!(resp.is_success());
        // Duplicate primary key produces a fault.
        let (resp, _) = c.handle(
            &mut state,
            SimTime::ZERO,
            &SoapRequest::new("submitJob").with("job_id", 1i64),
        );
        assert!(!resp.is_success());
        // Unknown operation also faults.
        let (resp, _) = c.handle(&mut state, SimTime::ZERO, &SoapRequest::new("nope"));
        assert!(!resp.is_success());
        let m = c.metrics().get("submitJob").unwrap();
        assert_eq!(m.faults, 1);
    }

    #[test]
    fn maintenance_runs_periodically_and_truncates_wal() {
        let (mut c, mut state) = container();
        c.set_maintenance_interval(SimDuration::from_mins(10));
        for i in 0..200 {
            c.handle(
                &mut state,
                SimTime::from_secs(i * 30),
                &SoapRequest::new("submitJob").with("job_id", i as i64),
            );
        }
        let maint = c.metrics().get("background:maintenance").cloned().unwrap();
        assert!(maint.requests >= 8, "expected several maintenance runs, got {}", maint.requests);
        assert!(c.database().stats().checkpoints >= 8);
    }

    #[test]
    fn background_charges_show_up_in_cpu() {
        let (mut c, _) = container();
        c.charge_background(
            SimTime::from_secs(30),
            "scheduler",
            RequestCost {
                user: SimDuration::from_millis(500),
                system: SimDuration::ZERO,
                io: SimDuration::ZERO,
            },
        );
        assert!(c.cpu_samples()[0].user > 0.0);
        assert!(c.metrics().contains_key("background:scheduler"));
    }
}
