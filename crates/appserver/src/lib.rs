//! # appserver — a J2EE/EJB-style application-server substrate
//!
//! CondorJ2 is "a central database and a J2EE + EJB application deployed in an
//! application server". This crate is the application-server half of that
//! sentence, rebuilt in Rust for the reproduction:
//!
//! * [`message`] — SOAP-style request/response envelopes (the gSOAP stand-in),
//! * [`pool`] — bounded database connection pooling,
//! * [`entity`] — container-managed persistence (entity beans ↔ tuples),
//! * [`service`] — the two-layer service registry (fine-grained persistence
//!   operations wrapped by coarse-grained application-logic services),
//! * [`container`] — request dispatch with per-request CPU cost accounting and
//!   the periodic database maintenance task,
//! * [`cost`] — the calibrated HTTP→SQL→storage cost model.
//!
//! The `condorj2` crate builds the actual CondorJ2 Application Server (CAS) on
//! top of these pieces; the `condor` baseline reuses [`cost`] so that both
//! systems' CPU numbers are produced by the same accounting.
//!
//! The container's database ([`AppContainer::database`]) is an
//! `Arc<relstore::Database>`, so the same engine instance the container
//! drives in process can simultaneously be served to network peers through
//! the `wire` crate's TCP server (`wire::serve(Arc::clone(db), addr)`) —
//! the paper's deployment shape, where the engine is a network service
//! behind the application server rather than a linked library. The
//! `net_roundtrip` integration test wires a full CondorJ2 pool behind the
//! server that way and checks local and remote query results agree.

#![warn(missing_docs)]

pub mod container;
pub mod cost;
pub mod entity;
pub mod message;
pub mod pool;
pub mod service;

pub use container::{AppContainer, OperationMetrics};
pub use cost::{CostModel, RequestCost};
pub use entity::{Entity, EntityDef, EntityManager};
pub use message::{SoapRequest, SoapResponse, SoapStatus};
pub use pool::{ConnectionPool, PoolStats};
pub use service::{ServiceKind, ServiceRegistry};

use relstore::Value;

/// Renders a [`Value`] as a SQL literal, escaping embedded quotes in text.
///
/// The entity layer and the CondorJ2 services build SQL text with this helper
/// — the "HTTP-to-SQL transformation" the paper identifies as the application
/// server's most basic function.
pub fn sql_literal(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => {
            if d.fract() == 0.0 && d.is_finite() {
                format!("{d:.1}")
            } else {
                format!("{d}")
            }
        }
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Timestamp(t) => t.to_string(),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_round_trip_through_the_parser() {
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(sql_literal(&Value::Int(-3)), "-3");
        assert_eq!(sql_literal(&Value::Bool(true)), "TRUE");
        assert_eq!(sql_literal(&Value::Double(2.5)), "2.5");
        assert_eq!(sql_literal(&Value::Double(4.0)), "4.0");
        assert_eq!(sql_literal(&Value::Timestamp(99)), "99");
        assert_eq!(sql_literal(&Value::Text("it's".into())), "'it''s'");
    }

    #[test]
    fn escaped_text_survives_a_real_insert() {
        let db = relstore::Database::new();
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)").unwrap();
        let tricky = Value::Text("O'Brien's job -- weird".into());
        db.execute(&format!("INSERT INTO t VALUES (1, {})", sql_literal(&tricky)))
            .unwrap();
        let r = db.query("SELECT b FROM t WHERE a = 1").unwrap();
        assert_eq!(r.first_value("b"), Some(&tricky));
    }
}
