//! Container-managed persistence: an entity-bean layer over the database.
//!
//! CondorJ2 models its persistent objects (users, jobs, machines, matches,
//! runs, configuration policies) as entity beans with container-managed
//! persistence: "there is a one-to-one correspondence between entity bean
//! objects and tuples in the underlying database", and each bean exposes a
//! fine-grained service interface whose operations "translate into SELECT,
//! UPDATE, INSERT or DELETE operations on the tuples". [`EntityManager`] is
//! that container: it maps entity operations onto SQL text executed against
//! [`relstore::Database`], so the persistence layer really does go through the
//! HTTP→SQL→storage path the paper describes.

use relstore::{Database, Error, QueryResult, Result, Schema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The static description of one entity type (one table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityDef {
    /// Table backing the entity.
    pub table: String,
    /// The key column used by `find`, `update` and `remove`.
    pub key_column: String,
}

impl EntityDef {
    /// Creates an entity definition.
    pub fn new(table: impl Into<String>, key_column: impl Into<String>) -> Self {
        EntityDef {
            table: table.into().to_ascii_lowercase(),
            key_column: key_column.into().to_ascii_lowercase(),
        }
    }
}

/// One materialised entity instance: its key plus named attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// The entity's key value.
    pub key: Value,
    /// Attribute values by column name.
    pub attrs: BTreeMap<String, Value>,
}

impl Entity {
    /// Returns an attribute by name, or NULL when absent.
    pub fn attr(&self, name: &str) -> Value {
        self.attrs.get(name).cloned().unwrap_or(Value::Null)
    }
}

/// The container-managed persistence manager.
///
/// Note that, exactly as the paper's footnote warns, there is no requirement
/// that an entity object be resident in memory for every tuple: entities are
/// materialised on demand by `find*` calls and written through immediately.
#[derive(Debug, Clone)]
pub struct EntityManager {
    db: Arc<Database>,
}

impl EntityManager {
    /// Creates a manager over a shared database.
    pub fn new(db: Arc<Database>) -> Self {
        EntityManager { db }
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Creates the backing table for an entity type if it does not yet exist.
    pub fn deploy(&self, schema: &Schema) -> Result<()> {
        if self.db.table_names().contains(&schema.name) {
            return Ok(());
        }
        let cols: Vec<String> = schema
            .columns
            .iter()
            .map(|c| {
                let mut s = format!("{} {}", c.name, c.ty);
                if schema.primary_key.as_deref() == Some(c.name.as_ref()) {
                    s.push_str(" PRIMARY KEY");
                } else if c.not_null {
                    s.push_str(" NOT NULL");
                }
                s
            })
            .collect();
        self.db
            .execute(&format!("CREATE TABLE {} ({})", schema.name, cols.join(", ")))?;
        for idx in &schema.indexes {
            let unique = if idx.unique { "UNIQUE " } else { "" };
            self.db.execute(&format!(
                "CREATE {unique}INDEX ON {} ({})",
                schema.name, idx.column
            ))?;
        }
        Ok(())
    }

    /// Inserts a new entity from named attribute values.
    ///
    /// The generated SQL uses `?` placeholders, so its text depends only on
    /// the (table, column-set) shape — repeated creates of the same entity
    /// type hit the database's statement cache, and the attribute values bind
    /// as a runtime-shaped parameter list without any literal escaping.
    pub fn create(&self, def: &EntityDef, attrs: &BTreeMap<String, Value>) -> Result<()> {
        if attrs.is_empty() {
            return Err(Error::type_err("cannot create an entity with no attributes"));
        }
        let columns: Vec<&str> = attrs.keys().map(String::as_str).collect();
        let placeholders = vec!["?"; attrs.len()].join(", ");
        let sql = format!(
            "INSERT INTO {} ({}) VALUES ({})",
            def.table,
            columns.join(", "),
            placeholders
        );
        let params: Vec<Value> = attrs.values().cloned().collect();
        self.db.session().execute(sql, params)?;
        Ok(())
    }

    /// Finds one entity by key.
    pub fn find(&self, def: &EntityDef, key: &Value) -> Result<Option<Entity>> {
        let sql = format!(
            "SELECT * FROM {} WHERE {} = ?",
            def.table, def.key_column
        );
        let result = self.db.session().query(sql, (key.clone(),))?;
        Ok(self.materialise(def, &result).into_iter().next())
    }

    /// Finds every entity matching a SQL predicate (the text after `WHERE`).
    pub fn find_where(&self, def: &EntityDef, predicate: &str) -> Result<Vec<Entity>> {
        let sql = format!("SELECT * FROM {} WHERE {}", def.table, predicate);
        let result = self.db.session().query(sql, ())?;
        Ok(self.materialise(def, &result))
    }

    /// Updates named attributes of the entity with the given key.
    /// Returns the number of rows affected (0 when the entity does not exist).
    pub fn update(
        &self,
        def: &EntityDef,
        key: &Value,
        changes: &BTreeMap<String, Value>,
    ) -> Result<usize> {
        if changes.is_empty() {
            return Ok(0);
        }
        let sets: Vec<String> = changes.keys().map(|c| format!("{c} = ?")).collect();
        let sql = format!(
            "UPDATE {} SET {} WHERE {} = ?",
            def.table,
            sets.join(", "),
            def.key_column
        );
        let mut params: Vec<Value> = changes.values().cloned().collect();
        params.push(key.clone());
        Ok(self.db.session().execute(sql, params)?.affected())
    }

    /// Removes the entity with the given key. Returns the rows affected.
    pub fn remove(&self, def: &EntityDef, key: &Value) -> Result<usize> {
        let sql = format!("DELETE FROM {} WHERE {} = ?", def.table, def.key_column);
        Ok(self.db.session().execute(sql, (key.clone(),))?.affected())
    }

    /// Number of stored entities of this type.
    pub fn count(&self, def: &EntityDef) -> Result<i64> {
        self.db.table_len(&def.table).map(|n| n as i64)
    }

    fn materialise(&self, def: &EntityDef, result: &QueryResult) -> Vec<Entity> {
        result
            .views()
            .map(|view| {
                let attrs: BTreeMap<String, Value> = view
                    .columns()
                    .iter()
                    .zip(&view.raw().values)
                    .map(|(col, value)| (col.to_string(), value.clone()))
                    .collect();
                let key = attrs.get(&def.key_column).cloned().unwrap_or(Value::Null);
                Entity { key, attrs }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{Column, DataType};

    fn manager() -> (EntityManager, EntityDef) {
        let db = Arc::new(Database::new());
        let em = EntityManager::new(db);
        let schema = Schema::new(
            "machines",
            vec![
                Column::not_null("machine_id", DataType::Int),
                Column::not_null("name", DataType::Text),
                Column::new("state", DataType::Text),
                Column::new("last_heartbeat", DataType::Timestamp),
            ],
        )
        .with_primary_key("machine_id")
        .with_index("state");
        em.deploy(&schema).unwrap();
        // Deploying twice is a no-op, as a container redeploy would be.
        em.deploy(&schema).unwrap();
        (em, EntityDef::new("machines", "machine_id"))
    }

    fn attrs(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn create_find_update_remove_round_trip() {
        let (em, def) = manager();
        em.create(
            &def,
            &attrs(&[
                ("machine_id", Value::Int(1)),
                ("name", Value::Text("vm1@node001".into())),
                ("state", Value::Text("idle".into())),
            ]),
        )
        .unwrap();
        assert_eq!(em.count(&def).unwrap(), 1);

        let found = em.find(&def, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(found.key, Value::Int(1));
        assert_eq!(found.attr("name"), Value::Text("vm1@node001".into()));
        assert_eq!(found.attr("last_heartbeat"), Value::Null);
        assert_eq!(found.attr("nonexistent"), Value::Null);

        let n = em
            .update(
                &def,
                &Value::Int(1),
                &attrs(&[("state", Value::Text("busy".into())), ("last_heartbeat", Value::Int(42_000))]),
            )
            .unwrap();
        assert_eq!(n, 1);
        let found = em.find(&def, &Value::Int(1)).unwrap().unwrap();
        assert_eq!(found.attr("state"), Value::Text("busy".into()));

        assert_eq!(em.remove(&def, &Value::Int(1)).unwrap(), 1);
        assert!(em.find(&def, &Value::Int(1)).unwrap().is_none());
        assert_eq!(em.remove(&def, &Value::Int(1)).unwrap(), 0);
    }

    #[test]
    fn find_where_uses_predicates() {
        let (em, def) = manager();
        for i in 1..=4 {
            let state = if i % 2 == 0 { "idle" } else { "busy" };
            em.create(
                &def,
                &attrs(&[
                    ("machine_id", Value::Int(i)),
                    ("name", Value::Text(format!("vm{i}@node").into())),
                    ("state", Value::Text(state.into())),
                ]),
            )
            .unwrap();
        }
        let idle = em.find_where(&def, "state = 'idle'").unwrap();
        assert_eq!(idle.len(), 2);
        assert!(idle.iter().all(|e| e.attr("state") == Value::Text("idle".into())));
        let none = em.find_where(&def, "machine_id > 100").unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn text_values_with_quotes_are_escaped() {
        let (em, def) = manager();
        em.create(
            &def,
            &attrs(&[
                ("machine_id", Value::Int(9)),
                ("name", Value::Text("node's vm".into())),
            ]),
        )
        .unwrap();
        let found = em.find(&def, &Value::Int(9)).unwrap().unwrap();
        assert_eq!(found.attr("name"), Value::Text("node's vm".into()));
    }

    #[test]
    fn constraint_violations_surface_as_errors() {
        let (em, def) = manager();
        em.create(
            &def,
            &attrs(&[("machine_id", Value::Int(1)), ("name", Value::Text("a".into()))]),
        )
        .unwrap();
        let dup = em.create(
            &def,
            &attrs(&[("machine_id", Value::Int(1)), ("name", Value::Text("b".into()))]),
        );
        assert!(dup.is_err());
        assert!(em.create(&def, &BTreeMap::new()).is_err());
    }
}
