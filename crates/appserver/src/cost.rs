//! The request-processing cost model.
//!
//! The paper's scalability argument is that the critical path of CondorJ2 is
//! "the speed and efficiency with which the Application Server can perform the
//! HTTP-to-SQL transformation and the database can process the SQL
//! statements". The cost model turns the work done for one request — the SOAP
//! envelope handled, the statements executed and the row/index/WAL operations
//! the storage engine counted — into simulated CPU time in the three busy
//! categories the paper plots (user, system, IO). The CondorJ2 CAS and the
//! Condor schedd both charge their work through this model so their CPU
//! figures are directly comparable.

use cluster_sim::{CpuAccountant, CpuCategory, SimDuration, SimTime};
use relstore::OpStats;
use serde::{Deserialize, Serialize};

/// The CPU time attributed to one request, split by category.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RequestCost {
    /// User-mode computation (SOAP parsing, bean dispatch, SQL execution).
    pub user: SimDuration,
    /// Kernel-mode work (network receive/send, connection handling).
    pub system: SimDuration,
    /// IO wait (write-ahead-log forces, page reads).
    pub io: SimDuration,
}

impl RequestCost {
    /// Total busy time across all categories.
    pub fn total(&self) -> SimDuration {
        self.user + self.system + self.io
    }

    /// Component-wise sum.
    pub fn add(&self, other: &RequestCost) -> RequestCost {
        RequestCost {
            user: self.user + other.user,
            system: self.system + other.system,
            io: self.io + other.io,
        }
    }

    /// Charges this cost to a CPU accountant at `time`.
    pub fn charge_to(&self, cpu: &mut CpuAccountant, time: SimTime) {
        cpu.charge(time, CpuCategory::User, self.user);
        cpu.charge(time, CpuCategory::System, self.system);
        cpu.charge(time, CpuCategory::Io, self.io);
    }
}

/// Calibration constants of the cost model, all in microseconds of CPU time
/// on the simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// System time to receive/parse one HTTP request and send the response.
    pub request_overhead_us: f64,
    /// System time per kilobyte of SOAP envelope marshalled/unmarshalled.
    pub marshal_us_per_kb: f64,
    /// User time to plan and dispatch one SQL statement (the HTTP-to-SQL
    /// transformation plus bean/container dispatch).
    pub statement_us: f64,
    /// User time per row read by scans, lookups and joins.
    pub row_read_us: f64,
    /// User time per row inserted, updated or deleted.
    pub row_write_us: f64,
    /// User time per index maintenance or lookup operation.
    pub index_op_us: f64,
    /// IO time per byte appended to the write-ahead log.
    pub wal_us_per_byte: f64,
    /// IO time per transaction commit (log force).
    pub commit_io_us: f64,
    /// System time per request for connection-pool bookkeeping.
    pub connection_us: f64,
}

impl CostModel {
    /// Calibration for the CondorJ2 application server + DBMS host (the
    /// paper's 3 GHz quad-Xeon with a RAID-5 array). The constants are chosen
    /// so that ~20 jobs/s of turnover plus heartbeat traffic uses well under
    /// half of the four cores (Figure 9) while per-job work is dominated by
    /// user cycles (JBoss), as the paper observed.
    pub fn cas_server() -> Self {
        CostModel {
            request_overhead_us: 350.0,
            marshal_us_per_kb: 120.0,
            statement_us: 800.0,
            row_read_us: 8.0,
            row_write_us: 45.0,
            index_op_us: 12.0,
            wal_us_per_byte: 0.02,
            commit_io_us: 900.0,
            connection_us: 80.0,
        }
    }

    /// Calibration for the Condor schedd: the schedd keeps its queue in
    /// process memory, so per-row costs are lower, but every job start walks
    /// the in-memory queue and appends to the job log, and all of it runs on
    /// a single thread.
    pub fn schedd_process() -> Self {
        CostModel {
            request_overhead_us: 250.0,
            marshal_us_per_kb: 60.0,
            statement_us: 150.0,
            row_read_us: 2.5,
            row_write_us: 20.0,
            index_op_us: 0.0,
            wal_us_per_byte: 0.02,
            commit_io_us: 1100.0,
            connection_us: 0.0,
        }
    }

    /// Computes the cost of a request that shipped `envelope_bytes` of SOAP
    /// payload and caused the storage work described by `delta`.
    pub fn request_cost(&self, envelope_bytes: usize, delta: &OpStats) -> RequestCost {
        let user_us = self.statement_us * delta.statements_executed as f64
            + self.row_read_us * delta.rows_read as f64
            + self.row_write_us * delta.total_mutations() as f64
            + self.index_op_us * (delta.index_maintenance + delta.index_lookups) as f64;
        let system_us = self.request_overhead_us
            + self.connection_us
            + self.marshal_us_per_kb * envelope_bytes as f64 / 1024.0;
        let io_us = self.wal_us_per_byte * delta.wal_bytes as f64
            + self.commit_io_us * delta.commits as f64;
        RequestCost {
            user: SimDuration::from_secs_f64(user_us / 1_000_000.0),
            system: SimDuration::from_secs_f64(system_us / 1_000_000.0),
            io: SimDuration::from_secs_f64(io_us / 1_000_000.0),
        }
    }

    /// Cost of pure computation measured in "statement equivalents" — used for
    /// work that does not touch the database, such as the negotiator's
    /// matchmaking loop over its in-memory snapshot.
    pub fn compute_cost(&self, statement_equivalents: f64) -> RequestCost {
        RequestCost {
            user: SimDuration::from_secs_f64(self.statement_us * statement_equivalents / 1_000_000.0),
            system: SimDuration::ZERO,
            io: SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(reads: u64, writes: u64, commits: u64, wal_bytes: u64) -> OpStats {
        OpStats {
            rows_read: reads,
            rows_inserted: writes,
            statements_executed: 2,
            commits,
            wal_bytes,
            ..Default::default()
        }
    }

    #[test]
    fn heavier_requests_cost_more() {
        let model = CostModel::cas_server();
        let light = model.request_cost(256, &delta(2, 1, 1, 200));
        let heavy = model.request_cost(256, &delta(5_000, 200, 1, 60_000));
        assert!(heavy.user > light.user);
        assert!(heavy.io > light.io);
        assert!(heavy.total() > light.total());
    }

    #[test]
    fn user_cycles_dominate_typical_cas_requests() {
        // The paper observes user cycles growing much faster than IO/system;
        // a typical heartbeat-with-turnover request must follow that shape.
        let model = CostModel::cas_server();
        let cost = model.request_cost(512, &delta(40, 6, 1, 1_500));
        assert!(cost.user > cost.system);
        assert!(cost.user > cost.io);
    }

    #[test]
    fn costs_charge_into_cpu_accountant() {
        let model = CostModel::cas_server();
        let cost = model.request_cost(512, &delta(10, 2, 1, 500));
        let mut cpu = CpuAccountant::new(4, SimDuration::from_secs(60));
        cost.charge_to(&mut cpu, SimTime::from_secs(10));
        let samples = cpu.samples();
        assert_eq!(samples.len(), 1);
        assert!(samples[0].busy() > 0.0);
    }

    #[test]
    fn add_and_total_are_componentwise() {
        let a = RequestCost {
            user: SimDuration::from_millis(10),
            system: SimDuration::from_millis(2),
            io: SimDuration::from_millis(3),
        };
        let b = a.add(&a);
        assert_eq!(b.user, SimDuration::from_millis(20));
        assert_eq!(b.total(), SimDuration::from_millis(30));
    }

    #[test]
    fn compute_cost_is_pure_user_time() {
        let model = CostModel::schedd_process();
        let c = model.compute_cost(10.0);
        assert!(c.user.as_millis() > 0);
        assert_eq!(c.system, SimDuration::ZERO);
        assert_eq!(c.io, SimDuration::ZERO);
    }
}
