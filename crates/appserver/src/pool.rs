//! Database connection pooling.
//!
//! The paper lists connection pooling as one of the application-server
//! features that make the architecture viable: the container "reduces the
//! required number of simultaneous open connections to the database". In the
//! reproduction, requests are processed from a discrete-event loop, so the
//! pool's job is accounting rather than blocking: it bounds how many requests
//! can hold a connection at once, counts how often requests had to queue, and
//! reports the high-water mark so experiments can show the bound holding even
//! for a 10,000-machine cluster.

use serde::{Deserialize, Serialize};

/// Statistics reported by a [`ConnectionPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Total successful acquisitions.
    pub acquired: u64,
    /// Total releases.
    pub released: u64,
    /// Requests that found the pool exhausted and had to wait/retry.
    pub exhausted: u64,
    /// Largest number of connections ever simultaneously in use.
    pub high_water_mark: usize,
}

/// A bounded pool of database connections.
#[derive(Debug, Clone)]
pub struct ConnectionPool {
    capacity: usize,
    in_use: usize,
    stats: PoolStats,
}

impl ConnectionPool {
    /// Creates a pool with `capacity` connections. JBoss's default pool size
    /// of 20 is a reasonable choice for the CAS.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a connection pool needs at least one connection");
        ConnectionPool {
            capacity,
            in_use: 0,
            stats: PoolStats::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of connections currently checked out.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Number of connections currently available.
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Attempts to acquire a connection. Returns `false` (and records an
    /// exhaustion event) when every connection is in use.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use >= self.capacity {
            self.stats.exhausted += 1;
            return false;
        }
        self.in_use += 1;
        self.stats.acquired += 1;
        self.stats.high_water_mark = self.stats.high_water_mark.max(self.in_use);
        true
    }

    /// Releases a previously acquired connection.
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "release without a matching acquire");
        self.in_use -= 1;
        self.stats.released += 1;
    }

    /// Pool statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut pool = ConnectionPool::new(2);
        assert_eq!(pool.capacity(), 2);
        assert!(pool.try_acquire());
        assert!(pool.try_acquire());
        assert_eq!(pool.in_use(), 2);
        assert_eq!(pool.available(), 0);
        assert!(!pool.try_acquire());
        pool.release();
        assert!(pool.try_acquire());
        let stats = pool.stats();
        assert_eq!(stats.acquired, 3);
        assert_eq!(stats.released, 1);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.high_water_mark, 2);
    }

    #[test]
    #[should_panic(expected = "release without a matching acquire")]
    fn release_without_acquire_panics() {
        let mut pool = ConnectionPool::new(1);
        pool.release();
    }

    #[test]
    fn high_water_mark_tracks_peak_not_current() {
        let mut pool = ConnectionPool::new(8);
        for _ in 0..5 {
            assert!(pool.try_acquire());
        }
        for _ in 0..5 {
            pool.release();
        }
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.stats().high_water_mark, 5);
    }
}
