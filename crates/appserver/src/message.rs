//! SOAP-style request and response envelopes.
//!
//! Execute-node daemons in CondorJ2 talk to the application server through web
//! services carried over SOAP (the prototype used gSOAP on the startd side).
//! The reproduction models a message as an operation name plus named, typed
//! parameters; the envelope size feeds the cost model's marshalling charge.

use relstore::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A web-service request: an operation name and named parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoapRequest {
    /// The invoked operation, e.g. `"heartbeat"` or `"submitJob"`.
    pub operation: String,
    /// Named parameters.
    pub params: BTreeMap<String, Value>,
}

impl SoapRequest {
    /// Creates a request with no parameters.
    pub fn new(operation: impl Into<String>) -> Self {
        SoapRequest {
            operation: operation.into(),
            params: BTreeMap::new(),
        }
    }

    /// Builder-style parameter addition.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.params.insert(name.into(), value.into());
        self
    }

    /// Returns a parameter by name, or NULL when absent.
    pub fn param(&self, name: &str) -> Value {
        self.params.get(name).cloned().unwrap_or(Value::Null)
    }

    /// Returns an integer parameter or an error message string.
    pub fn int_param(&self, name: &str) -> Result<i64, String> {
        self.params
            .get(name)
            .ok_or_else(|| format!("missing parameter {name}"))?
            .as_int()
            .map_err(|e| e.to_string())
    }

    /// Returns a text parameter or an error message string.
    pub fn text_param(&self, name: &str) -> Result<String, String> {
        Ok(self
            .params
            .get(name)
            .ok_or_else(|| format!("missing parameter {name}"))?
            .as_text()
            .map_err(|e| e.to_string())?
            .to_string())
    }

    /// Approximate size of the SOAP envelope in bytes, for cost accounting.
    pub fn approx_size(&self) -> usize {
        128 + self.operation.len()
            + self
                .params
                .iter()
                .map(|(k, v)| k.len() + v.approx_size() + 16)
                .sum::<usize>()
    }
}

/// The status portion of a web-service response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoapStatus {
    /// The operation completed; the paper's startd expects a plain `OK`.
    Ok,
    /// The operation completed and carries match information for the caller
    /// (the `MATCHINFO` reply of Table 2, step 8).
    MatchInfo,
    /// The operation failed; the body carries a message.
    Fault,
}

/// A web-service response: a status plus named result fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoapResponse {
    /// Response status.
    pub status: SoapStatus,
    /// Named result fields.
    pub fields: BTreeMap<String, Value>,
}

impl SoapResponse {
    /// A plain `OK` response.
    pub fn ok() -> Self {
        SoapResponse {
            status: SoapStatus::Ok,
            fields: BTreeMap::new(),
        }
    }

    /// A `MATCHINFO` response.
    pub fn match_info() -> Self {
        SoapResponse {
            status: SoapStatus::MatchInfo,
            fields: BTreeMap::new(),
        }
    }

    /// A fault response with a message.
    pub fn fault(message: impl Into<String>) -> Self {
        let mut fields = BTreeMap::new();
        fields.insert("message".to_string(), Value::Text(message.into().into()));
        SoapResponse {
            status: SoapStatus::Fault,
            fields,
        }
    }

    /// Builder-style result-field addition.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.insert(name.into(), value.into());
        self
    }

    /// Returns a result field by name, or NULL when absent.
    pub fn field(&self, name: &str) -> Value {
        self.fields.get(name).cloned().unwrap_or(Value::Null)
    }

    /// True when the response is not a fault.
    pub fn is_success(&self) -> bool {
        self.status != SoapStatus::Fault
    }

    /// The fault message, if this is a fault.
    pub fn fault_message(&self) -> Option<String> {
        if self.status == SoapStatus::Fault {
            self.fields.get("message").and_then(|v| v.as_text().ok()).map(str::to_string)
        } else {
            None
        }
    }

    /// Approximate size of the response envelope in bytes.
    pub fn approx_size(&self) -> usize {
        96 + self
            .fields
            .iter()
            .map(|(k, v)| k.len() + v.approx_size() + 16)
            .sum::<usize>()
    }
}

impl fmt::Display for SoapResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.status {
            SoapStatus::Ok => write!(f, "OK"),
            SoapStatus::MatchInfo => write!(f, "MATCHINFO"),
            SoapStatus::Fault => write!(
                f,
                "FAULT: {}",
                self.fault_message().unwrap_or_else(|| "unknown".into())
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_and_accessors() {
        let req = SoapRequest::new("heartbeat")
            .with("vm", 12i64)
            .with("state", "idle");
        assert_eq!(req.int_param("vm").unwrap(), 12);
        assert_eq!(req.text_param("state").unwrap(), "idle");
        assert_eq!(req.param("missing"), Value::Null);
        assert!(req.int_param("missing").is_err());
        assert!(req.int_param("state").is_err());
        assert!(req.approx_size() > 128);
    }

    #[test]
    fn response_statuses() {
        assert!(SoapResponse::ok().is_success());
        assert!(SoapResponse::match_info().is_success());
        let fault = SoapResponse::fault("no such job");
        assert!(!fault.is_success());
        assert_eq!(fault.fault_message().as_deref(), Some("no such job"));
        assert_eq!(SoapResponse::ok().fault_message(), None);
        assert_eq!(fault.to_string(), "FAULT: no such job");
        assert_eq!(SoapResponse::match_info().to_string(), "MATCHINFO");
    }

    #[test]
    fn response_fields() {
        let resp = SoapResponse::match_info().with("job_id", 42i64);
        assert_eq!(resp.field("job_id"), Value::Int(42));
        assert_eq!(resp.field("other"), Value::Null);
        assert!(resp.approx_size() > 96);
    }
}
