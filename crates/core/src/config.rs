//! Configuration of the CondorJ2 system.

use cluster_sim::{FailureModel, SimDuration};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the CondorJ2 deployment.
///
/// CondorJ2 follows a pull model: "the execute nodes pull jobs from the
/// server-resident queue(s)", so there is no job-throttle knob; the relevant
/// parameters are how often the startds call back, how often the CAS-side
/// matchmaker runs, and the sizing of the application-server host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondorJ2Config {
    /// How often an idle startd polls the CAS (heartbeat while unclaimed).
    pub idle_poll_interval: SimDuration,
    /// How often a startd running a job heartbeats the CAS.
    pub running_heartbeat_interval: SimDuration,
    /// How often the CAS matchmaking pass runs.
    pub scheduler_interval: SimDuration,
    /// Maximum matches created per matchmaking pass (bounds the size of the
    /// scheduling transaction; 0 means unbounded).
    pub max_matches_per_pass: usize,
    /// Interval of the DBMS background maintenance task (checkpoint).
    pub maintenance_interval: SimDuration,
    /// Size of the application server's database connection pool.
    pub connection_pool_size: usize,
    /// Cores on the machine hosting the application server and the DBMS.
    pub server_cores: u32,
    /// CPU sampling interval for the server machine.
    pub cpu_sample_interval: SimDuration,
    /// Execute-node failure model (shared with the Condor baseline).
    pub failure_model: FailureModel,
}

impl Default for CondorJ2Config {
    fn default() -> Self {
        CondorJ2Config {
            idle_poll_interval: SimDuration::from_secs(2),
            running_heartbeat_interval: SimDuration::from_secs(60),
            scheduler_interval: SimDuration::from_secs(2),
            max_matches_per_pass: 512,
            maintenance_interval: SimDuration::from_mins(120),
            connection_pool_size: 20,
            server_cores: 4,
            cpu_sample_interval: SimDuration::from_secs(60),
            failure_model: FailureModel::default(),
        }
    }
}

impl CondorJ2Config {
    /// A configuration suitable for very large clusters (the 10,000-VM
    /// experiment of Figure 10): longer poll intervals keep the message rate
    /// proportional to what the paper's deployment generated.
    pub fn large_cluster() -> Self {
        CondorJ2Config {
            idle_poll_interval: SimDuration::from_secs(20),
            running_heartbeat_interval: SimDuration::from_secs(60),
            scheduler_interval: SimDuration::from_secs(10),
            ..CondorJ2Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = CondorJ2Config::default();
        assert!(c.idle_poll_interval < c.running_heartbeat_interval);
        assert_eq!(c.server_cores, 4);
        assert_eq!(c.connection_pool_size, 20);
        assert_eq!(c.maintenance_interval, SimDuration::from_mins(120));
    }

    #[test]
    fn large_cluster_preset_reduces_poll_rate() {
        let big = CondorJ2Config::large_cluster();
        let small = CondorJ2Config::default();
        assert!(big.idle_poll_interval > small.idle_poll_interval);
        assert!(big.scheduler_interval > small.scheduler_interval);
    }
}
