//! The CondorJ2 Application Server (CAS) state and its service layer.
//!
//! The CAS is "the only entity in the system with direct access to the
//! database": every interaction — user submissions, administrator queries,
//! startd heartbeats — arrives as a web-service call and is turned into SQL.
//! This module implements the application-logic layer (coarse-grained
//! services), the persistence operations underneath it, the matchmaking pass,
//! the historical-information and configuration-management subsystems, and
//! the data-provenance extension sketched in the paper's future-work section.

use crate::schema;
use appserver::{EntityDef, EntityManager, ServiceKind, ServiceRegistry, SoapRequest, SoapResponse};
use relstore::{Database, Error, FromRow, Prepared, Result, RowView};
use std::sync::Arc;

/// What a startd reports in a heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatReport {
    /// The slot is idle and willing to run a job.
    Idle,
    /// The slot is executing the given job.
    Running {
        /// The executing job.
        job_id: i64,
    },
    /// The job finished successfully.
    Completed {
        /// The finished job.
        job_id: i64,
    },
    /// The node failed to run (dropped) the job; it must be rescheduled.
    Failed {
        /// The dropped job.
        job_id: i64,
    },
}

/// The CAS reply to a heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatReply {
    /// Nothing for the node to do.
    Ok,
    /// A match exists for this node; the startd should call `acceptMatch`.
    MatchInfo {
        /// The matched job.
        job_id: i64,
    },
}

/// Aggregate pool status, as served to users and administrators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStatus {
    /// Jobs waiting to be matched.
    pub idle_jobs: i64,
    /// Jobs currently matched or executing.
    pub active_jobs: i64,
    /// Machines currently executing jobs.
    pub busy_machines: i64,
    /// Machines registered in the pool.
    pub total_machines: i64,
    /// Completed jobs recorded in history.
    pub completed_jobs: i64,
}

/// The columns `complete_job` reads back from a finishing job's tuple and
/// its active run (one `jobs ⋈ runs` query), decoded by name so a
/// projection change cannot misassign fields.
#[derive(Debug, Clone, PartialEq)]
struct FinishedJob {
    owner: String,
    runtime_ms: Option<i64>,
    submitted: Option<i64>,
    requeues: Option<i64>,
    /// The machine the run tuple says the job executed on — the database's
    /// answer, not the heartbeat sender's claim.
    machine_id: i64,
}

impl FromRow for FinishedJob {
    fn from_row(row: &RowView<'_>) -> Result<Self> {
        Ok(FinishedJob {
            owner: row.get("owner")?,
            runtime_ms: row.get("runtime_ms")?,
            submitted: row.get("submitted")?,
            requeues: row.get("requeues")?,
            machine_id: row.get("machine_id")?,
        })
    }
}

/// One line of the per-owner usage report: completed-job usage from
/// `job_history` joined with the owner's registration row in `users`.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnerUsage {
    /// The job owner.
    pub owner: String,
    /// The owner's fair-share priority from `users`.
    pub priority: f64,
    /// Number of completed jobs.
    pub jobs: i64,
    /// Total machine time consumed, in minutes.
    pub machine_minutes: f64,
}

impl FromRow for OwnerUsage {
    fn from_row(row: &RowView<'_>) -> Result<Self> {
        Ok(OwnerUsage {
            owner: row.get("owner")?,
            priority: row.get("priority")?,
            jobs: row.get("jobs")?,
            // SUM over rows whose runtime_ms are all NULL yields SQL NULL;
            // report that owner as zero time, not as a failed report.
            machine_minutes: row.get::<Option<f64>>("total_ms")?.unwrap_or(0.0) / 60_000.0,
        })
    }
}

/// One provenance lineage record: which executable and input produced an
/// output data set.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// The producing job.
    pub job_id: i64,
    /// The executable that ran.
    pub executable: String,
    /// The input data set it consumed.
    pub input_dataset: String,
}

impl FromRow for ProvenanceRecord {
    fn from_row(row: &RowView<'_>) -> Result<Self> {
        Ok(ProvenanceRecord {
            job_id: row.get("job_id")?,
            executable: row.get("executable")?,
            input_dataset: row.get("input_dataset")?,
        })
    }
}

/// The prepared statements behind every hot CAS service call.
///
/// The paper's "HTTP-to-SQL transformation" is the hot path of the whole
/// system: each heartbeat, submission and scheduler pass used to build SQL
/// text with `format!` and re-parse it. Preparing once at deployment and
/// binding parameters per call removes the lexer/parser from every service
/// invocation (and sidesteps literal escaping entirely).
struct CasPrepared {
    user_exists: Prepared,
    user_insert: Prepared,
    job_insert: Prepared,
    machine_exists: Prepared,
    machine_insert: Prepared,
    machine_reregister: Prepared,
    machine_history_insert: Prepared,
    machine_touch: Prepared,
    machine_set_state: Prepared,
    match_for_machine: Prepared,
    match_exists: Prepared,
    match_insert: Prepared,
    match_delete_by_job: Prepared,
    job_touch: Prepared,
    job_set_running: Prepared,
    job_set_matched: Prepared,
    job_requeue: Prepared,
    job_fetch: Prepared,
    job_delete: Prepared,
    run_insert: Prepared,
    run_delete_by_job: Prepared,
    history_insert: Prepared,
    config_get: Prepared,
    config_update: Prepared,
    config_insert: Prepared,
    provenance_insert: Prepared,
    provenance_query: Prepared,
}

impl CasPrepared {
    fn new(db: &Database) -> Result<Self> {
        Ok(CasPrepared {
            user_exists: db.prepare("SELECT name FROM users WHERE name = ?")?,
            user_insert: db.prepare("INSERT INTO users (name, priority, created) VALUES (?, 0.5, ?)")?,
            job_insert: db.prepare(
                "INSERT INTO jobs (job_id, owner, state, runtime_ms, submitted, updated, requeues) \
                 VALUES (?, ?, 'idle', ?, ?, ?, 0)",
            )?,
            machine_exists: db.prepare("SELECT machine_id FROM machines WHERE machine_id = ?")?,
            machine_insert: db.prepare(
                "INSERT INTO machines (machine_id, name, state, speed, phys_id, last_heartbeat) \
                 VALUES (?, ?, 'idle', ?, ?, ?)",
            )?,
            machine_reregister: db.prepare(
                "UPDATE machines SET state = 'idle', last_heartbeat = ? WHERE machine_id = ?",
            )?,
            machine_history_insert: db.prepare(
                "INSERT INTO machine_history (event_id, machine_id, rebooted, os, arch, memory_mb) \
                 VALUES (?, ?, ?, 'linux-2.6', 'x86', ?)",
            )?,
            machine_touch: db.prepare("UPDATE machines SET last_heartbeat = ? WHERE machine_id = ?")?,
            machine_set_state: db.prepare("UPDATE machines SET state = ? WHERE machine_id = ?")?,
            match_for_machine: db.prepare(
                "SELECT job_id FROM matches WHERE machine_id = ? ORDER BY match_id LIMIT 1",
            )?,
            match_exists: db.prepare("SELECT match_id FROM matches WHERE job_id = ? AND machine_id = ?")?,
            match_insert: db.prepare(
                "INSERT INTO matches (match_id, job_id, machine_id, created) VALUES (?, ?, ?, ?)",
            )?,
            match_delete_by_job: db.prepare("DELETE FROM matches WHERE job_id = ?")?,
            job_touch: db.prepare("UPDATE jobs SET updated = ? WHERE job_id = ?")?,
            job_set_running: db.prepare(
                "UPDATE jobs SET state = 'running', updated = ? WHERE job_id = ?",
            )?,
            job_set_matched: db.prepare("UPDATE jobs SET state = 'matched' WHERE job_id = ?")?,
            job_requeue: db.prepare(
                "UPDATE jobs SET state = 'idle', requeues = requeues + 1, updated = ? WHERE job_id = ?",
            )?,
            // One planned join instead of the old application-side pairing
            // (fetch the job, then trust the caller for the machine): the
            // run tuple is the authority on where the job executed.
            job_fetch: db.prepare(
                "SELECT jobs.owner, jobs.runtime_ms, jobs.submitted, jobs.requeues, \
                        runs.machine_id \
                 FROM jobs JOIN runs ON jobs.job_id = runs.job_id \
                 WHERE jobs.job_id = ?",
            )?,
            job_delete: db.prepare("DELETE FROM jobs WHERE job_id = ?")?,
            run_insert: db.prepare(
                "INSERT INTO runs (run_id, job_id, machine_id, started) VALUES (?, ?, ?, ?)",
            )?,
            run_delete_by_job: db.prepare("DELETE FROM runs WHERE job_id = ?")?,
            history_insert: db.prepare(
                "INSERT INTO job_history (history_id, job_id, owner, runtime_ms, submitted, completed, machine_id, requeues) \
                 VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            )?,
            config_get: db.prepare("SELECT value FROM config WHERE name = ?")?,
            config_update: db.prepare("UPDATE config SET value = ?, updated = ? WHERE name = ?")?,
            config_insert: db.prepare("INSERT INTO config (name, value, updated) VALUES (?, ?, ?)")?,
            provenance_insert: db.prepare(
                "INSERT INTO provenance (record_id, job_id, executable, input_dataset, output_dataset, recorded) \
                 VALUES (?, ?, ?, ?, ?, ?)",
            )?,
            provenance_query: db.prepare(
                "SELECT job_id, executable, input_dataset FROM provenance \
                 WHERE output_dataset = ? ORDER BY record_id",
            )?,
        })
    }
}

/// The CAS application state shared by all service handlers.
pub struct CasState {
    db: Arc<Database>,
    prepared: CasPrepared,
    entities: EntityManager,
    /// The current simulated time in milliseconds (set by the event loop
    /// before each dispatch so handlers can timestamp their writes).
    pub now_ms: i64,
    next_job_id: i64,
    next_match_id: i64,
    next_run_id: i64,
    next_history_id: i64,
    next_machine_event_id: i64,
    next_provenance_id: i64,
    /// Matches created by the scheduling pass.
    pub matches_made: u64,
    /// Jobs completed (moved to history).
    pub jobs_completed: u64,
    /// Jobs returned to the idle state after a node dropped them.
    pub jobs_requeued: u64,
}

impl CasState {
    /// Creates the CAS state over a database, deploying the schema and the
    /// default configuration policies.
    pub fn new(db: Arc<Database>) -> Result<Self> {
        schema::deploy(&db)?;
        let entities = EntityManager::new(Arc::clone(&db));
        let prepared = CasPrepared::new(&db)?;
        let state = CasState {
            db,
            prepared,
            entities,
            now_ms: 0,
            next_job_id: 0,
            next_match_id: 0,
            next_run_id: 0,
            next_history_id: 0,
            next_machine_event_id: 0,
            next_provenance_id: 0,
            matches_made: 0,
            jobs_completed: 0,
            jobs_requeued: 0,
        };
        state.set_config_if_absent("heartbeat_interval_secs", "60")?;
        state.set_config_if_absent("scheduler", "fifo")?;
        state.set_config_if_absent("max_requeues", "5")?;
        Ok(state)
    }

    /// The underlying database (used by reports and tests).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The container-managed persistence manager for the CondorJ2 entities.
    pub fn entities(&self) -> &EntityManager {
        &self.entities
    }

    /// The entity definition of the jobs table.
    pub fn job_entity() -> EntityDef {
        EntityDef::new("jobs", "job_id")
    }

    /// The entity definition of the machines table.
    pub fn machine_entity() -> EntityDef {
        EntityDef::new("machines", "machine_id")
    }

    // --- users, submission ----------------------------------------------------
    //
    // Service methods open a fresh typed `Session` over the shared database
    // (two words) directly off the `db` field, so the borrow stays
    // field-precise and the id counters remain mutable alongside it.

    /// Ensures a user row exists (users are created implicitly on first use).
    fn ensure_user(&self, name: &str) -> Result<()> {
        let mut sql = self.db.session();
        if sql.query(&self.prepared.user_exists, (name,))?.is_empty() {
            sql.execute(&self.prepared.user_insert, (name, self.now_ms))?;
        }
        Ok(())
    }

    /// Submits one job, inserting a job tuple. Returns the new job id.
    pub fn submit_job(&mut self, owner: &str, runtime_ms: i64) -> Result<i64> {
        self.ensure_user(owner)?;
        self.next_job_id += 1;
        let id = self.next_job_id;
        self.db.session().execute(
            &self.prepared.job_insert,
            (id, owner, runtime_ms, self.now_ms, self.now_ms),
        )?;
        Ok(id)
    }

    // --- machines ---------------------------------------------------------------

    /// Registers (or re-registers after a reboot) an execute slot. Reboots
    /// also record the slow-changing attributes into `machine_history`, the
    /// extra work the paper blames for the start-of-run spike in Figure 10.
    pub fn register_machine(
        &mut self,
        machine_id: i64,
        name: &str,
        speed: f64,
        phys_id: i64,
        memory_mb: i64,
    ) -> Result<()> {
        let mut sql = self.db.session();
        if sql
            .query(&self.prepared.machine_exists, (machine_id,))?
            .is_empty()
        {
            sql.execute(
                &self.prepared.machine_insert,
                (machine_id, name, speed, phys_id, self.now_ms),
            )?;
        } else {
            sql.execute(&self.prepared.machine_reregister, (self.now_ms, machine_id))?;
        }
        self.next_machine_event_id += 1;
        sql.execute(
            &self.prepared.machine_history_insert,
            (self.next_machine_event_id, machine_id, self.now_ms, memory_mb),
        )?;
        Ok(())
    }

    /// Handles a startd heartbeat.
    pub fn heartbeat(&mut self, machine_id: i64, report: HeartbeatReport) -> Result<HeartbeatReply> {
        self.db.session()
            .execute(&self.prepared.machine_touch, (self.now_ms, machine_id))?;
        match report {
            HeartbeatReport::Idle => {
                let matched: Option<i64> = self
                    .db
                    .session()
                    .query_scalars(&self.prepared.match_for_machine, (machine_id,))?
                    .into_iter()
                    .next();
                match matched {
                    Some(job_id) => Ok(HeartbeatReply::MatchInfo { job_id }),
                    None => Ok(HeartbeatReply::Ok),
                }
            }
            HeartbeatReport::Running { job_id } => {
                self.db.session()
                    .execute(&self.prepared.job_touch, (self.now_ms, job_id))?;
                Ok(HeartbeatReply::Ok)
            }
            HeartbeatReport::Completed { job_id } => {
                self.complete_job(machine_id, job_id)?;
                Ok(HeartbeatReply::Ok)
            }
            HeartbeatReport::Failed { job_id } => {
                self.requeue_job(machine_id, job_id)?;
                Ok(HeartbeatReply::Ok)
            }
        }
    }

    /// The startd accepts a previously reported match: the match tuple becomes
    /// a run tuple and the job and machine move to the running state.
    pub fn accept_match(&mut self, machine_id: i64, job_id: i64) -> Result<()> {
        let mut sql = self.db.session();
        if sql
            .query(&self.prepared.match_exists, (job_id, machine_id))?
            .is_empty()
        {
            return Err(Error::not_found(format!(
                "match of job {job_id} on machine {machine_id}"
            )));
        }
        sql.execute(&self.prepared.match_delete_by_job, (job_id,))?;
        self.next_run_id += 1;
        sql.execute(
            &self.prepared.run_insert,
            (self.next_run_id, job_id, machine_id, self.now_ms),
        )?;
        sql.execute(&self.prepared.job_set_running, (self.now_ms, job_id))?;
        sql.execute(&self.prepared.machine_set_state, ("running", machine_id))?;
        Ok(())
    }

    fn complete_job(&mut self, machine_id: i64, job_id: i64) -> Result<()> {
        let mut sql = self.db.session();
        // A single `jobs ⋈ runs` query fetches the finishing job together
        // with its run tuple; a completion report for a job that never
        // started (no run) fails here instead of fabricating history.
        let job: FinishedJob = sql
            .query_one(&self.prepared.job_fetch, (job_id,))?
            .ok_or_else(|| Error::not_found(format!("running job {job_id}")))?;
        self.next_history_id += 1;
        sql.execute(
            &self.prepared.history_insert,
            (
                self.next_history_id,
                job_id,
                job.owner,
                job.runtime_ms,
                job.submitted,
                self.now_ms,
                // Recorded from the run tuple, not the heartbeat sender's
                // claim.
                job.machine_id,
                job.requeues.unwrap_or(0),
            ),
        )?;
        sql.execute(&self.prepared.run_delete_by_job, (job_id,))?;
        sql.execute(&self.prepared.job_delete, (job_id,))?;
        sql.execute(&self.prepared.machine_set_state, ("idle", machine_id))?;
        self.jobs_completed += 1;
        Ok(())
    }

    fn requeue_job(&mut self, machine_id: i64, job_id: i64) -> Result<()> {
        let mut sql = self.db.session();
        sql.execute(&self.prepared.run_delete_by_job, (job_id,))?;
        sql.execute(&self.prepared.match_delete_by_job, (job_id,))?;
        sql.execute(&self.prepared.job_requeue, (self.now_ms, job_id))?;
        sql.execute(&self.prepared.machine_set_state, ("idle", machine_id))?;
        self.jobs_requeued += 1;
        Ok(())
    }

    // --- matchmaking -------------------------------------------------------------

    /// Runs one matchmaking pass: pairs idle machines with idle jobs inside a
    /// single transaction, creating match tuples that idle startds pick up on
    /// their next heartbeat. Returns the number of matches created.
    pub fn run_scheduler(&mut self) -> Result<usize> {
        self.run_scheduler_limited(usize::MAX)
    }

    /// As [`CasState::run_scheduler`], bounded to at most `limit` matches.
    ///
    /// The sweep is batched: the N match inserts, N job-state updates and N
    /// machine-state updates execute as three `execute_batch` calls inside
    /// one RAII transaction — three catalog write guards and three WAL
    /// appends for the whole pass instead of 3N of each. Any failure drops
    /// the guard and rolls the entire pass back.
    pub fn run_scheduler_limited(&mut self, limit: usize) -> Result<usize> {
        let idle_machines: Vec<i64> = self.db.session().query_scalars(
            "SELECT machine_id FROM machines WHERE state = 'idle' ORDER BY machine_id",
            (),
        )?;
        if idle_machines.is_empty() {
            return Ok(0);
        }
        let idle_jobs: Vec<i64> = self.db.session().query_scalars(
            "SELECT job_id FROM jobs WHERE state = 'idle' ORDER BY job_id",
            (),
        )?;
        if idle_jobs.is_empty() {
            return Ok(0);
        }
        let pairs: Vec<(i64, i64)> = idle_machines
            .into_iter()
            .zip(idle_jobs)
            .take(limit)
            .collect();

        let first_match_id = self.next_match_id + 1;
        let now = self.now_ms;
        // Readers never conflict under MVCC, but another writer (a heartbeat
        // mutating `machines`, say) can still collide with the sweep; retry
        // the whole transaction with backoff — the dropped guard rolls a
        // half-applied pass back before each retry.
        let prepared = &self.prepared;
        self.db.session().with_retries(3, |s| {
            let txn = s.transaction()?;
            txn.execute_batch(
                &prepared.match_insert,
                pairs
                    .iter()
                    .enumerate()
                    .map(|(i, (machine_id, job_id))| {
                        (first_match_id + i as i64, *job_id, *machine_id, now)
                    }),
            )?;
            txn.execute_batch(
                &prepared.job_set_matched,
                pairs.iter().map(|(_, job_id)| (*job_id,)),
            )?;
            txn.execute_batch(
                &prepared.machine_set_state,
                pairs.iter().map(|(machine_id, _)| ("matched", *machine_id)),
            )?;
            txn.commit()
        })?;

        let made = pairs.len();
        self.next_match_id += made as i64;
        self.matches_made += made as u64;
        Ok(made)
    }

    // --- queries, configuration, history, provenance ------------------------------

    /// Aggregate pool status (the pool web site's front page).
    pub fn pool_status(&self) -> Result<PoolStatus> {
        let idle_jobs = self
            .db
            .query("SELECT COUNT(*) FROM jobs WHERE state = 'idle'")?
            .scalar_int()
            .unwrap_or(0);
        let total_jobs = self.db.table_len("jobs")? as i64;
        let busy = self
            .db
            .query("SELECT COUNT(*) FROM machines WHERE state = 'running'")?
            .scalar_int()
            .unwrap_or(0);
        let total_machines = self.db.table_len("machines")? as i64;
        let completed = self.db.table_len("job_history")? as i64;
        Ok(PoolStatus {
            idle_jobs,
            active_jobs: total_jobs - idle_jobs,
            busy_machines: busy,
            total_machines,
            completed_jobs: completed,
        })
    }

    /// Per-owner usage report (an example of the "expressive query language
    /// over the operational data" the paper touts): one planned
    /// `job_history ⋈ users` query, where the old report left the `users`
    /// attributes to a follow-up lookup per owner. Inner join semantics:
    /// history rows of unregistered owners are not reported (LEFT OUTER
    /// JOIN is still future work — see ROADMAP).
    pub fn usage_by_owner(&self) -> Result<Vec<OwnerUsage>> {
        self.db.session().query_as(
            "SELECT users.name AS owner, users.priority AS priority, \
                    COUNT(*) AS jobs, SUM(job_history.runtime_ms) AS total_ms \
             FROM job_history JOIN users ON job_history.owner = users.name \
             GROUP BY users.name, users.priority ORDER BY owner",
            (),
        )
    }

    /// Reads a configuration policy value.
    pub fn get_config(&self, name: &str) -> Result<Option<String>> {
        let value: Option<(Option<String>,)> = self
            .db
            .session()
            .query_one(&self.prepared.config_get, (name,))?;
        Ok(value.and_then(|(v,)| v))
    }

    /// Writes a configuration policy value.
    pub fn set_config(&self, name: &str, value: &str) -> Result<()> {
        let mut sql = self.db.session();
        let updated = sql.execute(&self.prepared.config_update, (value, self.now_ms, name))?;
        if updated.affected() == 0 {
            sql.execute(&self.prepared.config_insert, (name, value, self.now_ms))?;
        }
        Ok(())
    }

    fn set_config_if_absent(&self, name: &str, value: &str) -> Result<()> {
        if self.get_config(name)?.is_none() {
            self.set_config(name, value)?;
        }
        Ok(())
    }

    /// Records data provenance for a job (future-work extension): which
    /// executable and input produced which output data set.
    pub fn record_provenance(
        &mut self,
        job_id: i64,
        executable: &str,
        input_dataset: &str,
        output_dataset: &str,
    ) -> Result<i64> {
        self.next_provenance_id += 1;
        self.db.session().execute(
            &self.prepared.provenance_insert,
            (
                self.next_provenance_id,
                job_id,
                executable,
                input_dataset,
                output_dataset,
                self.now_ms,
            ),
        )?;
        Ok(self.next_provenance_id)
    }

    /// Answers the paper's provenance question: "what executable and input
    /// data generated this particular output data set?"
    pub fn provenance_of(&self, output_dataset: &str) -> Result<Vec<ProvenanceRecord>> {
        self.db
            .session()
            .query_as(&self.prepared.provenance_query, (output_dataset,))
    }
}

impl std::fmt::Debug for CasState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CasState")
            .field("matches_made", &self.matches_made)
            .field("jobs_completed", &self.jobs_completed)
            .field("jobs_requeued", &self.jobs_requeued)
            .finish()
    }
}

/// Registers the CAS web-service endpoints on a service registry.
///
/// The coarse-grained endpoints are the external interface used by execute
/// machines, users and web clients; a few fine-grained persistence-layer
/// operations are also registered to demonstrate the layering rule (they are
/// rejected when invoked externally).
pub fn register_services(registry: &mut ServiceRegistry<CasState>) {
    registry.register(
        "submitJob",
        ServiceKind::CoarseGrained,
        "Submit a job to the pool (owner, runtime_ms, count)",
        |state: &mut CasState, req: &SoapRequest| {
            let owner = req.text_param("owner").unwrap_or_else(|_| "anonymous".into());
            let runtime = req.int_param("runtime_ms").unwrap_or(60_000);
            let count = req.int_param("count").unwrap_or(1).max(1);
            let mut first = 0;
            for i in 0..count {
                match state.submit_job(&owner, runtime) {
                    Ok(id) => {
                        if i == 0 {
                            first = id;
                        }
                    }
                    Err(e) => return SoapResponse::fault(e.to_string()),
                }
            }
            SoapResponse::ok().with("first_job_id", first).with("count", count)
        },
    );
    registry.register(
        "registerMachine",
        ServiceKind::CoarseGrained,
        "Register an execute slot (machine_id, name, speed, phys_id, memory_mb)",
        |state: &mut CasState, req: &SoapRequest| {
            let id = match req.int_param("machine_id") {
                Ok(v) => v,
                Err(e) => return SoapResponse::fault(e),
            };
            let name = req.text_param("name").unwrap_or_else(|_| format!("vm{id}"));
            let speed = req.param("speed").as_double().unwrap_or(1.0);
            let phys = req.int_param("phys_id").unwrap_or(0);
            let mem = req.int_param("memory_mb").unwrap_or(2048);
            match state.register_machine(id, &name, speed, phys, mem) {
                Ok(()) => SoapResponse::ok(),
                Err(e) => SoapResponse::fault(e.to_string()),
            }
        },
    );
    registry.register(
        "heartbeat",
        ServiceKind::CoarseGrained,
        "Periodic startd heartbeat (machine_id, status, job_id)",
        |state: &mut CasState, req: &SoapRequest| {
            let id = match req.int_param("machine_id") {
                Ok(v) => v,
                Err(e) => return SoapResponse::fault(e),
            };
            let status = req.text_param("status").unwrap_or_else(|_| "idle".into());
            let job_id = req.int_param("job_id").unwrap_or(0);
            let report = match status.as_str() {
                "idle" => HeartbeatReport::Idle,
                "running" => HeartbeatReport::Running { job_id },
                "completed" => HeartbeatReport::Completed { job_id },
                "failed" => HeartbeatReport::Failed { job_id },
                other => return SoapResponse::fault(format!("unknown status {other}")),
            };
            match state.heartbeat(id, report) {
                Ok(HeartbeatReply::Ok) => SoapResponse::ok(),
                Ok(HeartbeatReply::MatchInfo { job_id }) => {
                    SoapResponse::match_info().with("job_id", job_id)
                }
                Err(e) => SoapResponse::fault(e.to_string()),
            }
        },
    );
    registry.register(
        "acceptMatch",
        ServiceKind::CoarseGrained,
        "Startd accepts a match (machine_id, job_id)",
        |state: &mut CasState, req: &SoapRequest| {
            let machine = match req.int_param("machine_id") {
                Ok(v) => v,
                Err(e) => return SoapResponse::fault(e),
            };
            let job = match req.int_param("job_id") {
                Ok(v) => v,
                Err(e) => return SoapResponse::fault(e),
            };
            match state.accept_match(machine, job) {
                Ok(()) => SoapResponse::ok(),
                Err(e) => SoapResponse::fault(e.to_string()),
            }
        },
    );
    registry.register(
        "queryPool",
        ServiceKind::CoarseGrained,
        "Pool status summary for users and administrators",
        |state: &mut CasState, _req: &SoapRequest| match state.pool_status() {
            Ok(s) => SoapResponse::ok()
                .with("idle_jobs", s.idle_jobs)
                .with("active_jobs", s.active_jobs)
                .with("busy_machines", s.busy_machines)
                .with("total_machines", s.total_machines)
                .with("completed_jobs", s.completed_jobs),
            Err(e) => SoapResponse::fault(e.to_string()),
        },
    );
    registry.register(
        "getConfig",
        ServiceKind::CoarseGrained,
        "Read a configuration policy",
        |state: &mut CasState, req: &SoapRequest| {
            let name = match req.text_param("name") {
                Ok(v) => v,
                Err(e) => return SoapResponse::fault(e),
            };
            match state.get_config(&name) {
                Ok(Some(v)) => SoapResponse::ok().with("value", v),
                Ok(None) => SoapResponse::fault(format!("no such configuration entry {name}")),
                Err(e) => SoapResponse::fault(e.to_string()),
            }
        },
    );
    registry.register(
        "setConfig",
        ServiceKind::CoarseGrained,
        "Write a configuration policy",
        |state: &mut CasState, req: &SoapRequest| {
            let name = match req.text_param("name") {
                Ok(v) => v,
                Err(e) => return SoapResponse::fault(e),
            };
            let value = match req.text_param("value") {
                Ok(v) => v,
                Err(e) => return SoapResponse::fault(e),
            };
            match state.set_config(&name, &value) {
                Ok(()) => SoapResponse::ok(),
                Err(e) => SoapResponse::fault(e.to_string()),
            }
        },
    );
    registry.register(
        "recordProvenance",
        ServiceKind::CoarseGrained,
        "Record which executable and inputs produced an output data set",
        |state: &mut CasState, req: &SoapRequest| {
            let job_id = req.int_param("job_id").unwrap_or(0);
            let exe = req.text_param("executable").unwrap_or_default();
            let input = req.text_param("input").unwrap_or_default();
            let output = match req.text_param("output") {
                Ok(v) => v,
                Err(e) => return SoapResponse::fault(e),
            };
            match state.record_provenance(job_id, &exe, &input, &output) {
                Ok(id) => SoapResponse::ok().with("record_id", id),
                Err(e) => SoapResponse::fault(e.to_string()),
            }
        },
    );
    // Fine-grained persistence-layer operations: internal only.
    registry.register(
        "jobBean.setState",
        ServiceKind::FineGrained,
        "Entity-bean operation: force a job state transition",
        |state: &mut CasState, req: &SoapRequest| {
            let job_id = req.int_param("job_id").unwrap_or(0);
            let new_state = req.text_param("state").unwrap_or_else(|_| "idle".into());
            // The SQL text resolves through the statement cache after the
            // first call; the session binds the tuple positionally.
            let result = state
                .database()
                .session()
                .execute("UPDATE jobs SET state = ? WHERE job_id = ?", (new_state, job_id));
            match result {
                Ok(r) => SoapResponse::ok().with("affected", r.affected() as i64),
                Err(e) => SoapResponse::fault(e.to_string()),
            }
        },
    );
    registry.register(
        "machineBean.touch",
        ServiceKind::FineGrained,
        "Entity-bean operation: refresh a machine's heartbeat timestamp",
        |state: &mut CasState, req: &SoapRequest| {
            let id = req.int_param("machine_id").unwrap_or(0);
            let now = state.now_ms;
            match state
                .database()
                .session()
                .execute(&state.prepared.machine_touch, (now, id))
            {
                Ok(_) => SoapResponse::ok(),
                Err(e) => SoapResponse::fault(e.to_string()),
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Value;

    fn cas() -> CasState {
        CasState::new(Arc::new(Database::new())).unwrap()
    }

    #[test]
    fn submit_heartbeat_match_accept_complete_lifecycle() {
        let mut cas = cas();
        cas.register_machine(1, "vm1@node001", 1.0, 0, 2048).unwrap();
        let job = cas.submit_job("alice", 60_000).unwrap();

        // Before the scheduler runs, an idle heartbeat has nothing to offer.
        assert_eq!(cas.heartbeat(1, HeartbeatReport::Idle).unwrap(), HeartbeatReply::Ok);

        assert_eq!(cas.run_scheduler().unwrap(), 1);
        assert_eq!(
            cas.heartbeat(1, HeartbeatReport::Idle).unwrap(),
            HeartbeatReply::MatchInfo { job_id: job }
        );
        cas.accept_match(1, job).unwrap();
        assert_eq!(cas.database().table_len("runs").unwrap(), 1);
        assert_eq!(cas.database().table_len("matches").unwrap(), 0);

        cas.heartbeat(1, HeartbeatReport::Running { job_id: job }).unwrap();
        cas.heartbeat(1, HeartbeatReport::Completed { job_id: job }).unwrap();
        assert_eq!(cas.database().table_len("jobs").unwrap(), 0);
        assert_eq!(cas.database().table_len("runs").unwrap(), 0);
        assert_eq!(cas.database().table_len("job_history").unwrap(), 1);
        assert_eq!(cas.jobs_completed, 1);

        let status = cas.pool_status().unwrap();
        assert_eq!(status.completed_jobs, 1);
        assert_eq!(status.idle_jobs, 0);
        assert_eq!(status.total_machines, 1);
    }

    #[test]
    fn failed_jobs_are_requeued_and_rescheduled() {
        let mut cas = cas();
        cas.register_machine(1, "vm1", 1.0, 0, 1024).unwrap();
        let job = cas.submit_job("bob", 6_000).unwrap();
        cas.run_scheduler().unwrap();
        cas.accept_match(1, job).unwrap();
        cas.heartbeat(1, HeartbeatReport::Failed { job_id: job }).unwrap();
        assert_eq!(cas.jobs_requeued, 1);
        let (state, requeues): (String, i64) = cas
            .database()
            .session()
            .query_one("SELECT state, requeues FROM jobs WHERE job_id = ?", (job,))
            .unwrap()
            .unwrap();
        assert_eq!(state, "idle");
        assert_eq!(requeues, 1);
        // The machine is idle again and can be rematched.
        assert_eq!(cas.run_scheduler().unwrap(), 1);
    }

    #[test]
    fn scheduler_is_bounded_by_idle_machines_and_jobs() {
        let mut cas = cas();
        for m in 1..=3 {
            cas.register_machine(m, &format!("vm{m}"), 1.0, 0, 1024).unwrap();
        }
        for _ in 0..5 {
            cas.submit_job("carol", 60_000).unwrap();
        }
        assert_eq!(cas.run_scheduler().unwrap(), 3, "only three idle machines");
        assert_eq!(cas.run_scheduler().unwrap(), 0, "no idle machines remain");
        assert_eq!(cas.database().table_len("matches").unwrap(), 3);
        assert_eq!(cas.matches_made, 3);

        let mut cas2 = CasState::new(Arc::new(Database::new())).unwrap();
        for m in 1..=4 {
            cas2.register_machine(m, &format!("vm{m}"), 1.0, 0, 1024).unwrap();
        }
        cas2.submit_job("dana", 1000).unwrap();
        assert_eq!(cas2.run_scheduler_limited(10).unwrap(), 1, "only one idle job");
    }

    #[test]
    fn accept_match_requires_an_existing_match() {
        let mut cas = cas();
        cas.register_machine(1, "vm1", 1.0, 0, 1024).unwrap();
        let job = cas.submit_job("erin", 1000).unwrap();
        assert!(cas.accept_match(1, job).is_err());
    }

    #[test]
    fn configuration_management_round_trip() {
        let cas = cas();
        assert_eq!(cas.get_config("scheduler").unwrap().as_deref(), Some("fifo"));
        cas.set_config("scheduler", "priority").unwrap();
        assert_eq!(cas.get_config("scheduler").unwrap().as_deref(), Some("priority"));
        assert_eq!(cas.get_config("nonexistent").unwrap(), None);
        cas.set_config("new_key", "new_value").unwrap();
        assert_eq!(cas.get_config("new_key").unwrap().as_deref(), Some("new_value"));
    }

    #[test]
    fn history_usage_report_groups_by_owner() {
        let mut cas = cas();
        cas.register_machine(1, "vm1", 1.0, 0, 1024).unwrap();
        for (owner, runtime) in [("alice", 60_000), ("alice", 120_000), ("bob", 30_000)] {
            let job = cas.submit_job(owner, runtime).unwrap();
            cas.run_scheduler().unwrap();
            cas.accept_match(1, job).unwrap();
            cas.heartbeat(1, HeartbeatReport::Completed { job_id: job }).unwrap();
        }
        let usage = cas.usage_by_owner().unwrap();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].owner, "alice");
        assert_eq!(usage[0].jobs, 2);
        assert!(
            (usage[0].machine_minutes - 3.0).abs() < 1e-9,
            "alice used 3 machine-minutes"
        );
        assert_eq!(usage[1].owner, "bob");

        // The report joins users, so every line carries the owner's
        // fair-share priority (0.5 at registration).
        assert!((usage[0].priority - 0.5).abs() < 1e-9);

        // An owner whose history rows carry NULL runtimes reports zero time
        // rather than poisoning the whole report (SUM over NULLs is NULL).
        cas.database()
            .session()
            .execute(
                "INSERT INTO users (name, priority, created) VALUES (?, 0.5, ?)",
                ("carol", 0i64),
            )
            .unwrap();
        cas.database()
            .session()
            .execute(
                "INSERT INTO job_history (history_id, job_id, owner) VALUES (?, ?, ?)",
                (999i64, 999i64, "carol"),
            )
            .unwrap();
        let usage = cas.usage_by_owner().unwrap();
        assert_eq!(usage.len(), 3);
        assert_eq!(usage[2].owner, "carol");
        assert_eq!(usage[2].machine_minutes, 0.0);

        // History rows whose owner never registered are not reported: the
        // report is an inner join (LEFT OUTER JOIN remains future work).
        cas.database()
            .session()
            .execute(
                "INSERT INTO job_history (history_id, job_id, owner) VALUES (?, ?, ?)",
                (1000i64, 1000i64, "ghost"),
            )
            .unwrap();
        assert_eq!(cas.usage_by_owner().unwrap().len(), 3);
    }

    #[test]
    fn provenance_answers_the_papers_question() {
        let mut cas = cas();
        let job = cas.submit_job("sci", 60_000).unwrap();
        cas.record_provenance(job, "simulate-v2.1", "raw-2006-11.dat", "results-2006-11.out")
            .unwrap();
        cas.record_provenance(job, "simulate-v2.1", "raw-2006-12.dat", "results-2006-12.out")
            .unwrap();
        let lineage = cas.provenance_of("results-2006-11.out").unwrap();
        assert_eq!(lineage.len(), 1);
        assert_eq!(lineage[0].job_id, job);
        assert_eq!(lineage[0].executable, "simulate-v2.1");
        assert_eq!(lineage[0].input_dataset, "raw-2006-11.dat");
        assert!(cas.provenance_of("unknown.out").unwrap().is_empty());
    }

    #[test]
    fn machine_reboots_accumulate_history() {
        let mut cas = cas();
        cas.register_machine(1, "vm1", 1.0, 0, 2048).unwrap();
        cas.register_machine(1, "vm1", 1.0, 0, 2048).unwrap();
        assert_eq!(cas.database().table_len("machines").unwrap(), 1);
        assert_eq!(cas.database().table_len("machine_history").unwrap(), 2);
    }

    #[test]
    fn services_registry_dispatches_external_operations() {
        use appserver::SoapStatus;
        let mut registry = ServiceRegistry::new();
        register_services(&mut registry);
        let mut state = cas();

        let resp = registry.dispatch_external(
            &mut state,
            &SoapRequest::new("registerMachine").with("machine_id", 5i64).with("name", "vm5"),
        );
        assert!(resp.is_success());
        let resp = registry.dispatch_external(
            &mut state,
            &SoapRequest::new("submitJob")
                .with("owner", "alice")
                .with("runtime_ms", 60_000i64)
                .with("count", 3i64),
        );
        assert!(resp.is_success());
        assert_eq!(resp.field("count"), Value::Int(3));

        state.run_scheduler().unwrap();
        let resp = registry.dispatch_external(
            &mut state,
            &SoapRequest::new("heartbeat").with("machine_id", 5i64).with("status", "idle"),
        );
        assert_eq!(resp.status, SoapStatus::MatchInfo);
        let job_id = resp.field("job_id").as_int().unwrap();
        let resp = registry.dispatch_external(
            &mut state,
            &SoapRequest::new("acceptMatch").with("machine_id", 5i64).with("job_id", job_id),
        );
        assert!(resp.is_success());

        // The fine-grained bean operation is rejected externally.
        let resp = registry.dispatch_external(
            &mut state,
            &SoapRequest::new("jobBean.setState").with("job_id", job_id).with("state", "held"),
        );
        assert!(!resp.is_success());
        // But reachable from inside the application-logic layer.
        let resp = registry.dispatch_internal(
            &mut state,
            &SoapRequest::new("jobBean.setState").with("job_id", job_id).with("state", "held"),
        );
        assert!(resp.is_success());

        let resp = registry.dispatch_external(&mut state, &SoapRequest::new("queryPool"));
        assert!(resp.is_success());
        assert_eq!(resp.field("total_machines"), Value::Int(1));
    }
}
