//! The CondorJ2 relational schema.
//!
//! All operational state of the pool lives in these tables; every service call
//! the CAS handles becomes SQL against them. The schema mirrors the persistent
//! objects the paper lists for the persistence layer: users, jobs, machines,
//! matches, runs, configuration policies, plus the operational/historical
//! split called out in the code-base discussion (configuration management and
//! historical machine information are sizeable subsystems of the prototype).

/// DDL for every CondorJ2 table, executed at CAS startup.
pub const DDL: &[&str] = &[
    "CREATE TABLE users (
        name TEXT PRIMARY KEY,
        priority DOUBLE,
        created TIMESTAMP
    )",
    "CREATE TABLE jobs (
        job_id INT PRIMARY KEY,
        owner TEXT NOT NULL,
        state TEXT NOT NULL,
        runtime_ms INT,
        submitted TIMESTAMP,
        updated TIMESTAMP,
        requeues INT
    )",
    "CREATE INDEX ON jobs (state)",
    "CREATE INDEX ON jobs (owner)",
    "CREATE TABLE machines (
        machine_id INT PRIMARY KEY,
        name TEXT NOT NULL,
        state TEXT NOT NULL,
        speed DOUBLE,
        phys_id INT,
        last_heartbeat TIMESTAMP
    )",
    "CREATE INDEX ON machines (state)",
    "CREATE TABLE matches (
        match_id INT PRIMARY KEY,
        job_id INT NOT NULL,
        machine_id INT NOT NULL,
        created TIMESTAMP
    )",
    "CREATE INDEX ON matches (machine_id)",
    "CREATE INDEX ON matches (job_id)",
    "CREATE TABLE runs (
        run_id INT PRIMARY KEY,
        job_id INT NOT NULL,
        machine_id INT NOT NULL,
        started TIMESTAMP
    )",
    "CREATE INDEX ON runs (machine_id)",
    "CREATE INDEX ON runs (job_id)",
    "CREATE TABLE job_history (
        history_id INT PRIMARY KEY,
        job_id INT NOT NULL,
        owner TEXT,
        runtime_ms INT,
        submitted TIMESTAMP,
        completed TIMESTAMP,
        machine_id INT,
        requeues INT
    )",
    "CREATE INDEX ON job_history (owner)",
    "CREATE TABLE machine_history (
        event_id INT PRIMARY KEY,
        machine_id INT NOT NULL,
        rebooted TIMESTAMP,
        os TEXT,
        arch TEXT,
        memory_mb INT
    )",
    "CREATE INDEX ON machine_history (machine_id)",
    "CREATE TABLE config (
        name TEXT PRIMARY KEY,
        value TEXT,
        updated TIMESTAMP
    )",
    "CREATE TABLE provenance (
        record_id INT PRIMARY KEY,
        job_id INT NOT NULL,
        executable TEXT,
        input_dataset TEXT,
        output_dataset TEXT,
        recorded TIMESTAMP
    )",
    "CREATE INDEX ON provenance (output_dataset)",
];

/// Names of every table created by [`DDL`], in creation order.
pub const TABLES: &[&str] = &[
    "users",
    "jobs",
    "machines",
    "matches",
    "runs",
    "job_history",
    "machine_history",
    "config",
    "provenance",
];

/// Deploys the schema into a database (idempotent: existing tables are kept).
pub fn deploy(db: &relstore::Database) -> relstore::Result<()> {
    let existing = db.table_names();
    for ddl in DDL {
        // Skip statements whose target table already exists.
        let target = ddl
            .split_whitespace()
            .skip_while(|w| !w.eq_ignore_ascii_case("TABLE") && !w.eq_ignore_ascii_case("ON"))
            .nth(1)
            .unwrap_or("")
            .trim_start_matches('(')
            .to_ascii_lowercase();
        let is_create_table = ddl.trim_start().to_ascii_uppercase().starts_with("CREATE TABLE");
        if is_create_table && existing.contains(&target) {
            continue;
        }
        if !is_create_table && existing.contains(&target) {
            // Index on a pre-existing table: assume it was created with it.
            continue;
        }
        db.execute(ddl)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Database;

    #[test]
    fn schema_deploys_all_tables() {
        let db = Database::new();
        deploy(&db).unwrap();
        let names = db.table_names();
        for table in TABLES {
            assert!(names.contains(&table.to_string()), "missing table {table}");
        }
        // Core tables start empty.
        assert_eq!(db.table_len("jobs").unwrap(), 0);
        assert_eq!(db.table_len("machines").unwrap(), 0);
    }

    #[test]
    fn deploy_is_idempotent() {
        let db = Database::new();
        deploy(&db).unwrap();
        db.execute("INSERT INTO jobs (job_id, owner, state) VALUES (1, 'alice', 'idle')")
            .unwrap();
        deploy(&db).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 1, "redeploy must not drop data");
    }

    #[test]
    fn schema_supports_the_matchmaking_join() {
        let db = Database::new();
        deploy(&db).unwrap();
        db.execute("INSERT INTO jobs (job_id, owner, state) VALUES (1, 'a', 'matched')").unwrap();
        db.execute("INSERT INTO machines (machine_id, name, state) VALUES (7, 'vm1@n', 'matched')")
            .unwrap();
        db.execute("INSERT INTO matches (match_id, job_id, machine_id) VALUES (1, 1, 7)").unwrap();
        let r = db
            .query(
                "SELECT jobs.job_id, machines.name FROM jobs \
                 JOIN matches ON jobs.job_id = matches.job_id \
                 JOIN machines ON matches.machine_id = machines.machine_id",
            )
            .unwrap();
        assert_eq!(r.len(), 1);
    }
}
