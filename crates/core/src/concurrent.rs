//! Multi-threaded read drivers for the service layer.
//!
//! Every CAS service call crosses the HTTP-to-SQL transformation, and the
//! read-heavy calls (heartbeats, pool-status queries, match lookups) are
//! SELECTs. With the storage engine's shared-lock read path those calls can
//! execute in parallel on as many cores as the host offers; this module
//! provides the harness that drives a shared [`Database`] from N OS threads
//! and measures aggregate throughput. It is used by the
//! `concurrent_reads` bench target and the multi-threaded consistency tests,
//! and doubles as the reference pattern for wiring real service threads to
//! one embedded database.

use relstore::{Database, IntoParams, Result};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Aggregate throughput measured by one [`drive_reads`] run.
#[derive(Debug, Clone, Copy)]
pub struct ReadThroughput {
    /// Number of reader threads that ran.
    pub threads: usize,
    /// Total statements executed across all threads.
    pub total_ops: u64,
    /// Wall-clock time from the moment all threads were released to the
    /// moment the last one finished.
    pub elapsed: Duration,
}

impl ReadThroughput {
    /// Aggregate statements per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Mean wall-clock nanoseconds per statement (per thread, not aggregate:
    /// with perfect scaling this stays flat as threads are added).
    pub fn nanos_per_op(&self) -> f64 {
        let per_thread = self.total_ops as f64 / self.threads.max(1) as f64;
        self.elapsed.as_nanos() as f64 / per_thread.max(1.0)
    }
}

/// Runs `iters_per_thread` executions of the prepared `sql` on each of
/// `threads` OS threads sharing one database, and reports aggregate
/// throughput.
///
/// The statement is prepared once, up front (so a malformed statement fails
/// fast instead of stranding the start barrier); the threads share the
/// prepared handle, wait on a barrier so they all start together, then bind
/// the typed tuple produced by `params(thread_index, iteration)` per call
/// (any [`IntoParams`] value works). Results are passed through
/// [`std::hint::black_box`] so the driver cannot optimise the reads away.
pub fn drive_reads<P: IntoParams>(
    db: &Database,
    threads: usize,
    iters_per_thread: u64,
    sql: &str,
    params: impl Fn(usize, u64) -> P + Sync,
) -> Result<ReadThroughput> {
    assert!(threads > 0, "drive_reads needs at least one thread");
    let stmt = db.prepare(sql)?;
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| -> Result<()> {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let barrier = &barrier;
            let params = &params;
            let stmt = stmt.clone();
            handles.push(s.spawn(move || -> Result<()> {
                barrier.wait();
                for i in 0..iters_per_thread {
                    let values = params(t, i).into_params();
                    std::hint::black_box(db.query_prepared(&stmt, &values)?);
                }
                Ok(())
            }));
        }
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            handle.join().expect("reader thread panicked")?;
        }
        elapsed = start.elapsed();
        Ok(())
    })?;
    Ok(ReadThroughput {
        threads,
        total_ops: threads as u64 * iters_per_thread,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_db(rows: i64) -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
        let ins = db.prepare("INSERT INTO jobs VALUES (?, 'idle')").unwrap();
        db.session()
            .execute_batch(&ins, (0..rows).map(|i| (i,)))
            .unwrap();
        db
    }

    #[test]
    fn drive_reads_executes_the_full_workload() {
        let db = jobs_db(100);
        let before = db.stats();
        let t = drive_reads(&db, 3, 50, "SELECT * FROM jobs WHERE job_id = ?", |t, i| {
            (((t as u64 * 37 + i) % 100) as i64,)
        })
        .unwrap();
        assert_eq!(t.total_ops, 150);
        assert!(t.ops_per_sec() > 0.0);
        assert!(t.nanos_per_op() > 0.0);
        let d = db.stats().delta_since(&before);
        assert!(d.statements_executed >= 150);
        assert!(d.index_lookups >= 150);
    }

    #[test]
    fn drive_reads_surfaces_query_errors() {
        let db = jobs_db(1);
        // Execution-time failure (unknown table is caught at query time).
        assert!(drive_reads(&db, 2, 1, "SELECT * FROM missing WHERE job_id = ?", |_, _| {
            (0i64,)
        })
        .is_err());
        // Prepare-time failure must error out, not strand the start barrier.
        assert!(drive_reads(&db, 2, 1, "SELEKT nope", |_, _| ()).is_err());
    }
}
