//! # condorj2 — turning cluster management into data management
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! CondorJ2 cluster management system, in which "an RDBMS provides improved
//! data accessibility, high concurrency, transaction and recovery services,
//! and an expressive query language over the operational data", a single
//! system-wide job repository replaces the stand-alone submit machines, and an
//! application server turns the pool's message traffic into SQL.
//!
//! * [`schema`] — the relational schema holding all operational state,
//! * [`cas`] — the CondorJ2 Application Server: coarse-grained services
//!   (submit, heartbeat, acceptMatch, queries, configuration, provenance)
//!   wrapping the fine-grained persistence layer, plus the SQL matchmaker,
//! * [`concurrent`] — multi-threaded read drivers: the harness that runs
//!   service-call SELECTs from N OS threads against the shared database
//!   (the engine's shared-lock read path makes them scale with cores),
//! * [`config`] — deployment parameters (poll intervals, pool sizing),
//! * [`pool`] — the event-driven simulation of a full pool: execute nodes
//!   *pull* work from the CAS over web services, the DB2-style maintenance
//!   task runs in the background, and CPU/throughput metrics are collected for
//!   the paper's figures.
//!
//! ```
//! use cluster_sim::{ClusterSpec, JobSpec, SimDuration, SimTime};
//! use condorj2::{CondorJ2Config, CondorJ2Simulation};
//!
//! let spec = ClusterSpec::uniform_fast(4, 2);
//! let mut pool = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 42);
//! pool.submit(JobSpec::fixed_batch(16, SimDuration::from_secs(60), "alice"));
//! pool.run_to_completion(SimTime::from_mins(30));
//! assert_eq!(pool.completed(), 16);
//! ```

#![warn(missing_docs)]

pub mod cas;
pub mod concurrent;
pub mod config;
pub mod pool;
pub mod schema;

pub use cas::{CasState, HeartbeatReply, HeartbeatReport, PoolStatus};
pub use concurrent::{drive_reads, ReadThroughput};
pub use config::CondorJ2Config;
pub use pool::{CondorJ2Report, CondorJ2Simulation};
