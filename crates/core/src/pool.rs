//! The CondorJ2 pool simulation: execute nodes pulling work from the CAS.
//!
//! [`CondorJ2Simulation`] wires the CAS (application container + database)
//! and the execute-node startds into the discrete-event engine. Execute nodes
//! always initiate the interaction — the pull model of Section 5.2.1 — by
//! invoking web services on the CAS; the CAS turns each message into SQL. The
//! simulation produces the measurements behind Figures 7–12 and Table 2.

use crate::cas::{register_services, CasState};
use crate::config::CondorJ2Config;
use appserver::{AppContainer, CostModel, ServiceRegistry, SoapRequest, SoapStatus};
use cluster_sim::{
    Cluster, ClusterSpec, CpuSample, EventCounter, EventQueue, InProgressTracker, JobSpec,
    NodeHealth, SimDuration, SimRng, SimTime, StartOutcome, TraceRecorder, VmId,
};
use relstore::OpStats;
use std::collections::HashMap;
use std::sync::Arc;

/// Events of the CondorJ2 simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// A startd contacts the CAS (heartbeat / poll).
    Poll { vm: VmId },
    /// The CAS matchmaking pass.
    SchedulerPass,
    /// A deferred batch submission.
    Submit { jobs: Vec<JobSpec> },
    /// Job setup finished on a node; the job begins executing.
    SetupDone { vm: VmId, job: i64 },
    /// Job setup timed out; the node dropped the job.
    DropDetected { vm: VmId, job: i64 },
    /// The job's runtime elapsed.
    JobFinished { vm: VmId, job: i64 },
    /// Starter teardown finished; the node returns to idle polling.
    TeardownDone { vm: VmId },
}

/// What a simulated execute node is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeActivity {
    Idle,
    SettingUp { job: i64 },
    Running { job: i64 },
    TearingDown,
}

/// Summary of one simulation run, consumed by the experiment harness.
#[derive(Debug, Clone)]
pub struct CondorJ2Report {
    /// Job completion events.
    pub completions: EventCounter,
    /// Jobs-in-progress series.
    pub in_progress: InProgressTracker,
    /// Server CPU samples (application server + DBMS host).
    pub server_cpu: Vec<CpuSample>,
    /// Five-minute rolling average of the server CPU samples (Figure 10).
    pub server_cpu_rolling: Vec<CpuSample>,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Job starts dropped by execute nodes.
    pub drops: u64,
    /// Distinct virtual machines that dropped at least one job.
    pub dropped_vms: usize,
    /// Distinct physical machines that dropped at least one job.
    pub dropped_phys: usize,
    /// Web-service requests handled by the CAS.
    pub requests_handled: u64,
    /// Matches created by the scheduling pass.
    pub matches_made: u64,
    /// Connection-pool high-water mark.
    pub pool_high_water: usize,
    /// Database operation statistics at the end of the run.
    pub db_stats: OpStats,
    /// Data-flow trace of the first job, when tracing was enabled.
    pub trace: Option<TraceRecorder>,
    /// Simulated time when the run stopped.
    pub finished_at: SimTime,
}

/// The CondorJ2 simulation.
pub struct CondorJ2Simulation {
    config: CondorJ2Config,
    cluster: Cluster,
    health: NodeHealth,
    rng: SimRng,
    container: AppContainer<CasState>,
    state: CasState,
    queue: EventQueue<Event>,
    activity: Vec<NodeActivity>,
    job_runtime: HashMap<i64, SimDuration>,
    completions: EventCounter,
    in_progress: InProgressTracker,
    submitted: u64,
    completed: u64,
    periodic_started: bool,
    trace: Option<TraceRecorder>,
    traced_job: Option<i64>,
    traced_vm: Option<VmId>,
}

impl CondorJ2Simulation {
    /// Builds a CondorJ2 pool over the given cluster specification. Every
    /// execute slot registers itself with the CAS at construction time.
    pub fn new(config: CondorJ2Config, cluster_spec: &ClusterSpec, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let cluster = cluster_spec.build(&mut rng);
        let db = Arc::new(relstore::Database::new());
        let mut registry = ServiceRegistry::new();
        register_services(&mut registry);
        let mut container = AppContainer::new(
            Arc::clone(&db),
            registry,
            CostModel::cas_server(),
            config.connection_pool_size,
            config.server_cores,
            config.cpu_sample_interval,
        );
        container.set_maintenance_interval(config.maintenance_interval);
        let mut state = CasState::new(db).expect("schema deployment cannot fail on a fresh db");

        // Machine registration: each startd announces itself (and its
        // reboot-time attributes) before the experiment begins.
        for vm in &cluster.vms {
            let phys = &cluster.physical[vm.phys.0 as usize];
            let request = SoapRequest::new("registerMachine")
                .with("machine_id", vm.id.0 as i64)
                .with("name", cluster.vm_name(vm.id))
                .with("speed", phys.speed.slowdown)
                .with("phys_id", phys.id.0 as i64)
                .with("memory_mb", 2048i64);
            let (resp, _) = container.handle(&mut state, SimTime::ZERO, &request);
            debug_assert!(resp.is_success());
        }

        let activity = vec![NodeActivity::Idle; cluster.vm_count()];
        CondorJ2Simulation {
            health: NodeHealth::new(config.failure_model),
            queue: EventQueue::new(),
            completions: EventCounter::new("condorj2 completions"),
            in_progress: InProgressTracker::new(),
            job_runtime: HashMap::new(),
            submitted: 0,
            completed: 0,
            periodic_started: false,
            trace: None,
            traced_job: None,
            traced_vm: None,
            config,
            cluster,
            rng,
            container,
            state,
            activity,
        }
    }

    /// Enables data-flow tracing of the first submitted job (Table 2).
    pub fn enable_tracing(&mut self) {
        self.trace = Some(TraceRecorder::new());
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Read access to the CAS state (pool status queries, config, history).
    pub fn cas(&self) -> &CasState {
        &self.state
    }

    /// Mutable access to the CAS state (used by examples to pose ad-hoc
    /// queries or adjust configuration mid-run).
    pub fn cas_mut(&mut self) -> &mut CasState {
        &mut self.state
    }

    /// Submits jobs immediately through the `submitJob` web service.
    pub fn submit(&mut self, jobs: Vec<JobSpec>) {
        self.ensure_periodic_events();
        let now = self.queue.now();
        self.do_submit(now, jobs);
    }

    /// Schedules a batch submission at an absolute simulated time.
    pub fn submit_at(&mut self, time: SimTime, jobs: Vec<JobSpec>) {
        self.ensure_periodic_events();
        self.queue.schedule(time, Event::Submit { jobs });
    }

    fn do_submit(&mut self, now: SimTime, jobs: Vec<JobSpec>) {
        self.state.now_ms = now.0 as i64;
        for spec in jobs {
            let request = SoapRequest::new("submitJob")
                .with("owner", spec.owner.clone())
                .with("runtime_ms", spec.runtime.as_millis() as i64)
                .with("count", 1i64);
            let (resp, _) = self.container.handle(&mut self.state, now, &request);
            if !resp.is_success() {
                continue;
            }
            let job_id = resp.field("first_job_id").as_int().unwrap_or(0);
            self.job_runtime.insert(job_id, spec.runtime);
            self.submitted += 1;
            if self.traced_job.is_none() {
                if let Some(trace) = &mut self.trace {
                    trace.record("user", "CAS", "User invokes submit job service on CAS");
                    trace.record("CAS", "database", "CAS inserts a job tuple into database");
                    self.traced_job = Some(job_id);
                }
            }
        }
    }

    fn ensure_periodic_events(&mut self) {
        if self.periodic_started {
            return;
        }
        self.periodic_started = true;
        // Stagger the startd polls so 10,000 machines do not all call in the
        // same millisecond; the paper's ramp-up staggers machine start-up for
        // the same reason.
        for vm in 0..self.cluster.vm_count() {
            let jitter = SimDuration::from_millis(
                self.rng.uniform_int(0, self.config.idle_poll_interval.as_millis().max(1)),
            );
            self.queue
                .schedule(SimTime::ZERO + jitter, Event::Poll { vm: VmId(vm as u32) });
        }
        self.queue
            .schedule(SimTime::ZERO + self.config.scheduler_interval, Event::SchedulerPass);
    }

    fn unfinished_jobs(&self) -> u64 {
        self.submitted.saturating_sub(self.completed)
    }

    /// Runs the simulation until simulated time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some((time, event)) = self.queue.pop_before(until) {
            self.dispatch(time, event);
        }
    }

    /// Runs until every submitted job has completed or `max_time` is reached.
    pub fn run_to_completion(&mut self, max_time: SimTime) -> SimTime {
        loop {
            if self.unfinished_jobs() == 0 {
                return self.queue.now();
            }
            match self.queue.pop_before(max_time) {
                Some((time, event)) => self.dispatch(time, event),
                None => return self.queue.now().min(max_time),
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        self.state.now_ms = now.0 as i64;
        match event {
            Event::Poll { vm } => self.handle_poll(now, vm),
            Event::SchedulerPass => self.handle_scheduler(now),
            Event::Submit { jobs } => self.do_submit(now, jobs),
            Event::SetupDone { vm, job } => self.handle_setup_done(now, vm, job),
            Event::DropDetected { vm, job } => self.handle_drop(now, vm, job),
            Event::JobFinished { vm, job } => self.handle_job_finished(now, vm, job),
            Event::TeardownDone { vm } => self.handle_teardown_done(now, vm),
        }
    }

    fn handle_poll(&mut self, now: SimTime, vm: VmId) {
        match self.activity[vm.0 as usize] {
            NodeActivity::Idle => {
                let request = SoapRequest::new("heartbeat")
                    .with("machine_id", vm.0 as i64)
                    .with("status", "idle");
                let trace_this = self.trace.is_some() && self.traced_vm.is_none();
                let (resp, _) = self.container.handle(&mut self.state, now, &request);
                if trace_this {
                    if let Some(trace) = &mut self.trace {
                        if trace.len() == 2 {
                            trace.record("startd", "CAS", "Startd invokes periodic heartbeat web service on CAS");
                            trace.record(
                                "CAS",
                                "database",
                                "CAS updates a machine tuple in the database, responds OK to startd",
                            );
                        }
                    }
                }
                if resp.status == SoapStatus::MatchInfo {
                    let job = resp.field("job_id").as_int().unwrap_or(0);
                    self.begin_claim(now, vm, job);
                } else {
                    self.queue
                        .schedule(now + self.config.idle_poll_interval, Event::Poll { vm });
                }
            }
            NodeActivity::Running { job } => {
                let request = SoapRequest::new("heartbeat")
                    .with("machine_id", vm.0 as i64)
                    .with("status", "running")
                    .with("job_id", job);
                let (_resp, _) = self.container.handle(&mut self.state, now, &request);
                if self.traced_job == Some(job) {
                    if let Some(trace) = &mut self.trace {
                        if trace.len() == 11 {
                            trace.record(
                                "startd",
                                "CAS",
                                "Startd invokes periodic heartbeat web service on CAS, includes job information from starter in SOAP message",
                            );
                            trace.record(
                                "CAS",
                                "database",
                                "CAS updates machine tuple, related job tuple in database, responds OK to startd",
                            );
                        }
                    }
                }
                self.queue
                    .schedule(now + self.config.running_heartbeat_interval, Event::Poll { vm });
            }
            // No polls while setting up or tearing down; the node calls back
            // when the local transition finishes.
            NodeActivity::SettingUp { .. } | NodeActivity::TearingDown => {}
        }
    }

    fn begin_claim(&mut self, now: SimTime, vm: VmId, job: i64) {
        if self.traced_job == Some(job) && self.traced_vm.is_none() {
            self.traced_vm = Some(vm);
            if let Some(trace) = &mut self.trace {
                trace.record("startd", "CAS", "Startd invokes periodic heartbeat web service on CAS");
                trace.record(
                    "CAS",
                    "database",
                    "CAS updates machine tuple in database, selects related match and job tuples, responds MATCHINFO to startd",
                );
            }
        }
        // The startd accepts the match before setting anything up.
        let request = SoapRequest::new("acceptMatch")
            .with("machine_id", vm.0 as i64)
            .with("job_id", job);
        let (resp, _) = self.container.handle(&mut self.state, now, &request);
        if self.traced_job == Some(job) {
            if let Some(trace) = &mut self.trace {
                if trace.len() == 8 {
                    trace.record("startd", "CAS", "Startd invokes acceptMatch web service on CAS");
                    trace.record(
                        "CAS",
                        "database",
                        "CAS deletes match tuple, inserts run tuple, updates related job tuple in the database, responds OK to startd",
                    );
                    trace.record("startd", "starter", "Startd spawns starter");
                }
            }
        }
        if !resp.is_success() {
            // The match disappeared (e.g. job removed); return to idle polling.
            self.queue
                .schedule(now + self.config.idle_poll_interval, Event::Poll { vm });
            return;
        }
        self.activity[vm.0 as usize] = NodeActivity::SettingUp { job };
        match self.health.try_start_job(&self.cluster, vm, &mut self.rng) {
            StartOutcome::Started { setup } => {
                self.queue.schedule(now + setup, Event::SetupDone { vm, job });
            }
            StartOutcome::Dropped { wasted } => {
                self.queue
                    .schedule(now + wasted, Event::DropDetected { vm, job });
            }
        }
    }

    fn handle_scheduler(&mut self, now: SimTime) {
        self.state.now_ms = now.0 as i64;
        let before = self.container.database().stats();
        let limit = if self.config.max_matches_per_pass == 0 {
            usize::MAX
        } else {
            self.config.max_matches_per_pass
        };
        let made = self.state.run_scheduler_limited(limit).unwrap_or(0);
        let cost = self.container.cost_of(&before);
        self.container.charge_background(now, "scheduler", cost);
        if made > 0 {
            if let Some(trace) = &mut self.trace {
                if trace.len() == 4 {
                    trace.record(
                        "CAS",
                        "database",
                        "CAS selects relevant machine tuples, job tuples from database for scheduling algorithm",
                    );
                    trace.record(
                        "CAS",
                        "database",
                        "CAS inserts match tuple, updates related job tuple in db",
                    );
                }
            }
        }
        if self.unfinished_jobs() > 0 || !self.queue.is_empty() {
            self.queue
                .schedule(now + self.config.scheduler_interval, Event::SchedulerPass);
        }
    }

    fn handle_setup_done(&mut self, now: SimTime, vm: VmId, job: i64) {
        self.health.finish_overhead(&self.cluster, vm);
        self.activity[vm.0 as usize] = NodeActivity::Running { job };
        self.in_progress.start(now);
        let runtime = self
            .job_runtime
            .get(&job)
            .copied()
            .unwrap_or(SimDuration::from_secs(60));
        self.queue.schedule(now + runtime, Event::JobFinished { vm, job });
        // First running heartbeat (carries the starter's job information).
        self.queue
            .schedule(now + self.config.running_heartbeat_interval, Event::Poll { vm });
    }

    fn handle_drop(&mut self, now: SimTime, vm: VmId, job: i64) {
        self.health.finish_overhead(&self.cluster, vm);
        // The startd reports the failure; the CAS requeues the job.
        let request = SoapRequest::new("heartbeat")
            .with("machine_id", vm.0 as i64)
            .with("status", "failed")
            .with("job_id", job);
        let (_resp, _) = self.container.handle(&mut self.state, now, &request);
        self.activity[vm.0 as usize] = NodeActivity::TearingDown;
        let teardown = self.health.teardown(&self.cluster, vm, &mut self.rng);
        self.queue.schedule(now + teardown, Event::TeardownDone { vm });
    }

    fn handle_job_finished(&mut self, now: SimTime, vm: VmId, job: i64) {
        self.in_progress.finish(now);
        let request = SoapRequest::new("heartbeat")
            .with("machine_id", vm.0 as i64)
            .with("status", "completed")
            .with("job_id", job);
        let (resp, _) = self.container.handle(&mut self.state, now, &request);
        if resp.is_success() {
            self.completed += 1;
            self.completions.record(now);
        }
        if self.traced_job == Some(job) {
            if let Some(trace) = &mut self.trace {
                if trace.len() == 13 {
                    trace.record(
                        "startd",
                        "CAS",
                        "Startd invokes periodic heartbeat web service on CAS, includes job completion information in SOAP message",
                    );
                    trace.record(
                        "CAS",
                        "database",
                        "CAS updates machine tuple, deletes related run and job tuples from database, responds OK to startd",
                    );
                }
            }
        }
        self.activity[vm.0 as usize] = NodeActivity::TearingDown;
        let teardown = self.health.teardown(&self.cluster, vm, &mut self.rng);
        self.queue.schedule(now + teardown, Event::TeardownDone { vm });
    }

    fn handle_teardown_done(&mut self, now: SimTime, vm: VmId) {
        self.health.finish_overhead(&self.cluster, vm);
        self.activity[vm.0 as usize] = NodeActivity::Idle;
        // Poll soon: the node advertises itself as idle and asks for work.
        self.queue
            .schedule(now + SimDuration::from_millis(500), Event::Poll { vm });
    }

    /// Produces the run report.
    pub fn report(&self) -> CondorJ2Report {
        CondorJ2Report {
            completions: self.completions.clone(),
            in_progress: self.in_progress.clone(),
            server_cpu: self.container.cpu_samples(),
            server_cpu_rolling: self.container.cpu_rolling(5),
            submitted: self.submitted,
            completed: self.completed,
            drops: self.health.total_drops(),
            dropped_vms: self.health.dropped_vm_count(),
            dropped_phys: self.health.dropped_phys_count(),
            requests_handled: self.container.requests_handled(),
            matches_made: self.state.matches_made,
            pool_high_water: self.container.pool_stats().high_water_mark,
            db_stats: self.container.database().stats(),
            trace: self.trace.clone(),
            finished_at: self.queue.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> CondorJ2Config {
        CondorJ2Config {
            idle_poll_interval: SimDuration::from_secs(2),
            scheduler_interval: SimDuration::from_secs(2),
            running_heartbeat_interval: SimDuration::from_secs(30),
            ..CondorJ2Config::default()
        }
    }

    #[test]
    fn completes_a_small_workload() {
        let spec = ClusterSpec::uniform_fast(5, 2);
        let mut sim = CondorJ2Simulation::new(fast_config(), &spec, 1);
        sim.submit(JobSpec::fixed_batch(20, SimDuration::from_secs(60), "alice"));
        let end = sim.run_to_completion(SimTime::from_mins(60));
        assert_eq!(sim.completed(), 20);
        let report = sim.report();
        assert_eq!(report.completed, 20);
        assert!(report.matches_made >= 20);
        assert!(report.requests_handled > 20);
        assert!(report.db_stats.commits > 0);
        assert!(end < SimTime::from_mins(10), "two waves of one-minute jobs: {end}");
        // All state for finished jobs moved to history.
        assert_eq!(sim.cas().database().table_len("jobs").unwrap(), 0);
        assert_eq!(sim.cas().database().table_len("job_history").unwrap(), 20);
        sim.cas().database().check_consistency().unwrap();
    }

    #[test]
    fn pull_model_keeps_all_nodes_busy() {
        let spec = ClusterSpec::uniform_fast(10, 1);
        let mut sim = CondorJ2Simulation::new(fast_config(), &spec, 2);
        sim.submit(JobSpec::fixed_batch(30, SimDuration::from_secs(120), "bob"));
        sim.run_until(SimTime::from_mins(1));
        let report = sim.report();
        // Within a minute every node should have pulled a job.
        assert_eq!(report.in_progress.peak(), 10);
    }

    #[test]
    fn trace_records_the_condorj2_data_flow() {
        let mut config = fast_config();
        config.idle_poll_interval = SimDuration::from_secs(1);
        config.scheduler_interval = SimDuration::from_secs(1);
        config.running_heartbeat_interval = SimDuration::from_secs(10);
        let spec = ClusterSpec::uniform_fast(1, 1);
        let mut sim = CondorJ2Simulation::new(config, &spec, 3);
        sim.enable_tracing();
        sim.submit(JobSpec::fixed_batch(1, SimDuration::from_secs(30), "carol"));
        sim.run_to_completion(SimTime::from_mins(10));
        let trace = sim.report().trace.expect("tracing enabled");
        assert_eq!(trace.len(), 15, "paper's Table 2 lists 15 steps:\n{}", trace.to_table("t"));
        // Five entities: user, CAS, database, startd, starter.
        assert_eq!(trace.entities().len(), 5, "{:?}", trace.entities());
        // Four communication channels (Section 4.2.3).
        assert_eq!(trace.channels().len(), 4, "{:?}", trace.channels());
    }

    #[test]
    fn dropped_jobs_are_requeued_and_eventually_finish() {
        // Slow P3 nodes churning through six-second jobs drop some of them,
        // but the CAS requeues each drop and the workload still completes —
        // the behaviour behind Figures 7 and 8.
        let spec = ClusterSpec {
            physical_machines: 4,
            vms_per_machine: 4,
            speed_mix: vec![(1.0, cluster_sim::SpeedClass::p3_single())],
        };
        let config = fast_config();
        let mut sim = CondorJ2Simulation::new(config, &spec, 4);
        sim.submit(JobSpec::fixed_batch(64, SimDuration::from_secs(6), "dave"));
        sim.run_to_completion(SimTime::from_mins(120));
        let report = sim.report();
        assert_eq!(report.completed, 64, "requeued jobs must finish eventually");
        assert!(report.drops > 0, "expected drops on slow oversubscribed nodes");
        assert!(report.dropped_vms > 0);
        assert_eq!(report.completed, report.submitted);
    }

    #[test]
    fn connection_pool_bounds_simultaneous_connections() {
        let spec = ClusterSpec::uniform_fast(20, 2);
        let mut sim = CondorJ2Simulation::new(fast_config(), &spec, 5);
        sim.submit(JobSpec::fixed_batch(80, SimDuration::from_secs(30), "erin"));
        sim.run_to_completion(SimTime::from_mins(60));
        let report = sim.report();
        assert!(report.pool_high_water <= 20, "pool bound respected");
        assert!(report.requests_handled > 100);
    }
}
