//! Physical and virtual execute machines.
//!
//! Both Condor and CondorJ2 schedule at the *virtual machine* level: every
//! physical machine is configured with some number of virtual machines (the
//! paper's experiments inflate this ratio — 4, 12 or 200 VMs per node — to
//! simulate clusters far larger than the 50 physical machines available).
//! Virtual machines here are purely a modelling abstraction, exactly as in the
//! paper: they do not imply separate OS instances.

use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifier of a physical machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysId(pub u32);

/// Identifier of a virtual machine (a schedulable slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

/// A hardware speed class for execute nodes.
///
/// `slowdown` scales job setup/teardown overheads: 1.0 is the reference
/// (a 3 GHz Xeon-class node), larger values are slower nodes. The paper's
/// test-bed was "a mix of single and dual processor 1 GHz P3 machines", which
/// is what made very short jobs drop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedClass {
    /// Human-readable name, e.g. `"p3-1ghz"`.
    pub name: String,
    /// Multiplier applied to per-job overheads on nodes of this class.
    pub slowdown: f64,
}

impl SpeedClass {
    /// A fast reference node.
    pub fn xeon() -> Self {
        SpeedClass {
            name: "xeon-3ghz".into(),
            slowdown: 1.0,
        }
    }

    /// A slow single-processor 1 GHz Pentium III node.
    pub fn p3_single() -> Self {
        SpeedClass {
            name: "p3-1ghz-single".into(),
            slowdown: 3.0,
        }
    }

    /// A slow dual-processor 1 GHz Pentium III node.
    pub fn p3_dual() -> Self {
        SpeedClass {
            name: "p3-1ghz-dual".into(),
            slowdown: 2.2,
        }
    }
}

/// A physical execute machine hosting one or more virtual machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalMachine {
    /// Identifier.
    pub id: PhysId,
    /// Host name, e.g. `"node017"`.
    pub name: String,
    /// Hardware speed class.
    pub speed: SpeedClass,
    /// Number of virtual machines configured on this node.
    pub vm_count: u32,
}

/// A virtual machine: one schedulable slot on a physical machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualMachine {
    /// Identifier of the slot.
    pub id: VmId,
    /// The physical machine hosting the slot.
    pub phys: PhysId,
    /// Slot ordinal on the physical machine (1-based, Condor style).
    pub slot: u32,
}

/// Description of a cluster to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of physical machines.
    pub physical_machines: u32,
    /// Virtual machines configured per physical machine.
    pub vms_per_machine: u32,
    /// Mix of speed classes as `(weight, class)`; weights need not sum to 1.
    pub speed_mix: Vec<(f64, SpeedClass)>,
}

impl ClusterSpec {
    /// The paper's test-bed shape: a mix of slow P3 nodes.
    pub fn paper_testbed(physical_machines: u32, vms_per_machine: u32) -> Self {
        ClusterSpec {
            physical_machines,
            vms_per_machine,
            speed_mix: vec![
                (0.5, SpeedClass::p3_single()),
                (0.4, SpeedClass::p3_dual()),
                (0.1, SpeedClass::xeon()),
            ],
        }
    }

    /// A uniform cluster of fast nodes (used to show drops disappear on
    /// "real" hardware, per the paper's discussion of Figure 8).
    pub fn uniform_fast(physical_machines: u32, vms_per_machine: u32) -> Self {
        ClusterSpec {
            physical_machines,
            vms_per_machine,
            speed_mix: vec![(1.0, SpeedClass::xeon())],
        }
    }

    /// Total virtual machines described by the spec.
    pub fn total_vms(&self) -> u32 {
        self.physical_machines * self.vms_per_machine
    }

    /// Materialises the cluster, assigning speed classes deterministically
    /// from `rng` according to the configured mix.
    pub fn build(&self, rng: &mut SimRng) -> Cluster {
        assert!(!self.speed_mix.is_empty(), "speed mix must not be empty");
        let total_weight: f64 = self.speed_mix.iter().map(|(w, _)| *w).sum();
        let mut physical = Vec::with_capacity(self.physical_machines as usize);
        let mut vms = Vec::with_capacity(self.total_vms() as usize);
        for p in 0..self.physical_machines {
            let mut pick = rng.uniform(0.0, total_weight);
            let mut speed = self.speed_mix[0].1.clone();
            for (w, class) in &self.speed_mix {
                if pick <= *w {
                    speed = class.clone();
                    break;
                }
                pick -= *w;
            }
            physical.push(PhysicalMachine {
                id: PhysId(p),
                name: format!("node{:03}", p + 1),
                speed,
                vm_count: self.vms_per_machine,
            });
            for s in 0..self.vms_per_machine {
                vms.push(VirtualMachine {
                    id: VmId(p * self.vms_per_machine + s),
                    phys: PhysId(p),
                    slot: s + 1,
                });
            }
        }
        Cluster { physical, vms }
    }
}

/// A materialised cluster of physical and virtual machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Physical machines.
    pub physical: Vec<PhysicalMachine>,
    /// Virtual machines, ordered by id.
    pub vms: Vec<VirtualMachine>,
}

impl Cluster {
    /// Number of virtual machines.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Number of physical machines.
    pub fn phys_count(&self) -> usize {
        self.physical.len()
    }

    /// The physical machine hosting `vm`.
    pub fn phys_of(&self, vm: VmId) -> &PhysicalMachine {
        let vm = &self.vms[vm.0 as usize];
        &self.physical[vm.phys.0 as usize]
    }

    /// The virtual machine with id `vm`.
    pub fn vm(&self, vm: VmId) -> &VirtualMachine {
        &self.vms[vm.0 as usize]
    }

    /// The Condor-style slot name of a virtual machine, e.g. `"vm2@node007"`.
    pub fn vm_name(&self, vm: VmId) -> String {
        let v = self.vm(vm);
        let p = &self.physical[v.phys.0 as usize];
        format!("vm{}@{}", v.slot, p.name)
    }
}

/// Per-job overhead parameters for execute nodes.
///
/// Setting up a job (spawning the starter, creating the execution sandbox,
/// transferring files) and tearing it down costs real time on the node; on
/// slow nodes under rapid turnover this overhead is what makes six-second jobs
/// time out and get dropped (Figures 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCosts {
    /// Base time to set up one job on a reference-speed node.
    pub setup_base: SimDuration,
    /// Base time to tear down one job on a reference-speed node.
    pub teardown_base: SimDuration,
    /// Additional multiplier per concurrently-overheaded VM on the same
    /// physical machine (models contention for the node's disk and CPU).
    pub contention_factor: f64,
    /// Random jitter applied to every overhead, as a fraction (0.1 = ±10 %).
    pub jitter: f64,
}

impl Default for NodeCosts {
    fn default() -> Self {
        NodeCosts {
            setup_base: SimDuration::from_millis(900),
            teardown_base: SimDuration::from_millis(600),
            contention_factor: 0.6,
            jitter: 0.15,
        }
    }
}

impl NodeCosts {
    /// Computes the setup (or teardown) duration for a job on a node of the
    /// given speed with `concurrent` other VMs on the same physical machine
    /// currently in setup/teardown.
    pub fn overhead(
        &self,
        base: SimDuration,
        speed: &SpeedClass,
        concurrent: u32,
        rng: &mut SimRng,
    ) -> SimDuration {
        let contention = 1.0 + self.contention_factor * concurrent as f64;
        let jitter = 1.0 + rng.uniform(-self.jitter, self.jitter);
        base.mul_f64(speed.slowdown * contention * jitter.max(0.0))
    }

    /// Setup duration under the given conditions.
    pub fn setup_time(&self, speed: &SpeedClass, concurrent: u32, rng: &mut SimRng) -> SimDuration {
        self.overhead(self.setup_base, speed, concurrent, rng)
    }

    /// Teardown duration under the given conditions.
    pub fn teardown_time(
        &self,
        speed: &SpeedClass,
        concurrent: u32,
        rng: &mut SimRng,
    ) -> SimDuration {
        self.overhead(self.teardown_base, speed, concurrent, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builds_expected_counts() {
        let spec = ClusterSpec::paper_testbed(45, 4);
        assert_eq!(spec.total_vms(), 180);
        let cluster = spec.build(&mut SimRng::new(7));
        assert_eq!(cluster.phys_count(), 45);
        assert_eq!(cluster.vm_count(), 180);
        // Every VM maps back to a valid physical machine.
        for vm in &cluster.vms {
            assert!(vm.phys.0 < 45);
        }
    }

    #[test]
    fn vm_lookup_and_names() {
        let cluster = ClusterSpec::uniform_fast(2, 3).build(&mut SimRng::new(1));
        assert_eq!(cluster.vm(VmId(4)).phys, PhysId(1));
        assert_eq!(cluster.vm(VmId(4)).slot, 2);
        assert_eq!(cluster.vm_name(VmId(0)), "vm1@node001");
        assert_eq!(cluster.phys_of(VmId(5)).name, "node002");
    }

    #[test]
    fn speed_mix_is_deterministic_for_a_seed() {
        let spec = ClusterSpec::paper_testbed(20, 2);
        let a = spec.build(&mut SimRng::new(42));
        let b = spec.build(&mut SimRng::new(42));
        assert_eq!(a, b);
        let c = spec.build(&mut SimRng::new(43));
        // Different seed, very likely a different assignment of classes.
        assert_eq!(c.phys_count(), 20);
    }

    #[test]
    fn uniform_fast_has_no_slow_nodes() {
        let cluster = ClusterSpec::uniform_fast(10, 4).build(&mut SimRng::new(3));
        assert!(cluster.physical.iter().all(|p| p.speed.slowdown == 1.0));
    }

    #[test]
    fn overhead_scales_with_speed_and_contention() {
        let costs = NodeCosts {
            jitter: 0.0,
            ..NodeCosts::default()
        };
        let mut rng = SimRng::new(1);
        let fast = costs.setup_time(&SpeedClass::xeon(), 0, &mut rng);
        let slow = costs.setup_time(&SpeedClass::p3_single(), 0, &mut rng);
        assert!(slow > fast);
        let contended = costs.setup_time(&SpeedClass::p3_single(), 3, &mut rng);
        assert!(contended > slow);
        let teardown = costs.teardown_time(&SpeedClass::xeon(), 0, &mut rng);
        assert!(teardown < fast || teardown.as_millis() <= costs.setup_base.as_millis());
    }
}
