//! Workload job descriptions shared by both cluster managers.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The description of one job as submitted by a user: how long it runs and who
/// owns it. Both the Condor baseline and CondorJ2 consume the same job specs
/// so experiments compare the two systems on identical workloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The job's execution time once started on a reference-speed node.
    pub runtime: SimDuration,
    /// The submitting user.
    pub owner: String,
}

impl JobSpec {
    /// Creates a job spec.
    pub fn new(runtime: SimDuration, owner: impl Into<String>) -> Self {
        JobSpec {
            runtime,
            owner: owner.into(),
        }
    }

    /// A batch of `count` identical fixed-length jobs, as used by the
    /// scheduling-throughput experiments.
    pub fn fixed_batch(count: usize, runtime: SimDuration, owner: &str) -> Vec<JobSpec> {
        (0..count).map(|_| JobSpec::new(runtime, owner)).collect()
    }

    /// The mixed workload of the paper's Section 5.1.3 / 5.2.3 experiments:
    /// `short_count` one-minute-class jobs plus `long_count` six-minute-class
    /// jobs (the actual durations are parameters so tests can scale down).
    pub fn mixed_batch(
        short_count: usize,
        short_runtime: SimDuration,
        long_count: usize,
        long_runtime: SimDuration,
        owner: &str,
    ) -> Vec<JobSpec> {
        let mut out = JobSpec::fixed_batch(short_count, short_runtime, owner);
        out.extend(JobSpec::fixed_batch(long_count, long_runtime, owner));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_expected_sizes_and_total_work() {
        let batch = JobSpec::fixed_batch(10, SimDuration::from_secs(60), "alice");
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|j| j.runtime == SimDuration::from_secs(60)));

        let mixed = JobSpec::mixed_batch(
            960,
            SimDuration::from_secs(60),
            240,
            SimDuration::from_mins(6),
            "bob",
        );
        assert_eq!(mixed.len(), 1200);
        let total_mins: u64 = mixed.iter().map(|j| j.runtime.as_millis() / 60_000).sum();
        // The paper's example: 960 one-minute + 240 six-minute jobs = 2,400 minutes.
        assert_eq!(total_mins, 2400);
    }
}
