//! CPU accounting for simulated server machines.
//!
//! The paper reports server load as the four `/proc`-style categories: IO
//! (cycles waiting for the disk), System (kernel mode), User (computation) and
//! Idle (spare capacity). [`CpuAccountant`] reproduces that accounting:
//! simulated work is *charged* to a category at a point in simulated time and
//! utilisation is reported per fixed-size bucket (the paper samples once a
//! minute) with optional rolling averages (Figure 10 uses five-minute rolling
//! averages).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The CPU cycle categories reported by the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuCategory {
    /// Cycles spent doing actual computation.
    User,
    /// Cycles spent executing in kernel mode.
    System,
    /// Cycles spent waiting for the disk.
    Io,
}

/// Utilisation of one sampling interval, as percentages that sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpuSample {
    /// Start of the interval.
    pub time: SimTime,
    /// Percentage of capacity spent in user mode.
    pub user: f64,
    /// Percentage of capacity spent in system mode.
    pub system: f64,
    /// Percentage of capacity spent waiting on IO.
    pub io: f64,
    /// Percentage of capacity left idle.
    pub idle: f64,
}

impl CpuSample {
    /// Total busy percentage (user + system + io).
    pub fn busy(&self) -> f64 {
        self.user + self.system + self.io
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    user_ms: f64,
    system_ms: f64,
    io_ms: f64,
}

impl Bucket {
    fn total(&self) -> f64 {
        self.user_ms + self.system_ms + self.io_ms
    }
    fn get_mut(&mut self, cat: CpuCategory) -> &mut f64 {
        match cat {
            CpuCategory::User => &mut self.user_ms,
            CpuCategory::System => &mut self.system_ms,
            CpuCategory::Io => &mut self.io_ms,
        }
    }
}

/// Tracks CPU work charged against a simulated machine with a fixed number of
/// cores, bucketed into fixed sampling intervals.
///
/// Work that would exceed a bucket's capacity spills into subsequent buckets,
/// which is how a saturated single-threaded schedd shows up as a flat 100 %
/// line while its backlog grows (Figure 14).
#[derive(Debug, Clone)]
pub struct CpuAccountant {
    cores: f64,
    bucket: SimDuration,
    buckets: Vec<Bucket>,
}

impl CpuAccountant {
    /// Creates an accountant for a machine with `cores` cores, sampling
    /// utilisation over intervals of length `bucket`.
    pub fn new(cores: u32, bucket: SimDuration) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        assert!(bucket.as_millis() > 0, "sampling bucket must be non-empty");
        CpuAccountant {
            cores: cores as f64,
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Number of cores of the simulated machine.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// The sampling interval.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    fn bucket_capacity_ms(&self) -> f64 {
        self.bucket.as_millis() as f64 * self.cores
    }

    fn ensure_bucket(&mut self, index: usize) {
        if self.buckets.len() <= index {
            self.buckets.resize(index + 1, Bucket::default());
        }
    }

    /// Charges `amount` of CPU time of `category` starting at `time`.
    /// Work beyond the containing interval's remaining capacity spills into
    /// later intervals (the machine is saturated).
    pub fn charge(&mut self, time: SimTime, category: CpuCategory, amount: SimDuration) {
        let mut remaining = amount.as_millis() as f64;
        if remaining <= 0.0 {
            return;
        }
        let capacity = self.bucket_capacity_ms();
        let mut index = (time.0 / self.bucket.as_millis()) as usize;
        while remaining > 0.0 {
            self.ensure_bucket(index);
            let used = self.buckets[index].total();
            let free = (capacity - used).max(0.0);
            let take = remaining.min(free.max(0.0));
            if take > 0.0 {
                *self.buckets[index].get_mut(category) += take;
                remaining -= take;
            }
            if remaining > 0.0 {
                index += 1;
                // Guard against pathological unbounded spill.
                if index > self.buckets.len() + 1_000_000 {
                    *self.buckets.last_mut().unwrap().get_mut(category) += remaining;
                    break;
                }
            }
        }
    }

    /// Total CPU milliseconds charged to each category so far.
    pub fn totals(&self) -> (f64, f64, f64) {
        let mut t = (0.0, 0.0, 0.0);
        for b in &self.buckets {
            t.0 += b.user_ms;
            t.1 += b.system_ms;
            t.2 += b.io_ms;
        }
        t
    }

    /// Per-interval utilisation samples, one per bucket from time zero to the
    /// latest charged interval.
    pub fn samples(&self) -> Vec<CpuSample> {
        let capacity = self.bucket_capacity_ms();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let user = 100.0 * b.user_ms / capacity;
                let system = 100.0 * b.system_ms / capacity;
                let io = 100.0 * b.io_ms / capacity;
                CpuSample {
                    time: SimTime(i as u64 * self.bucket.as_millis()),
                    user,
                    system,
                    io,
                    idle: (100.0 - user - system - io).max(0.0),
                }
            })
            .collect()
    }

    /// Rolling average of the per-interval samples over `window` intervals
    /// (the paper's Figure 10 plots five-minute rolling averages of one-minute
    /// samples).
    pub fn rolling_samples(&self, window: usize) -> Vec<CpuSample> {
        let samples = self.samples();
        if window <= 1 || samples.is_empty() {
            return samples;
        }
        let mut out = Vec::with_capacity(samples.len());
        for i in 0..samples.len() {
            let lo = i.saturating_sub(window - 1);
            let slice = &samples[lo..=i];
            let n = slice.len() as f64;
            let user = slice.iter().map(|s| s.user).sum::<f64>() / n;
            let system = slice.iter().map(|s| s.system).sum::<f64>() / n;
            let io = slice.iter().map(|s| s.io).sum::<f64>() / n;
            out.push(CpuSample {
                time: samples[i].time,
                user,
                system,
                io,
                idle: (100.0 - user - system - io).max(0.0),
            });
        }
        out
    }

    /// Mean utilisation over the interval `[from, to)`, as one sample.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> CpuSample {
        let samples = self.samples();
        let selected: Vec<&CpuSample> = samples
            .iter()
            .filter(|s| s.time >= from && s.time < to)
            .collect();
        if selected.is_empty() {
            return CpuSample {
                time: from,
                idle: 100.0,
                ..Default::default()
            };
        }
        let n = selected.len() as f64;
        let user = selected.iter().map(|s| s.user).sum::<f64>() / n;
        let system = selected.iter().map(|s| s.system).sum::<f64>() / n;
        let io = selected.iter().map(|s| s.io).sum::<f64>() / n;
        CpuSample {
            time: from,
            user,
            system,
            io,
            idle: (100.0 - user - system - io).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct() -> CpuAccountant {
        CpuAccountant::new(4, SimDuration::from_secs(60))
    }

    #[test]
    fn charges_land_in_the_right_bucket() {
        let mut a = acct();
        a.charge(SimTime::from_secs(30), CpuCategory::User, SimDuration::from_secs(24));
        a.charge(SimTime::from_secs(90), CpuCategory::Io, SimDuration::from_secs(12));
        let samples = a.samples();
        assert_eq!(samples.len(), 2);
        // 24 s of user work against 240 s of capacity = 10 %.
        assert!((samples[0].user - 10.0).abs() < 1e-9);
        assert!((samples[0].idle - 90.0).abs() < 1e-9);
        assert!((samples[1].io - 5.0).abs() < 1e-9);
        assert!((samples[1].busy() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_spills_into_later_buckets() {
        let mut a = CpuAccountant::new(1, SimDuration::from_secs(60));
        // 90 seconds of work charged at t=0 on a 1-core machine: the first
        // minute saturates and the remainder lands in the second minute.
        a.charge(SimTime::ZERO, CpuCategory::User, SimDuration::from_secs(90));
        let samples = a.samples();
        assert_eq!(samples.len(), 2);
        assert!((samples[0].user - 100.0).abs() < 1e-9);
        assert!((samples[0].idle - 0.0).abs() < 1e-9);
        assert!((samples[1].user - 50.0).abs() < 1e-9);
    }

    #[test]
    fn totals_accumulate() {
        let mut a = acct();
        a.charge(SimTime::ZERO, CpuCategory::User, SimDuration::from_millis(100));
        a.charge(SimTime::ZERO, CpuCategory::System, SimDuration::from_millis(50));
        a.charge(SimTime::ZERO, CpuCategory::Io, SimDuration::from_millis(25));
        let (u, s, i) = a.totals();
        assert_eq!((u, s, i), (100.0, 50.0, 25.0));
    }

    #[test]
    fn rolling_average_smooths() {
        let mut a = CpuAccountant::new(1, SimDuration::from_secs(60));
        a.charge(SimTime::from_secs(0), CpuCategory::User, SimDuration::from_secs(60));
        a.charge(SimTime::from_secs(60), CpuCategory::User, SimDuration::ZERO);
        a.charge(SimTime::from_secs(120), CpuCategory::User, SimDuration::from_secs(30));
        let rolled = a.rolling_samples(3);
        assert_eq!(rolled.len(), 3);
        // Final sample averages 100 %, 0 %, 50 %.
        assert!((rolled[2].user - 50.0).abs() < 1e-9);
        // Window of 1 is a no-op.
        assert_eq!(a.rolling_samples(1).len(), 3);
    }

    #[test]
    fn mean_between_selects_interval() {
        let mut a = acct();
        a.charge(SimTime::from_secs(0), CpuCategory::User, SimDuration::from_secs(24));
        a.charge(SimTime::from_secs(60), CpuCategory::User, SimDuration::from_secs(48));
        let m = a.mean_between(SimTime::from_secs(0), SimTime::from_secs(120));
        assert!((m.user - 15.0).abs() < 1e-9);
        let empty = a.mean_between(SimTime::from_secs(600), SimTime::from_secs(660));
        assert!((empty.idle - 100.0).abs() < 1e-9);
    }
}
