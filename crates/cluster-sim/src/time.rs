//! Simulated time.
//!
//! All experiments run in virtual time so a "10,000-machine, 8-hour" run
//! (Figure 10 of the paper) completes in seconds of wall-clock time and is
//! perfectly reproducible. Time is kept in whole milliseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in milliseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Builds a time from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// This time expressed in (truncated) whole seconds.
    pub fn as_secs(&self) -> u64 {
        self.0 / 1000
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This time expressed in fractional minutes.
    pub fn as_mins_f64(&self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Builds a duration from fractional seconds (rounded to milliseconds).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1000.0).round() as u64)
    }

    /// Builds a duration from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This duration in whole milliseconds.
    pub fn as_millis(&self) -> u64 {
        self.0
    }

    /// Scales the duration by a factor (used by machine speed classes).
    pub fn mul_f64(&self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2), SimTime(2000));
        assert_eq!(SimTime::from_mins(3), SimTime(180_000));
        assert_eq!(SimTime(2500).as_secs(), 2);
        assert!((SimTime(2500).as_secs_f64() - 2.5).abs() < 1e-9);
        assert!((SimTime::from_mins(6).as_mins_f64() - 6.0).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1500));
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration(0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(12), SimDuration::from_secs(3));
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(5), SimDuration::ZERO);
        assert_eq!(
            SimTime::from_secs(8).since(SimTime::from_secs(3)),
            SimDuration::from_secs(5)
        );
        let mut d = SimDuration::from_secs(1);
        d += SimDuration::from_millis(500);
        assert_eq!(d, SimDuration(1500));
        assert_eq!(d.mul_f64(2.0), SimDuration(3000));
        assert_eq!(d.saturating_sub(SimDuration::from_secs(10)), SimDuration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(2).to_string(), "t+2.000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
