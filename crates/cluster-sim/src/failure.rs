//! Execute-node failure model and drop tracking.
//!
//! The paper observes (Figures 7 and 8) that for very short jobs the execute
//! nodes, not the server, limit throughput: "setting up and tearing down the
//! environment for running jobs at the rate of four jobs every six seconds is
//! not sustainable for our test-bed nodes", producing "timeout" errors and
//! dropped jobs. This module models that: a job start whose computed setup
//! overhead exceeds the node's timeout is *dropped*, and the tracker records
//! which virtual and physical nodes ever dropped a job (the two bar series of
//! Figure 8).

use crate::machine::{Cluster, NodeCosts, PhysId, VmId};
use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Outcome of attempting to start (or finish) a job on a virtual machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartOutcome {
    /// The job environment was set up successfully after the given overhead.
    Started {
        /// Time spent setting up before the job's own runtime begins.
        setup: SimDuration,
    },
    /// The node timed out setting up the job; the job was dropped.
    Dropped {
        /// Time wasted before the node gave up.
        wasted: SimDuration,
    },
}

impl StartOutcome {
    /// True when the job was dropped.
    pub fn is_dropped(&self) -> bool {
        matches!(self, StartOutcome::Dropped { .. })
    }
}

/// Configuration of the node failure model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-job overhead parameters.
    pub costs: NodeCosts,
    /// Setup longer than this times out and drops the job.
    pub setup_timeout: SimDuration,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            costs: NodeCosts::default(),
            setup_timeout: SimDuration::from_secs(8),
        }
    }
}

/// Tracks node overhead activity and job drops across a cluster.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    model: FailureModel,
    /// Number of VMs per physical machine currently in setup/teardown.
    overheads_in_progress: HashMap<PhysId, u32>,
    dropped_vms: BTreeSet<VmId>,
    dropped_phys: BTreeSet<PhysId>,
    total_drops: u64,
    total_starts: u64,
}

impl NodeHealth {
    /// Creates a tracker with the given failure model.
    pub fn new(model: FailureModel) -> Self {
        NodeHealth {
            model,
            overheads_in_progress: HashMap::new(),
            dropped_vms: BTreeSet::new(),
            dropped_phys: BTreeSet::new(),
            total_drops: 0,
            total_starts: 0,
        }
    }

    /// The configured failure model.
    pub fn model(&self) -> &FailureModel {
        &self.model
    }

    /// Attempts to start a job on `vm`. Marks the start of setup overhead on
    /// the hosting physical machine; the caller must call
    /// [`NodeHealth::finish_overhead`] when the setup (or drop) completes.
    pub fn try_start_job(&mut self, cluster: &Cluster, vm: VmId, rng: &mut SimRng) -> StartOutcome {
        let phys = cluster.phys_of(vm);
        let concurrent = *self.overheads_in_progress.get(&phys.id).unwrap_or(&0);
        *self.overheads_in_progress.entry(phys.id).or_insert(0) += 1;
        self.total_starts += 1;
        let setup = self.model.costs.setup_time(&phys.speed, concurrent, rng);
        if setup > self.model.setup_timeout {
            self.total_drops += 1;
            self.dropped_vms.insert(vm);
            self.dropped_phys.insert(phys.id);
            StartOutcome::Dropped {
                wasted: self.model.setup_timeout,
            }
        } else {
            StartOutcome::Started { setup }
        }
    }

    /// Computes the teardown overhead for a job completing on `vm` and marks
    /// the teardown as in progress (also finished via `finish_overhead`).
    pub fn teardown(&mut self, cluster: &Cluster, vm: VmId, rng: &mut SimRng) -> SimDuration {
        let phys = cluster.phys_of(vm);
        let concurrent = *self.overheads_in_progress.get(&phys.id).unwrap_or(&0);
        *self.overheads_in_progress.entry(phys.id).or_insert(0) += 1;
        self.model.costs.teardown_time(&phys.speed, concurrent, rng)
    }

    /// Marks one setup/teardown on the physical machine hosting `vm` as done.
    pub fn finish_overhead(&mut self, cluster: &Cluster, vm: VmId) {
        let phys = cluster.phys_of(vm);
        if let Some(count) = self.overheads_in_progress.get_mut(&phys.id) {
            *count = count.saturating_sub(1);
        }
    }

    /// Number of distinct virtual machines that dropped at least one job.
    pub fn dropped_vm_count(&self) -> usize {
        self.dropped_vms.len()
    }

    /// Number of distinct physical machines that dropped at least one job.
    pub fn dropped_phys_count(&self) -> usize {
        self.dropped_phys.len()
    }

    /// Total number of dropped job starts.
    pub fn total_drops(&self) -> u64 {
        self.total_drops
    }

    /// Total number of attempted job starts.
    pub fn total_starts(&self) -> u64 {
        self.total_starts
    }

    /// The set of virtual machines that dropped at least one job.
    pub fn dropped_vms(&self) -> &BTreeSet<VmId> {
        &self.dropped_vms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ClusterSpec;

    #[test]
    fn fast_idle_nodes_do_not_drop() {
        let cluster = ClusterSpec::uniform_fast(5, 1).build(&mut SimRng::new(1));
        let mut health = NodeHealth::new(FailureModel::default());
        let mut rng = SimRng::new(2);
        for vm in 0..5 {
            let outcome = health.try_start_job(&cluster, VmId(vm), &mut rng);
            assert!(!outcome.is_dropped());
            health.finish_overhead(&cluster, VmId(vm));
        }
        assert_eq!(health.total_drops(), 0);
        assert_eq!(health.dropped_vm_count(), 0);
        assert_eq!(health.total_starts(), 5);
    }

    #[test]
    fn slow_contended_nodes_drop_jobs() {
        // One slow physical machine with many VMs all starting at once: the
        // contention multiplier pushes setup past the timeout.
        let spec = ClusterSpec {
            physical_machines: 1,
            vms_per_machine: 16,
            speed_mix: vec![(1.0, crate::machine::SpeedClass::p3_single())],
        };
        let cluster = spec.build(&mut SimRng::new(1));
        let model = FailureModel {
            setup_timeout: SimDuration::from_secs(5),
            ..FailureModel::default()
        };
        let mut health = NodeHealth::new(model);
        let mut rng = SimRng::new(2);
        let mut dropped = 0;
        for vm in 0..16 {
            if health.try_start_job(&cluster, VmId(vm), &mut rng).is_dropped() {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "expected at least one drop under heavy contention");
        assert_eq!(health.total_drops(), dropped);
        assert_eq!(health.dropped_phys_count(), 1);
        assert!(health.dropped_vm_count() as u64 <= health.total_drops());
    }

    #[test]
    fn finish_overhead_reduces_contention() {
        let cluster = ClusterSpec::uniform_fast(1, 4).build(&mut SimRng::new(1));
        let mut health = NodeHealth::new(FailureModel::default());
        let mut rng = SimRng::new(3);
        let a = health.try_start_job(&cluster, VmId(0), &mut rng);
        health.finish_overhead(&cluster, VmId(0));
        let b = health.try_start_job(&cluster, VmId(1), &mut rng);
        // Both succeed on fast nodes; the second saw no extra contention.
        assert!(!a.is_dropped() && !b.is_dropped());
    }

    #[test]
    fn teardown_returns_positive_overhead() {
        let cluster = ClusterSpec::uniform_fast(1, 1).build(&mut SimRng::new(1));
        let mut health = NodeHealth::new(FailureModel::default());
        let mut rng = SimRng::new(3);
        let td = health.teardown(&cluster, VmId(0), &mut rng);
        assert!(td.as_millis() > 0);
        health.finish_overhead(&cluster, VmId(0));
    }
}
