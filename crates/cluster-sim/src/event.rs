//! A deterministic discrete-event queue.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in the event queue: events fire in timestamp order, with ties
/// broken by insertion order so runs are fully deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue over an arbitrary payload type.
///
/// Both cluster managers in the reproduction (the Condor daemons and the
/// CondorJ2 CAS/startd interaction) are expressed as event-driven state
/// machines over their own event enums; this queue supplies the ordering.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `payload` at absolute time `time`. Scheduling in the past is
    /// clamped to the current time (the event fires "immediately").
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(Scheduled { time, seq, payload }));
    }

    /// Schedules `payload` at `delay` after the current time.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(next) = self.heap.pop()?;
        self.now = next.time;
        Some((next.time, next.payload))
    }

    /// Pops the next event only if it fires at or before `horizon`.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(Reverse(next)) if next.time <= horizon => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(1), 2);
        q.schedule(SimTime::from_secs(1), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.pop();
        // Scheduling in the past is clamped to now.
        q.schedule(SimTime::from_secs(1), "early");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
    }

    #[test]
    fn schedule_after_and_horizon() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_secs(2), "a");
        q.schedule_after(SimDuration::from_secs(10), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert!(q.pop_before(SimTime::from_secs(1)).is_none());
        assert_eq!(q.pop_before(SimTime::from_secs(5)).unwrap().1, "a");
        assert!(q.pop_before(SimTime::from_secs(5)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
