//! Time-series and throughput metrics used by the experiments.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A time series of `(time, value)` points.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Series name (used as the column header in reports).
    pub name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point. Points should be appended in time order.
    pub fn push(&mut self, time: SimTime, value: f64) {
        self.points.push((time, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The maximum value, or `None` for an empty series.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|(_, v)| *v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// The mean value, or `None` for an empty series.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|(_, v)| *v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Mean of the values whose timestamps fall in `[from, to)`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Records discrete events (e.g. job completions) and reports event rates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventCounter {
    /// Counter name.
    pub name: String,
    times: Vec<SimTime>,
}

impl EventCounter {
    /// Creates an empty named counter.
    pub fn new(name: impl Into<String>) -> Self {
        EventCounter {
            name: name.into(),
            times: Vec::new(),
        }
    }

    /// Records one event at `time`.
    pub fn record(&mut self, time: SimTime) {
        self.times.push(time);
    }

    /// Total number of events recorded.
    pub fn count(&self) -> usize {
        self.times.len()
    }

    /// The time of the last event, if any.
    pub fn last(&self) -> Option<SimTime> {
        self.times.iter().copied().max()
    }

    /// Events per second over `[from, to)`; zero when the window is empty.
    pub fn rate_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let n = self
            .times
            .iter()
            .filter(|t| **t >= from && **t < to)
            .count();
        n as f64 / (to - from).as_secs_f64()
    }

    /// Counts events per fixed bucket from time zero to the latest event,
    /// returning `(bucket_start, count)` pairs. Used for Figures 12, 15, 16.
    pub fn per_bucket(&self, bucket: SimDuration) -> Vec<(SimTime, u64)> {
        let Some(last) = self.last() else {
            return Vec::new();
        };
        let bucket_ms = bucket.as_millis().max(1);
        let buckets = (last.0 / bucket_ms) as usize + 1;
        let mut counts = vec![0u64; buckets];
        for t in &self.times {
            counts[(t.0 / bucket_ms) as usize] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (SimTime(i as u64 * bucket_ms), c))
            .collect()
    }

    /// The steady-state event rate: events per second between the `trim`
    /// fraction and `1 - trim` fraction of the observation span. The paper
    /// computes average scheduling throughput "excluding the ramp up and ramp
    /// down time"; this is the same idea.
    pub fn steady_rate(&self, trim: f64) -> f64 {
        if self.times.len() < 2 {
            return 0.0;
        }
        let first = self.times.iter().copied().min().unwrap_or(SimTime::ZERO);
        let last = self.times.iter().copied().max().unwrap_or(SimTime::ZERO);
        let span = (last - first).as_millis() as f64;
        if span <= 0.0 {
            return 0.0;
        }
        let lo = SimTime(first.0 + (span * trim) as u64);
        let hi = SimTime(first.0 + (span * (1.0 - trim)) as u64);
        self.rate_between(lo, hi)
    }
}

/// Tracks the number of jobs in progress over time (Figures 11, 15, 16).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InProgressTracker {
    current: i64,
    series: Vec<(SimTime, i64)>,
}

impl InProgressTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        InProgressTracker::default()
    }

    /// Records a job start at `time`.
    pub fn start(&mut self, time: SimTime) {
        self.current += 1;
        self.series.push((time, self.current));
    }

    /// Records a job completion at `time`.
    pub fn finish(&mut self, time: SimTime) {
        self.current -= 1;
        self.series.push((time, self.current));
    }

    /// The number of jobs currently in progress.
    pub fn current(&self) -> i64 {
        self.current
    }

    /// The peak number of jobs in progress.
    pub fn peak(&self) -> i64 {
        self.series.iter().map(|(_, v)| *v).max().unwrap_or(0)
    }

    /// Samples the series at fixed intervals, carrying the last value forward
    /// (a step function sampled once per bucket, as the paper's plots do).
    pub fn sampled(&self, bucket: SimDuration, until: SimTime) -> Vec<(SimTime, i64)> {
        let bucket_ms = bucket.as_millis().max(1);
        let mut out = Vec::new();
        let mut idx = 0usize;
        let mut last = 0i64;
        let mut t = 0u64;
        while t <= until.0 {
            while idx < self.series.len() && self.series[idx].0 .0 <= t {
                last = self.series[idx].1;
                idx += 1;
            }
            out.push((SimTime(t), last));
            t += bucket_ms;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_statistics() {
        let mut s = TimeSeries::new("cpu");
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        s.push(SimTime::from_secs(0), 10.0);
        s.push(SimTime::from_secs(60), 30.0);
        s.push(SimTime::from_secs(120), 20.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), Some(30.0));
        assert_eq!(s.mean(), Some(20.0));
        assert_eq!(
            s.mean_between(SimTime::from_secs(30), SimTime::from_secs(130)),
            Some(25.0)
        );
        assert_eq!(
            s.mean_between(SimTime::from_secs(500), SimTime::from_secs(600)),
            None
        );
    }

    #[test]
    fn event_counter_rates() {
        let mut c = EventCounter::new("completions");
        for i in 0..100 {
            c.record(SimTime::from_secs(i));
        }
        assert_eq!(c.count(), 100);
        assert_eq!(c.last(), Some(SimTime::from_secs(99)));
        // One event per second over the middle of the run.
        let r = c.rate_between(SimTime::from_secs(10), SimTime::from_secs(90));
        assert!((r - 1.0).abs() < 0.05);
        let steady = c.steady_rate(0.1);
        assert!((steady - 1.0).abs() < 0.1);
        assert_eq!(EventCounter::new("x").steady_rate(0.1), 0.0);
    }

    #[test]
    fn per_bucket_counts() {
        let mut c = EventCounter::new("jobs");
        c.record(SimTime::from_secs(10));
        c.record(SimTime::from_secs(20));
        c.record(SimTime::from_secs(70));
        let buckets = c.per_bucket(SimDuration::from_secs(60));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1, 2);
        assert_eq!(buckets[1].1, 1);
        assert!(EventCounter::new("y").per_bucket(SimDuration::from_secs(60)).is_empty());
    }

    #[test]
    fn in_progress_tracking_and_sampling() {
        let mut t = InProgressTracker::new();
        t.start(SimTime::from_secs(10));
        t.start(SimTime::from_secs(20));
        t.finish(SimTime::from_secs(90));
        assert_eq!(t.current(), 1);
        assert_eq!(t.peak(), 2);
        let sampled = t.sampled(SimDuration::from_secs(60), SimTime::from_secs(120));
        assert_eq!(sampled.len(), 3);
        assert_eq!(sampled[0].1, 0);
        assert_eq!(sampled[1].1, 2);
        assert_eq!(sampled[2].1, 1);
    }
}
