//! Communication-flow tracing.
//!
//! Section 4.2 of the paper walks one job through each system and counts the
//! distinct entities and communication channels involved: Condor needs ten
//! channels between seven entities (Table 1 / Figure 5), CondorJ2 needs four
//! channels between five entities (Table 2 / Figure 6). The [`TraceRecorder`]
//! captures those step lists from the running implementations so the benches
//! can regenerate both tables and the channel/entity counts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One step in a data-flow trace: a message or action from one entity to
/// another (or a local action when `from == to`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// 1-based step number.
    pub step: usize,
    /// The acting entity (e.g. `"schedd"`, `"CAS"`, `"user"`).
    pub from: String,
    /// The entity acted upon or messaged (may equal `from` for local actions).
    pub to: String,
    /// Human-readable description, mirroring the paper's table rows.
    pub description: String,
}

/// Records the data-flow steps of one job's trip through a cluster manager.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecorder {
    steps: Vec<TraceStep>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records a step from `from` to `to` with a description.
    pub fn record(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        description: impl Into<String>,
    ) {
        let step = self.steps.len() + 1;
        self.steps.push(TraceStep {
            step,
            from: from.into(),
            to: to.into(),
            description: description.into(),
        });
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The set of distinct entities that appear in the trace.
    pub fn entities(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        for s in &self.steps {
            set.insert(s.from.clone());
            set.insert(s.to.clone());
        }
        set
    }

    /// The set of distinct communication channels (unordered entity pairs,
    /// excluding local actions where `from == to`).
    pub fn channels(&self) -> BTreeSet<(String, String)> {
        let mut set = BTreeSet::new();
        for s in &self.steps {
            if s.from == s.to {
                continue;
            }
            let (a, b) = if s.from <= s.to {
                (s.from.clone(), s.to.clone())
            } else {
                (s.to.clone(), s.from.clone())
            };
            set.insert((a, b));
        }
        set
    }

    /// Renders the trace as a table in the style of the paper's Tables 1 and 2.
    pub fn to_table(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(out, "{:>4}  Description", "Step");
        let _ = writeln!(out, "{:->4}  {:-<60}", "", "");
        for s in &self.steps {
            let _ = writeln!(out, "{:>4}  {}", s.step, s.description);
        }
        let _ = writeln!(
            out,
            "\nDistinct entities: {}   Communication channels: {}",
            self.entities().len(),
            self.channels().len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new();
        t.record("user", "schedd", "User submits job to schedd");
        t.record("schedd", "collector", "Schedd sends job queue summary to collector");
        t.record("collector", "negotiator", "Collector forwards data to negotiator");
        t.record("schedd", "schedd", "Schedd logs job to disk");
        t.record("negotiator", "schedd", "Negotiator informs schedd of match");
        t
    }

    #[test]
    fn steps_are_numbered_in_order() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.steps()[0].step, 1);
        assert_eq!(t.steps()[4].step, 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn entities_and_channels_are_deduplicated() {
        let t = sample();
        let entities = t.entities();
        assert_eq!(entities.len(), 4); // user, schedd, collector, negotiator
        let channels = t.channels();
        // user-schedd, schedd-collector, collector-negotiator, negotiator-schedd.
        assert_eq!(channels.len(), 4);
        // The local log-to-disk step creates no channel.
        assert!(!channels.contains(&("schedd".into(), "schedd".into())));
    }

    #[test]
    fn channel_pairs_are_unordered() {
        let mut t = TraceRecorder::new();
        t.record("a", "b", "forward");
        t.record("b", "a", "reply");
        assert_eq!(t.channels().len(), 1);
    }

    #[test]
    fn table_rendering_includes_counts() {
        let table = sample().to_table("Table 1. Condor steps");
        assert!(table.contains("Table 1"));
        assert!(table.contains("User submits job"));
        assert!(table.contains("Distinct entities: 4"));
        assert!(table.contains("Communication channels: 4"));
    }
}
