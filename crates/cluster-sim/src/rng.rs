//! Deterministic random number generation for simulations.
//!
//! The generator is a small, self-contained xoshiro256** implementation seeded
//! through SplitMix64. Experiments must be bit-for-bit reproducible across
//! platforms and library upgrades (the same seed must always produce the same
//! cluster, the same jitter and therefore the same figures), which is why the
//! simulator does not rely on an external generator whose stream may change.

/// A seeded random number generator with the few operations the simulator
/// needs. Every experiment takes an explicit seed so runs are reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// The next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// The next value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_int(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Picks a uniformly random index below `len`; `None` when `len == 0`.
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some((self.next_u64() % len as u64) as usize)
        }
    }

    /// Derives an independent child generator (e.g. one per execute node)
    /// so adding random draws in one component does not perturb another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert_eq!(a.uniform(0.0, 1.0).to_bits(), b.uniform(0.0, 1.0).to_bits());
            assert_eq!(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let n = rng.uniform_int(10, 20);
            assert!((10..20).contains(&n));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform_int(7, 7), 7);
    }

    #[test]
    fn uniform_covers_the_range() {
        let mut rng = SimRng::new(11);
        let mut lo_hits = 0;
        let mut hi_hits = 0;
        for _ in 0..10_000 {
            let x = rng.uniform(0.0, 1.0);
            if x < 0.1 {
                lo_hits += 1;
            }
            if x > 0.9 {
                hi_hits += 1;
            }
        }
        assert!(lo_hits > 700 && lo_hits < 1300, "low decile {lo_hits}");
        assert!(hi_hits > 700 && hi_hits < 1300, "high decile {hi_hits}");
    }

    #[test]
    fn chance_extremes_and_distribution() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..1000).filter(|_| rng.chance(0.5)).count();
        assert!(hits > 400 && hits < 600);
    }

    #[test]
    fn pick_index_bounds() {
        let mut rng = SimRng::new(5);
        assert_eq!(rng.pick_index(0), None);
        for _ in 0..100 {
            assert!(rng.pick_index(4).unwrap() < 4);
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut parent_a = SimRng::new(1);
        let mut parent_b = SimRng::new(1);
        let mut child_a = parent_a.fork(7);
        let mut child_b = parent_b.fork(7);
        assert_eq!(child_a.next_u64(), child_b.next_u64());
        // A different salt produces a different stream.
        let mut other = SimRng::new(1).fork(8);
        assert_ne!(child_a.next_u64(), other.next_u64());
    }
}
