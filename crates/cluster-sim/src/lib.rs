//! # cluster-sim — a deterministic discrete-event cluster simulation substrate
//!
//! The CondorJ2 paper evaluated its prototype on a 50-machine test-bed,
//! inflating the virtual-machine-to-physical-machine ratio to emulate clusters
//! of up to 10,000 nodes, and noted that simulation modelling would be needed
//! to push further. This crate is that simulation substrate: simulated time
//! and events, machine models with heterogeneous speeds, the execute-node
//! failure (job-drop) model, CPU accounting in the paper's four `/proc`
//! categories, throughput/time-series metrics and the data-flow trace recorder
//! used to regenerate Tables 1 and 2.
//!
//! Both cluster managers in the reproduction — the process-centric `condor`
//! baseline and the data-centric `condorj2` system — are built as event-driven
//! state machines over [`event::EventQueue`] and report their behaviour
//! through [`cpu::CpuAccountant`] and [`metrics`].

#![warn(missing_docs)]

pub mod cpu;
pub mod event;
pub mod failure;
pub mod job;
pub mod machine;
pub mod metrics;
pub mod rng;
pub mod time;
pub mod trace;

pub use cpu::{CpuAccountant, CpuCategory, CpuSample};
pub use event::EventQueue;
pub use failure::{FailureModel, NodeHealth, StartOutcome};
pub use job::JobSpec;
pub use machine::{
    Cluster, ClusterSpec, NodeCosts, PhysId, PhysicalMachine, SpeedClass, VirtualMachine, VmId,
};
pub use metrics::{EventCounter, InProgressTracker, TimeSeries};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceRecorder, TraceStep};
