//! # relstore — an embedded relational storage and query engine
//!
//! `relstore` is the DB2 stand-in substrate for the CondorJ2 reproduction
//! ("Turning Cluster Management into Data Management", CIDR 2007). The paper's
//! central move is to put **all** cluster-management state — jobs, machines,
//! matches, runs, users, configuration, history — into relational tables and
//! express every system action as SQL. This crate provides the pieces that
//! move requires:
//!
//! * typed tables with primary keys and secondary indexes ([`table`], [`schema`]),
//! * a SQL subset with a lexer, parser and executor ([`sql`], [`exec`]),
//! * transactions with table-level two-phase locking and rollback ([`txn`]),
//! * a write-ahead log with checkpointing and recovery ([`wal`]),
//! * operation statistics for the simulation cost model ([`stats`]).
//!
//! ## Quick example
//!
//! ```
//! use relstore::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT, runtime DOUBLE)").unwrap();
//! db.execute("INSERT INTO jobs VALUES (1, 'idle', 60.0), (2, 'idle', 300.0)").unwrap();
//! db.execute("UPDATE jobs SET state = 'running' WHERE job_id = 1").unwrap();
//! let idle = db.query("SELECT COUNT(*) FROM jobs WHERE state = 'idle'").unwrap();
//! assert_eq!(idle.scalar_int(), Some(1));
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod error;
pub mod exec;
pub mod index;
pub mod predicate;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod txn;
pub mod value;
pub mod wal;

pub use db::{Database, ExecResult, Session};
pub use error::{Error, Result};
pub use exec::QueryResult;
pub use predicate::{CmpOp, Expr};
pub use schema::{Column, Schema};
pub use stats::OpStats;
pub use tuple::{Row, RowId};
pub use value::{DataType, Value};
pub use wal::TxnId;
