//! # relstore — an embedded relational storage and query engine
//!
//! `relstore` is the DB2 stand-in substrate for the CondorJ2 reproduction
//! ("Turning Cluster Management into Data Management", CIDR 2007). The paper's
//! central move is to put **all** cluster-management state — jobs, machines,
//! matches, runs, users, configuration, history — into relational tables and
//! express every system action as SQL. This crate provides the pieces that
//! move requires:
//!
//! * typed tables with primary keys and secondary indexes ([`table`], [`schema`]),
//! * a SQL subset with a lexer, parser and executor ([`sql`], [`exec`]),
//! * prepared statements with `?` placeholders and an LRU statement cache
//!   ([`db::Prepared`], [`Database::prepare`](db::Database::prepare)),
//! * MVCC snapshot isolation over per-row version chains ([`mvcc`]),
//! * transactions with table-level write locking and rollback ([`txn`]),
//! * a write-ahead log with checkpointing and recovery ([`wal`]),
//! * operation statistics for the simulation cost model ([`stats`]).
//!
//! ## Concurrency model
//!
//! The paper's pitch is that an RDBMS "provides … high concurrency" over the
//! operational data, so the engine is built to use every core for reads:
//!
//! * **Reads share, writes exclude.** The catalog (tables, rows, indexes)
//!   lives behind a reader-writer lock. SELECTs — autocommit or inside a
//!   transaction — execute under the *shared* guard, so any number of
//!   threads read in parallel; INSERT/UPDATE/DELETE/DDL hold the exclusive
//!   guard for the duration of one statement. An autocommit read never
//!   opens a transaction, registers a lock or touches the WAL.
//! * **Book-keeping is off the read path.** Transaction, lock and WAL state
//!   sit under a separate short-lived mutex, and the statement cache under a
//!   third, so cache probes and commit processing never serialise row
//!   access. Statistics accumulate into a stack-local [`OpStats`] per
//!   statement and merge into lock-free [`stats::SharedStats`] atomics.
//! * **Rows are borrowed, names are interned.** Table access paths stream
//!   [`tuple::StoredRowRef`]s (no row clones); the executor clones only the
//!   values that survive projection, and [`QueryResult`] column names are
//!   `Arc<str>`s shared with the schema.
//! * **WAL records are lazy.** `Begin` is appended with a transaction's
//!   first logged change; read-only explicit transactions never touch the
//!   log, and their Commit/Abort records are elided too.
//!
//! ## MVCC: readers never block or abort on writers
//!
//! Reads are isolated by **snapshots**, not locks. Every row is a chain of
//! [`mvcc::RowVersion`]s stamped with the transaction that created (and,
//! once superseded or deleted, ended) them; every SELECT carries a
//! [`Snapshot`] — a transaction-id watermark plus the set of writers in
//! flight when it was taken — and resolves each chain to the version its
//! snapshot sees. Consequences:
//!
//! * a reader racing an uncommitted writer **succeeds** and observes the
//!   most recently committed state — the reader-side
//!   [`Error::LockConflict`] path is gone entirely (autocommit,
//!   in-transaction, and [`Session::query_batch`] alike);
//! * an explicit transaction reuses the snapshot stamped at `begin()` for
//!   all its reads: **repeatable reads** for its whole lifetime, while its
//!   own writes stay visible to itself;
//! * writers still serialise through the table-level lock manager, so
//!   **write-write** conflicts keep failing fast and retryably — wrap write
//!   transactions in [`Session::with_retries`];
//! * old versions are pruned by **vacuum** once no live snapshot can see
//!   them: [`Database::checkpoint`](db::Database::checkpoint) sweeps every
//!   table, and a write that leaves a table with more than
//!   [`db::VACUUM_DEAD_THRESHOLD`] dead versions triggers a targeted sweep.
//!   `versions_created` / `versions_vacuumed` / `snapshots_taken` /
//!   `max_version_chain` in [`OpStats`] make the version store observable.
//!
//! A reader keeps its view while a writer commits mid-transaction:
//!
//! ```
//! use relstore::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)")?;
//! db.execute("INSERT INTO jobs VALUES (1, 'idle')")?;
//!
//! let reader = db.transaction(); // snapshot taken here
//! // A concurrent writer updates the row and commits...
//! db.execute("UPDATE jobs SET state = 'running' WHERE job_id = 1")?;
//!
//! // ...but the reader's snapshot predates that commit: it still sees
//! // 'idle', on this read and every later one (repeatable reads) —
//! // and it never saw a LockConflict.
//! let r = reader.query("SELECT state FROM jobs WHERE job_id = 1", ())?;
//! assert_eq!(r.first_value("state"), Some(&"idle".into()));
//! reader.commit()?;
//!
//! // A fresh read observes the committed update.
//! let r = db.query("SELECT state FROM jobs WHERE job_id = 1")?;
//! assert_eq!(r.first_value("state"), Some(&"running".into()));
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! ## The typed session API
//!
//! [`Session`] is the primary client handle: the paper turns every
//! cluster-management action into a database action, so the SQL client
//! surface *is* the system's internal API and deserves real types. A session
//! binds parameters from plain Rust tuples, decodes rows into structs by
//! column name, and hands out RAII transactions:
//!
//! ```
//! use relstore::{Database, FromRow, Result, RowView};
//!
//! struct Job { id: i64, state: String, runtime: Option<f64> }
//!
//! impl FromRow for Job {
//!     fn from_row(row: &RowView<'_>) -> Result<Self> {
//!         Ok(Job {
//!             id: row.get("job_id")?,       // by interned column name
//!             state: row.get("state")?,
//!             runtime: row.get("runtime")?, // Option<T> maps SQL NULL to None
//!         })
//!     }
//! }
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT, runtime DOUBLE)")?;
//!
//! let mut session = db.session();
//! let insert = db.prepare("INSERT INTO jobs VALUES (?, ?, ?)")?;
//! session.execute(&insert, (1i64, "idle", 60.0))?;           // tuple params
//! session.execute(&insert, (2i64, "idle", Option::<f64>::None))?;
//!
//! let idle: Vec<Job> = session.query_as(
//!     "SELECT * FROM jobs WHERE state = ? ORDER BY job_id", ("idle",))?;
//! assert_eq!(idle.len(), 2);
//! assert_eq!(idle[1].runtime, None);
//! let ids: Vec<i64> = session.query_scalars("SELECT job_id FROM jobs", ())?;
//! assert_eq!(ids.len(), 2);
//! # assert_eq!(idle[0].id, 1); assert_eq!(idle[0].state, "idle");
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! Statements are anything [`ToStatement`] accepts: SQL text (routed through
//! the statement cache) or a [`Prepared`] handle (no lookup at all).
//!
//! ## Transactions are RAII guards
//!
//! [`Database::transaction`] / [`Session::transaction`] return a
//! [`Transaction`] guard. `commit()` consumes the guard; dropping it — on an
//! early return, `?` propagation, or a panic unwinding past it — rolls back
//! and releases the transaction's locks. No raw transaction ids cross the
//! service layer.
//!
//! ```
//! use relstore::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)")?;
//! db.execute("INSERT INTO jobs VALUES (1, 'idle')")?;
//!
//! {
//!     let txn = db.transaction();
//!     txn.execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("held", 1i64))?;
//!     // Guard dropped here without commit: the update rolls back.
//! }
//! let r = db.query("SELECT COUNT(*) FROM jobs WHERE state = 'idle'")?;
//! assert_eq!(r.scalar_int(), Some(1));
//!
//! let txn = db.transaction();
//! txn.execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("held", 1i64))?;
//! txn.commit()?; // consumes the guard; the update is durable
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! ## Batched execution
//!
//! A scheduler pass writes N near-identical rows. Executing them one
//! statement at a time pays N catalog write guards and ~3N WAL appends;
//! [`Session::execute_batch`] (and [`Transaction::execute_batch`]) runs all
//! bindings of one prepared statement under **one** guard with **one** WAL
//! append ([`wal::LogRecord::Batch`]), with the same all-or-nothing outcome
//! as the loop. [`Session::query_batch`] is the read-side analogue: N point
//! selects pipelined under a single shared catalog guard.
//!
//! ```
//! use relstore::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE matches (match_id INT PRIMARY KEY, job_id INT, machine_id INT)")?;
//! let insert = db.prepare("INSERT INTO matches VALUES (?, ?, ?)")?;
//!
//! let made = db.session().execute_batch(
//!     &insert,
//!     (0..32i64).map(|i| (i, 100 + i, 200 + i)),
//! )?;
//! assert_eq!(made, 32);
//! # assert_eq!(db.table_len("matches")?, 32);
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! ## Prepared statements and the statement cache
//!
//! Every CAS service call rides the "HTTP-to-SQL transformation" hot path, so
//! re-lexing and re-parsing per call is the engine's biggest avoidable cost.
//! Two mechanisms remove it:
//!
//! * **Prepared statements.** [`Database::prepare`](db::Database::prepare)
//!   parses SQL containing `?` placeholders once and returns a [`Prepared`]
//!   handle the session API executes directly. Bound values flow through
//!   planning and evaluation as context *after* parsing, so parameter text
//!   can never be re-interpreted as SQL (injection-safe by construction).
//!
//! * **The statement cache.** The database keeps an internal LRU cache
//!   (default 256 entries, see
//!   [`Database::set_statement_cache_capacity`](db::Database::set_statement_cache_capacity))
//!   keyed by exact SQL text. SQL text handed to the session API and the
//!   plain [`Database::execute`](db::Database::execute) / [`query`](db::Database::query)
//!   calls consult it too, so even un-migrated call sites stop paying the
//!   parser once the cache is warm. Hits and misses are observable as
//!   `cache_hits` / `cache_misses` in [`OpStats`]; `statements_parsed`
//!   advances only on misses.
//!
//! ## Durability & recovery
//!
//! By default the engine is embedded and volatile: [`Database::new`] keeps
//! the WAL in memory, which is exactly right for the simulation workloads.
//! [`Database::open_durable`](db::Database::open_durable) instead backs the
//! WAL with a real on-disk log — length-prefixed, CRC-checksummed records
//! behind the pluggable [`LogDevice`] trait (see [`io`]) — and replays it on
//! open, so the catalog survives a crash:
//!
//! ```
//! use relstore::Database;
//!
//! let path = std::env::temp_dir().join(format!("relstore_doc_{}.wal", std::process::id()));
//! # let _ = std::fs::remove_file(&path);
//! {
//!     let db = Database::open_durable(&path)?;
//!     db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)")?;
//!     db.execute("INSERT INTO jobs VALUES (1, 'idle')")?;
//!     // The process "crashes" here: the Database is dropped without a
//!     // checkpoint or any explicit shutdown.
//! }
//! let db = Database::open_durable(&path)?;
//! assert_eq!(db.table_len("jobs")?, 1);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The moving parts:
//!
//! * **[`DurabilityPolicy`]** chooses when the log fsyncs:
//!   [`Always`](DurabilityPolicy::Always) (force-at-commit, the
//!   `open_durable` default), [`Batch(n)`](DurabilityPolicy::Batch) (sync
//!   every `n` commits — bounded loss, group-commit throughput), or
//!   [`Checkpoint`](DurabilityPolicy::Checkpoint) (sync only at checkpoints
//!   and explicit [`flush_log`](db::Database::flush_log) calls).
//! * **Torn tails are repaired; corruption is refused.** A crash mid-append
//!   leaves a partial record at the tail: recovery truncates it and yields
//!   exactly the committed prefix (`recovery_truncated_bytes` in [`OpStats`]
//!   records how much). A checksum mismatch *before* the tail is damage, not
//!   a torn write — recovery fails loudly with [`Error::Corruption`] rather
//!   than guess; it never panics and never silently drops committed data.
//! * **A failed fsync poisons the writer.** If the device errors on sync,
//!   the commit that needed it returns [`Error::Io`] and every later commit
//!   fails too — the engine never acknowledges a commit whose bytes may not
//!   have reached disk. Reopening the database recovers the durable prefix.
//! * **Checkpoints rotate atomically.** [`Database::checkpoint`](db::Database::checkpoint)
//!   writes the compacted snapshot to a fresh segment and swaps it in with an
//!   atomic rename, so a crash mid-checkpoint always leaves one intact log:
//!   either the full old one or the complete new one.
//! * **Fault injection is built in.** [`Failpoints`]
//!   ([`Database::failpoints`](db::Database::failpoints)) arms named IO
//!   failure modes — short writes, torn writes, fsync errors, crashes — for
//!   deterministic crash-recovery tests; disarmed checks are a single atomic
//!   load.
//!
//! ## Paged storage
//!
//! [`Database::open_durable`](db::Database::open_durable) keeps every table
//! in memory and replays the whole log on open, so recovery time and memory
//! both grow with the dataset. [`Database::open_paged`](db::Database::open_paged)
//! adds the [`storage`] subsystem behind the same `Table` seam: table row
//! heaps live in fixed-size, CRC-checksummed slotted pages in a file-backed
//! page store (with overflow chains for rows bigger than a page), cached by
//! a clock-eviction buffer pool whose memory ceiling is
//! `page_size * pool_pages` ([`PagedConfig`]). The SQL surface, MVCC,
//! indexes and executors are untouched — and [`Database::new`] remains the
//! purely in-memory engine, byte for byte.
//!
//! The write path keeps three invariants:
//!
//! * **WAL before data.** A dirty page is written back only after the log
//!   records that produced it are synced; [`Database::checkpoint`](db::Database::checkpoint)
//!   flushes all dirty pages *before* rotating the log segment, so the WAL
//!   suffix past the last checkpoint always covers any page-file drift.
//! * **No steal, doublewrite.** Uncommitted changes never reach the page
//!   file (per-transaction buffers apply at commit), and every page batch
//!   is journaled before the in-place writes — a torn page write
//!   ([`Failpoints`] `page.write` / `page.sync`) heals from the journal on
//!   reopen instead of surfacing as corruption.
//! * **Deferred frees.** A freed page becomes reusable only after the
//!   checkpoint that makes its deletion durable, so a crash can never leave
//!   a stale reference pointing into recycled storage.
//!
//! Reopen verifies every page checksum (a damaged page is a typed
//! [`Error::Corruption`], never a panic or a silent wrong read) and replays
//! only the committed WAL suffix past the last page-consistent checkpoint:
//!
//! ```
//! use relstore::Database;
//!
//! let base = std::env::temp_dir().join(format!("relstore_doc_paged_{}", std::process::id()));
//! # let files: Vec<std::path::PathBuf> = [".wal", ".pages", ".journal"].iter().map(|ext| {
//! #     let mut p = base.clone().into_os_string(); p.push(ext); p.into()
//! # }).collect();
//! # for f in &files { let _ = std::fs::remove_file(f); }
//! {
//!     // Creates base.wal, base.pages and base.journal next to each other.
//!     let db = Database::open_paged(&base)?;
//!     assert!(db.is_paged());
//!     db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)")?;
//!     db.execute("INSERT INTO jobs VALUES (1, 'idle')")?;
//!     db.checkpoint()?; // flushes dirty pages, then rotates the log
//!     db.execute("INSERT INTO jobs VALUES (2, 'running')")?;
//!     // The process "crashes" here: row 2 may exist only in the WAL.
//! }
//! // Reopen loads the page file, verifies checksums, and replays the
//! // committed suffix — both rows are back.
//! let db = Database::open_paged(&base)?;
//! assert_eq!(db.table_len("jobs")?, 2);
//! # drop(db);
//! # for f in &files { let _ = std::fs::remove_file(f); }
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! Pool behaviour is observable: `pages_read` / `pages_written`,
//! `buffer_hits` / `buffer_evictions` and the `overflow_pages` gauge in
//! [`OpStats`]. [`Database::open_paged_with`](db::Database::open_paged_with)
//! picks the [`DurabilityPolicy`] and [`PagedConfig`];
//! [`Database::open_paged_with_devices`](db::Database::open_paged_with_devices)
//! swaps in in-memory devices ([`MemDevice`], [`MemBlockDevice`]) for tests.
//!
//! ## Resource governance
//!
//! A cluster-management substrate must stay responsive under overload: a
//! runaway query, an unbounded result set or an abandoned transaction may
//! not take the engine down with it. Every execution path therefore has a
//! `_governed` variant taking a [`Governance`], and [`Session`]s carry one
//! ([`Session::with_governance`]) that applies to every statement:
//!
//! * **Statement deadlines & cooperative cancellation** —
//!   [`Governance::deadline`] bounds one statement's wall-clock time and
//!   [`Governance::cancel`] lets any thread stop it; every executor loop
//!   (scan, filter, join, sort boundary, aggregate, batch) checks both
//!   every [`govern::DEFAULT_CHECK_INTERVAL`] rows (tunable via
//!   [`Governance::check_interval`]) and bails with [`Error::Timeout`]
//!   (kind [`TimeoutKind::Statement`], class `Logic`). A cancelled
//!   autocommit write rolls back cleanly — never a partial apply.
//! * **Result budgets** — [`Governance::max_rows`] / [`Governance::max_bytes`]
//!   cap what a statement may materialize, enforced engine-side *before*
//!   response pages are built; exceeding one fails with
//!   [`Error::ResourceExhausted`] (class `Logic`).
//! * **Bounded lock waits** — with a non-zero [`Governance::lock_wait`]
//!   (or database default,
//!   [`set_lock_wait_timeout`](db::Database::set_lock_wait_timeout)) a
//!   write-write conflict waits for the holder instead of failing
//!   instantly, expiring into [`Error::Timeout`] of kind
//!   [`TimeoutKind::LockWait`] — class **Retryable**, so
//!   [`Session::with_retries`] handles it transparently. The default is
//!   `Duration::ZERO`: fail fast with [`Error::LockConflict`].
//! * **Idle-transaction reaping** —
//!   [`Database::reap_idle`](db::Database::reap_idle) aborts transactions
//!   idle past a threshold, releasing their locks and un-pinning the vacuum
//!   horizon (the `wire` server runs it periodically).
//!
//! The disarmed path costs one branch per row; counters
//! (`statements_timed_out`, `statements_over_budget`, `lock_waits`,
//! `lock_wait_timeouts`, `txns_reaped`) and the `horizon_lag` high-water
//! gauge in [`OpStats`] make enforcement observable.
//!
//! ```
//! use relstore::{Database, Error, Governance};
//! use std::time::Duration;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)")?;
//! for i in 0..50i64 {
//!     let ins = db.prepare("INSERT INTO jobs VALUES (?, 'idle')")?;
//!     db.execute_prepared(&ins, &[i.into()])?;
//! }
//!
//! // A result-row budget stops a runaway scan before it materializes.
//! let mut session = db.session().with_governance(Governance {
//!     max_rows: Some(10),
//!     deadline: Some(Duration::from_secs(30)),
//!     ..Governance::default()
//! });
//! let err = session.query("SELECT * FROM jobs", ()).unwrap_err();
//! assert!(matches!(err, Error::ResourceExhausted(_)));
//!
//! // Point reads under the caps are unaffected.
//! let r = session.query("SELECT * FROM jobs WHERE job_id = ?", (7i64,))?;
//! assert_eq!(r.len(), 1);
//! assert!(db.stats().statements_over_budget >= 1);
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! ## Observability
//!
//! The engine applies the paper's own argument to itself: if middleware
//! state belongs in a relational engine because it can be *queried*, then
//! the engine's internal state should be queryable too. The [`obs`] module
//! keeps lock-free log-bucketed latency histograms (per statement kind,
//! plus WAL fsync, lock wait, commit, checkpoint and vacuum), a
//! per-statement profile on every cached/prepared statement (a
//! `pg_stat_statements` analogue bounded by the statement-cache LRU), a
//! fixed-capacity slow-query ring with a wait breakdown
//! ([`Database::set_slow_query_threshold`](db::Database::set_slow_query_threshold);
//! disarmed by default and then one relaxed load per statement), and an
//! event ring of coarse spans (checkpoints, vacuum sweeps, recovery,
//! eviction storms).
//!
//! All of it is served through the normal SELECT path as **virtual system
//! tables** — `rel_stats`, `rel_histograms`, `rel_statements`,
//! `rel_slow_queries`, `rel_events` — visible to the embedded API, every
//! [`Session`], and wire clients alike, with zero new protocol messages. A
//! real table of the same name shadows its system table. Raw access for
//! in-process monitors: [`Database::obs`](db::Database::obs),
//! [`Database::statement_profiles`](db::Database::statement_profiles).
//!
//! ```
//! use relstore::{Database, Value};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)")?;
//! let ins = db.prepare("INSERT INTO jobs VALUES (?, 'idle')")?;
//! for i in 0..10i64 {
//!     db.execute_prepared(&ins, &[i.into()])?;
//! }
//!
//! // The profile table is plain SQL: ask how often the insert ran.
//! let q = db.prepare("SELECT calls, total_rows FROM rel_statements WHERE sql = ?")?;
//! let r = db.query_prepared(&q, &["INSERT INTO jobs VALUES (?, 'idle')".into()])?;
//! assert_eq!(r.first_value("calls"), Some(&Value::Int(10)));
//! assert_eq!(r.first_value("total_rows"), Some(&Value::Int(10)));
//!
//! // Latency histograms are queryable the same way.
//! let h = db.query("SELECT count FROM rel_histograms WHERE name = 'stmt.insert'")?;
//! assert_eq!(h.first_value("count"), Some(&Value::Int(10)));
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! ## Query planning
//!
//! SELECT statements run through a cost-based planner ([`plan`]). `ANALYZE
//! [table]` scans each table once and stores per-column statistics — row
//! count, distinct-value and NULL counts, min/max — in the catalog; the
//! planner uses them to pick each table's **access path** (primary-key
//! point lookup, secondary-index lookup, range scan, or full scan) and to
//! **reorder inner equi-joins** so the smallest estimated hash-build side
//! is joined first. Non-equi `ON` predicates fall back to a nested-loop
//! join. Without statistics the planner still runs on schema-derived
//! defaults; stale statistics can only mis-cost a plan, never change its
//! results. Scalar and `IN (SELECT …)` subqueries in `WHERE` execute once
//! per statement and splice in as literals, with SQL's three-valued `IN`
//! semantics preserved.
//!
//! `EXPLAIN <select>` renders the chosen plan as an ordinary result set —
//! embedded, via every [`Session`], and over the wire alike — and
//! `EXPLAIN ANALYZE` additionally executes the statement and annotates
//! each operator with actual row counts and wall time. Prepared statements
//! cache their plan (and reusable hash-join build sides) alongside the
//! parsed AST; DDL, `ANALYZE`, and planner-knob changes invalidate cached
//! plans, and a write to a build-side table invalidates its cached build.
//! Collected statistics are queryable as the `rel_table_stats` virtual
//! table.
//!
//! ```
//! use relstore::{Database, Value};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT, state TEXT)")?;
//! db.execute("CREATE TABLE runs (run_id INT PRIMARY KEY, job_id INT)")?;
//! for i in 0..50i64 {
//!     db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'astro', 'running')"))?;
//!     db.execute(&format!("INSERT INTO runs VALUES ({i}, {i})"))?;
//! }
//! db.execute("ANALYZE")?; // refresh planner statistics for every table
//!
//! // A point predicate on the primary key plans as a point lookup.
//! let plan = db.query("EXPLAIN SELECT * FROM jobs WHERE job_id = 7")?;
//! assert_eq!(plan.column_names(), vec!["step", "operator", "detail", "est_rows"]);
//! assert_eq!(plan.first_value("operator"), Some(&Value::Text("Access(jobs)".into())));
//!
//! // EXPLAIN ANALYZE executes too: actual rows ride along the estimates.
//! let plan = db.query(
//!     "EXPLAIN ANALYZE SELECT * FROM jobs JOIN runs ON jobs.job_id = runs.job_id",
//! )?;
//! assert!(plan.column_names().contains(&"actual_rows"));
//!
//! // The statistics themselves are a virtual table.
//! let stats = db.query(
//!     "SELECT row_count FROM rel_table_stats WHERE table_name = 'jobs' AND column_name = 'job_id'",
//! )?;
//! assert_eq!(stats.first_value("row_count"), Some(&Value::Int(50)));
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! ## Errors
//!
//! [`Error`] carries a coarse taxonomy ([`Error::class`]): **retryable**
//! conditions (write-write lock conflicts, lock-wait timeouts,
//! [checkpoint-busy](db::Database::checkpoint)) vs **logic** errors (bad
//! SQL, type/arity mismatches, statement deadlines, exhausted budgets) vs
//! **constraint** violations vs **internal**
//! failures — so service layers branch on [`Error::is_retryable`] (or wrap
//! the whole attempt in [`Session::with_retries`]) instead of matching
//! message strings. Since MVCC, only writers can see a retryable conflict.
//!
//! The taxonomy crosses the network unchanged: the `wire` crate's protocol
//! transports the [`Error`] variant and class in its error frames, so a
//! remote caller retries a write-write conflict exactly like an embedded
//! one. Transport failures themselves surface as [`Error::Net`] (produced
//! only by the wire layer), and the server's traffic shows up in
//! [`OpStats`] as `net_bytes_in` / `net_bytes_out` / `frames_decoded` plus
//! the `active_connections` high-water gauge.

#![warn(missing_docs)]

pub mod convert;
pub mod db;
pub mod error;
pub mod exec;
pub mod govern;
pub mod index;
pub mod io;
pub mod mvcc;
pub mod obs;
pub mod plan;
pub mod predicate;
pub mod schema;
pub mod session;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod table;
pub mod tuple;
pub mod txn;
pub mod value;
pub mod wal;

pub use convert::{FromRow, FromValue, IntoParams, RowView, ToStatement};
pub use db::{Database, ExecResult, Prepared};
pub use error::{Error, ErrorClass, Result, TimeoutKind};
pub use govern::{Governance, Governor};
pub use io::{DurabilityPolicy, FailAction, Failpoints, FsDevice, LogDevice, MemDevice};
pub use mvcc::{RowVersion, Snapshot};
pub use obs::{
    Event, HistogramSnapshot, Observability, SlowQueryEntry, StmtKind, StmtProfileSnapshot,
};
pub use exec::QueryResult;
pub use plan::{AccessPath, AccessPlan, ColumnStats, SelectPlan, TableStats};
pub use predicate::{CmpOp, Expr};
pub use schema::{Column, Schema};
pub use session::{retry_with_backoff, retry_with_backoff_deadline, Session, Transaction};
pub use stats::OpStats;
pub use storage::{BlockDevice, FsBlockDevice, MemBlockDevice, PagedConfig};
pub use tuple::{Row, RowId};
pub use value::{DataType, Value};
pub use wal::TxnId;
