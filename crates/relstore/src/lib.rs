//! # relstore — an embedded relational storage and query engine
//!
//! `relstore` is the DB2 stand-in substrate for the CondorJ2 reproduction
//! ("Turning Cluster Management into Data Management", CIDR 2007). The paper's
//! central move is to put **all** cluster-management state — jobs, machines,
//! matches, runs, users, configuration, history — into relational tables and
//! express every system action as SQL. This crate provides the pieces that
//! move requires:
//!
//! * typed tables with primary keys and secondary indexes ([`table`], [`schema`]),
//! * a SQL subset with a lexer, parser and executor ([`sql`], [`exec`]),
//! * prepared statements with `?` placeholders and an LRU statement cache
//!   ([`db::Prepared`], [`Database::prepare`](db::Database::prepare)),
//! * transactions with table-level two-phase locking and rollback ([`txn`]),
//! * a write-ahead log with checkpointing and recovery ([`wal`]),
//! * operation statistics for the simulation cost model ([`stats`]).
//!
//! ## Concurrency model
//!
//! The paper's pitch is that an RDBMS "provides … high concurrency" over the
//! operational data, so the engine is built to use every core for reads:
//!
//! * **Reads share, writes exclude.** The catalog (tables, rows, indexes)
//!   lives behind a reader-writer lock. SELECTs — autocommit or inside a
//!   transaction — execute under the *shared* guard, so any number of
//!   threads read in parallel; INSERT/UPDATE/DELETE/DDL hold the exclusive
//!   guard for the duration of one statement. An autocommit read never
//!   opens a transaction, registers a lock or touches the WAL; it fails
//!   retryably (like a lock-wait timeout) only when an in-flight
//!   transaction write-locks one of its tables.
//! * **Book-keeping is off the read path.** Transaction, lock and WAL state
//!   sit under a separate short-lived mutex, and the statement cache under a
//!   third, so cache probes and commit processing never serialise row
//!   access. Statistics accumulate into a stack-local [`OpStats`] per
//!   statement and merge into lock-free [`stats::SharedStats`] atomics.
//! * **Rows are borrowed, names are interned.** Table access paths stream
//!   [`tuple::StoredRowRef`]s (no row clones); the executor clones only the
//!   values that survive projection, and [`QueryResult`] column names are
//!   `Arc<str>`s shared with the schema.
//! * **WAL records are lazy.** `Begin` is appended with a transaction's
//!   first logged change; read-only explicit transactions never touch the
//!   log, and their Commit/Abort records are elided too.
//!
//! ## Quick example
//!
//! ```
//! use relstore::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT, runtime DOUBLE)").unwrap();
//! db.execute("INSERT INTO jobs VALUES (1, 'idle', 60.0), (2, 'idle', 300.0)").unwrap();
//! db.execute("UPDATE jobs SET state = 'running' WHERE job_id = 1").unwrap();
//! let idle = db.query("SELECT COUNT(*) FROM jobs WHERE state = 'idle'").unwrap();
//! assert_eq!(idle.scalar_int(), Some(1));
//! ```
//!
//! ## Prepared statements and the statement cache
//!
//! Every CAS service call rides the "HTTP-to-SQL transformation" hot path, so
//! re-lexing and re-parsing per call is the engine's biggest avoidable cost.
//! Two mechanisms remove it:
//!
//! * **Prepared statements.** [`Database::prepare`](db::Database::prepare)
//!   parses SQL containing `?` placeholders once and returns a [`Prepared`]
//!   handle; `execute_prepared` / `query_prepared` /
//!   `execute_prepared_in` bind values positionally and run the cached AST.
//!   Bound values are substituted as literals *after* parsing, so parameter
//!   text can never be re-interpreted as SQL (injection-safe by
//!   construction).
//!
//! * **The statement cache.** The database keeps an internal LRU cache
//!   (default 256 entries, see
//!   [`Database::set_statement_cache_capacity`](db::Database::set_statement_cache_capacity))
//!   keyed by exact SQL text. Plain [`Database::execute`](db::Database::execute) /
//!   [`query`](db::Database::query) calls consult it too, so even un-migrated
//!   call sites stop paying the parser once the cache is warm. Hits and
//!   misses are observable as `cache_hits` / `cache_misses` in [`OpStats`];
//!   `statements_parsed` advances only on misses.
//!
//! ```
//! use relstore::{Database, Value};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
//! let insert = db.prepare("INSERT INTO jobs VALUES (?, ?)").unwrap();
//! for id in 0..3 {
//!     db.execute_prepared(&insert, &[Value::Int(id), Value::from("idle")]).unwrap();
//! }
//! let by_id = db.prepare("SELECT state FROM jobs WHERE job_id = ?").unwrap();
//! let row = db.query_prepared(&by_id, &[Value::Int(2)]).unwrap();
//! assert_eq!(row.first_value("state"), Some(&Value::from("idle")));
//! assert_eq!(db.stats().statements_parsed, 3); // DDL + two prepares, no re-parses
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod error;
pub mod exec;
pub mod index;
pub mod predicate;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod txn;
pub mod value;
pub mod wal;

pub use db::{Database, ExecResult, Prepared, Session};
pub use error::{Error, Result};
pub use exec::QueryResult;
pub use predicate::{CmpOp, Expr};
pub use schema::{Column, Schema};
pub use stats::OpStats;
pub use tuple::{Row, RowId};
pub use value::{DataType, Value};
pub use wal::TxnId;
