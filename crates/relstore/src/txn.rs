//! Transactions: table-level write locking, MVCC snapshots and undo
//! management.
//!
//! Writers use strict two-phase locking at table granularity. The lock
//! manager itself fails fast with [`crate::error::Error::LockConflict`]; the
//! database layer turns that into a **bounded wait** — it retries the
//! acquisition (without holding the catalog guard) until the configured
//! lock-wait timeout expires, then surfaces a retryable lock-wait
//! [`crate::error::Error::Timeout`], exactly as a busy DB2 instance would
//! time a lock wait out under heavy contention. **Readers take no locks at
//! all**:
//! every transaction is stamped with a [`Snapshot`] at begin (and every
//! autocommit SELECT takes one per statement), and visibility resolution
//! against row version chains replaces the reader-side conflict check — see
//! [`crate::mvcc`].

use crate::error::{Error, Result};
use crate::mvcc::Snapshot;
use crate::tuple::{Row, RowId};
use crate::wal::TxnId;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// The lock modes supported by the table-level lock manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

#[derive(Debug, Default, Clone)]
struct TableLock {
    readers: HashSet<TxnId>,
    writer: Option<TxnId>,
}

/// Table-granularity lock manager.
#[derive(Debug, Default, Clone)]
pub struct LockManager {
    locks: HashMap<String, TableLock>,
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Acquires `mode` on `table` for `txn`, upgrading a held shared lock to
    /// exclusive when possible. Fails with `LockConflict` when another
    /// transaction holds an incompatible lock.
    pub fn acquire(&mut self, txn: TxnId, table: &str, mode: LockMode) -> Result<()> {
        let entry = self.locks.entry(table.to_string()).or_default();
        match mode {
            LockMode::Shared => {
                if let Some(w) = entry.writer {
                    if w != txn {
                        return Err(Error::LockConflict(format!(
                            "table {table} write-locked by {w}"
                        )));
                    }
                }
                entry.readers.insert(txn);
                Ok(())
            }
            LockMode::Exclusive => {
                if let Some(w) = entry.writer {
                    if w != txn {
                        return Err(Error::LockConflict(format!(
                            "table {table} write-locked by {w}"
                        )));
                    }
                    return Ok(());
                }
                let other_readers = entry.readers.iter().any(|r| *r != txn);
                if other_readers {
                    return Err(Error::LockConflict(format!(
                        "table {table} read-locked by another transaction"
                    )));
                }
                entry.readers.remove(&txn);
                entry.writer = Some(txn);
                Ok(())
            }
        }
    }

    /// The transaction currently holding an exclusive lock on `table` (keyed
    /// lower-case), if any. Used by the read-only autocommit fast path to
    /// detect conflicts without registering a lock.
    pub fn writer_of(&self, table: &str) -> Option<TxnId> {
        self.locks.get(table).and_then(|l| l.writer)
    }

    /// Releases every lock held by `txn`.
    pub fn release_all(&mut self, txn: TxnId) {
        for lock in self.locks.values_mut() {
            lock.readers.remove(&txn);
            if lock.writer == Some(txn) {
                lock.writer = None;
            }
        }
        self.locks.retain(|_, l| l.writer.is_some() || !l.readers.is_empty());
    }

    /// Number of tables with at least one lock held.
    pub fn locked_tables(&self) -> usize {
        self.locks.len()
    }

    /// True if `txn` currently holds any lock.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.locks
            .values()
            .any(|l| l.writer == Some(txn) || l.readers.contains(&txn))
    }
}

/// One undo entry recorded by an in-flight transaction.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum UndoRecord {
    /// Undo an insert by deleting the row.
    Insert { table: String, row_id: RowId },
    /// Undo a delete by restoring the row.
    Delete {
        table: String,
        row_id: RowId,
        before: Row,
    },
    /// Undo an update by restoring the prior image.
    Update {
        table: String,
        row_id: RowId,
        before: Row,
    },
    /// Undo a CREATE TABLE by dropping it.
    CreateTable { table: String },
}

/// The lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// The transaction is active and may issue statements.
    Active,
    /// The transaction committed.
    Committed,
    /// The transaction aborted (explicitly or after an error).
    Aborted,
}

/// Book-keeping for one transaction.
#[derive(Debug)]
pub struct TxnState {
    /// The transaction id.
    pub id: TxnId,
    /// Current lifecycle state.
    pub status: TxnStatus,
    /// Undo records in execution order (rolled back in reverse).
    pub undo: Vec<UndoRecord>,
    /// Whether a `Begin` record has been appended to the WAL. Begin records
    /// are written lazily, on the transaction's first logged change, so
    /// read-only explicit transactions never touch the log (and need no
    /// Commit/Abort record either).
    pub wal_begun: bool,
    /// The MVCC snapshot taken at begin: every read this transaction
    /// performs resolves row visibility against it, giving repeatable reads
    /// for the transaction's whole lifetime.
    pub snapshot: Snapshot,
    /// When the transaction last executed a statement (or began). The idle
    /// reaper aborts transactions whose `last_activity` is older than the
    /// idle threshold, so a stalled client cannot pin locks or the vacuum
    /// horizon forever.
    pub last_activity: Instant,
}

/// Allocates transaction ids and tracks active transactions.
#[derive(Debug, Default)]
pub struct TxnManager {
    next_id: u64,
    active: HashMap<TxnId, TxnState>,
    committed: u64,
    aborted: u64,
}

impl TxnManager {
    /// Creates an empty transaction manager.
    pub fn new() -> Self {
        TxnManager::default()
    }

    /// Ensures every future transaction id is greater than `id`. Called
    /// after recovery: the replayed log already mentions ids up to `id`, and
    /// a new transaction reusing one would collide with a logged Commit
    /// record, making its uncommitted changes look committed on the next
    /// recovery.
    pub fn advance_past(&mut self, id: u64) {
        self.next_id = self.next_id.max(id);
    }

    /// Begins a new transaction, stamping it with a snapshot of the current
    /// commit state: transactions in flight right now (and any that begin
    /// later) stay invisible to it for its whole lifetime.
    pub fn begin(&mut self) -> TxnId {
        self.next_id += 1;
        let id = TxnId(self.next_id);
        let snapshot = Snapshot {
            high: id.0,
            in_flight: self.sorted_active(),
            own: Some(id),
        };
        self.active.insert(
            id,
            TxnState {
                id,
                status: TxnStatus::Active,
                undo: Vec::new(),
                wal_begun: false,
                snapshot,
                last_activity: Instant::now(),
            },
        );
        id
    }

    /// Stamps an active transaction as recently used. A no-op for unknown or
    /// finished transactions (the statement that follows will surface the
    /// real [`Error::TxnClosed`]).
    pub fn touch(&mut self, id: TxnId) {
        if let Some(state) = self.active.get_mut(&id) {
            state.last_activity = Instant::now();
        }
    }

    /// The transactions that have been idle for at least `idle_for`,
    /// oldest first — the reaper's candidate list.
    pub fn idle_txns(&self, idle_for: Duration) -> Vec<TxnId> {
        let mut stale: Vec<(Instant, TxnId)> = self
            .active
            .values()
            .filter(|s| s.last_activity.elapsed() >= idle_for)
            .map(|s| (s.last_activity, s.id))
            .collect();
        stale.sort_unstable();
        stale.into_iter().map(|(_, id)| id).collect()
    }

    /// The highest transaction id allocated so far. `high_watermark -
    /// snapshot_horizon` is the vacuum horizon lag: how far the oldest live
    /// snapshot trails the newest transaction.
    pub fn high_watermark(&self) -> u64 {
        self.next_id
    }

    /// The active transaction ids, sorted ascending (the `in_flight` set of
    /// a new snapshot).
    fn sorted_active(&self) -> Vec<TxnId> {
        let mut ids: Vec<TxnId> = self.active.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Takes a fresh read snapshot for an autocommit SELECT: it sees every
    /// transaction committed so far and none of the in-flight ones.
    pub fn read_snapshot(&self) -> Snapshot {
        Snapshot {
            high: self.next_id + 1,
            in_flight: self.sorted_active(),
            own: None,
        }
    }

    /// The snapshot of an active transaction (cloned; the caller runs reads
    /// against it after releasing the control mutex).
    pub fn snapshot_of(&mut self, id: TxnId) -> Result<Snapshot> {
        self.get_active(id).map(|s| s.snapshot.clone())
    }

    /// The vacuum horizon: the smallest transaction id some live snapshot
    /// does **not** see. Versions whose `end` transaction is below this are
    /// invisible to every live (and future) snapshot and may be pruned.
    /// `u64::MAX` when no transactions are active.
    pub fn snapshot_horizon(&self) -> u64 {
        self.active
            .values()
            .map(|s| s.snapshot.low_watermark())
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Returns a mutable handle to an active transaction.
    pub fn get_active(&mut self, id: TxnId) -> Result<&mut TxnState> {
        match self.active.get_mut(&id) {
            Some(state) if state.status == TxnStatus::Active => Ok(state),
            Some(_) => Err(Error::TxnClosed(format!("{id} is no longer active"))),
            None => Err(Error::TxnClosed(format!("{id} is unknown"))),
        }
    }

    /// Records an undo entry against an active transaction.
    pub fn push_undo(&mut self, id: TxnId, undo: UndoRecord) -> Result<()> {
        self.get_active(id)?.undo.push(undo);
        Ok(())
    }

    /// Marks the transaction committed and returns its state.
    pub fn finish_commit(&mut self, id: TxnId) -> Result<TxnState> {
        let mut state = self
            .active
            .remove(&id)
            .ok_or_else(|| Error::TxnClosed(format!("{id} is unknown")))?;
        if state.status != TxnStatus::Active {
            return Err(Error::TxnClosed(format!("{id} is no longer active")));
        }
        state.status = TxnStatus::Committed;
        self.committed += 1;
        Ok(state)
    }

    /// Marks the transaction aborted and returns its state (with undo list).
    pub fn finish_abort(&mut self, id: TxnId) -> Result<TxnState> {
        let mut state = self
            .active
            .remove(&id)
            .ok_or_else(|| Error::TxnClosed(format!("{id} is unknown")))?;
        if state.status != TxnStatus::Active {
            return Err(Error::TxnClosed(format!("{id} is no longer active")));
        }
        state.status = TxnStatus::Aborted;
        self.aborted += 1;
        Ok(state)
    }

    /// Number of currently active transactions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Total committed transaction count.
    pub fn committed_count(&self) -> u64 {
        self.committed
    }

    /// Total aborted transaction count.
    pub fn aborted_count(&self) -> u64 {
        self.aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn shared_locks_are_compatible() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "jobs", LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), "jobs", LockMode::Shared).unwrap();
        assert_eq!(lm.locked_tables(), 1);
        assert!(lm.holds_any(TxnId(1)));
    }

    #[test]
    fn exclusive_conflicts_with_other_holders() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "jobs", LockMode::Shared).unwrap();
        assert!(lm.acquire(TxnId(2), "jobs", LockMode::Exclusive).is_err());
        // Upgrade by the sole reader succeeds.
        lm.acquire(TxnId(1), "jobs", LockMode::Exclusive).unwrap();
        assert!(lm.acquire(TxnId(2), "jobs", LockMode::Shared).is_err());
        // Re-acquisition by the writer is idempotent.
        lm.acquire(TxnId(1), "jobs", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(1), "jobs", LockMode::Shared).unwrap();
    }

    #[test]
    fn release_all_frees_tables() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "jobs", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(1), "machines", LockMode::Shared).unwrap();
        lm.release_all(TxnId(1));
        assert_eq!(lm.locked_tables(), 0);
        assert!(!lm.holds_any(TxnId(1)));
        lm.acquire(TxnId(2), "jobs", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn snapshots_and_horizon() {
        let mut tm = TxnManager::new();
        let t1 = tm.begin();
        let snap1 = tm.snapshot_of(t1).unwrap();
        assert!(snap1.sees(t1), "a transaction sees its own writes");
        assert!(!snap1.sees(TxnId(t1.0 + 1)), "later transactions are invisible");

        let t2 = tm.begin();
        let snap2 = tm.snapshot_of(t2).unwrap();
        assert!(!snap2.sees(t1), "t1 was in flight when t2 began");
        assert_eq!(tm.snapshot_horizon(), t1.0, "t1 bounds every live snapshot");

        let read = tm.read_snapshot();
        assert!(!read.sees(t1) && !read.sees(t2), "in-flight writers invisible");

        tm.finish_commit(t1).unwrap();
        let read = tm.read_snapshot();
        assert!(read.sees(t1), "committed before this snapshot");
        assert!(!read.sees(t2));

        tm.finish_commit(t2).unwrap();
        assert_eq!(tm.snapshot_horizon(), u64::MAX, "no snapshots pin versions");
        assert!(tm.snapshot_of(t1).is_err());
    }

    #[test]
    fn idle_txns_and_touch() {
        let mut tm = TxnManager::new();
        let t1 = tm.begin();
        let t2 = tm.begin();
        assert!(tm.idle_txns(Duration::from_secs(60)).is_empty());
        let idle = tm.idle_txns(Duration::ZERO);
        assert_eq!(idle.len(), 2);
        assert_eq!(idle[0], t1, "oldest first");

        std::thread::sleep(Duration::from_millis(5));
        tm.touch(t1);
        assert_eq!(tm.idle_txns(Duration::from_millis(4)), vec![t2]);

        tm.finish_commit(t2).unwrap();
        tm.touch(t2); // no-op on a finished transaction
        assert_eq!(tm.high_watermark(), 2);
    }

    #[test]
    fn txn_lifecycle() {
        let mut tm = TxnManager::new();
        let t1 = tm.begin();
        let t2 = tm.begin();
        assert_ne!(t1, t2);
        assert_eq!(tm.active_count(), 2);

        tm.push_undo(
            t1,
            UndoRecord::Insert {
                table: "jobs".into(),
                row_id: RowId(1),
            },
        )
        .unwrap();
        let state = tm.finish_commit(t1).unwrap();
        assert_eq!(state.status, TxnStatus::Committed);
        assert_eq!(state.undo.len(), 1);
        assert_eq!(tm.committed_count(), 1);

        let state = tm.finish_abort(t2).unwrap();
        assert_eq!(state.status, TxnStatus::Aborted);
        assert_eq!(tm.aborted_count(), 1);
        assert_eq!(tm.active_count(), 0);

        // Operating on a finished transaction fails.
        assert!(tm.get_active(t1).is_err());
        assert!(tm.finish_commit(t2).is_err());
        assert!(tm
            .push_undo(
                t1,
                UndoRecord::Delete {
                    table: "jobs".into(),
                    row_id: RowId(2),
                    before: Row::new(vec![Value::Int(1)]),
                }
            )
            .is_err());
    }
}
