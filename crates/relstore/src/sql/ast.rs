//! Abstract syntax tree for the supported SQL subset.

use crate::predicate::Expr;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Sort direction for `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderKey {
    /// The column to sort by.
    pub column: String,
    /// Sort direction.
    pub order: SortOrder,
}

/// Aggregate functions supported in the projection list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggFunc {
    /// Canonical upper-case name of the function.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One item in a `SELECT` projection list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*` — every column of the (joined) input relation.
    Wildcard,
    /// A scalar expression with an optional `AS` alias.
    Expr {
        /// The expression to evaluate per row.
        expr: Expr,
        /// Output column name override.
        alias: Option<String>,
    },
    /// An aggregate over an optional column (`None` means `COUNT(*)`).
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column, or `None` for `COUNT(*)`.
        column: Option<String>,
        /// Output column name override.
        alias: Option<String>,
    },
}

/// An inner join clause: `JOIN <table> ON <left_col> = <right_col>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinClause {
    /// The right-hand table name.
    pub table: String,
    /// Column from the accumulated left-hand relation.
    pub left_column: String,
    /// Column from the right-hand table.
    pub right_column: String,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Base table.
    pub table: String,
    /// Inner joins applied left-to-right.
    pub joins: Vec<JoinClause>,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<String>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
}

/// An `INSERT` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Optional explicit column list; when empty the full schema order is used.
    pub columns: Vec<String>,
    /// One or more value rows (literal expressions, evaluated against an empty row).
    pub rows: Vec<Vec<Expr>>,
}

/// An `UPDATE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET column = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
}

/// A `DELETE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
}

/// Any parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `CREATE TABLE ...`.
    CreateTable(Schema),
    /// `CREATE [UNIQUE] INDEX ON table (column)`.
    CreateIndex {
        /// Target table.
        table: String,
        /// Indexed column.
        column: String,
        /// Whether duplicates are rejected.
        unique: bool,
    },
    /// `DROP TABLE name`.
    DropTable(String),
    /// `SELECT ...`.
    Select(SelectStmt),
    /// `INSERT ...`.
    Insert(InsertStmt),
    /// `UPDATE ...`.
    Update(UpdateStmt),
    /// `DELETE ...`.
    Delete(DeleteStmt),
    /// `BEGIN [TRANSACTION]`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}

impl Statement {
    /// True for statements that only read data.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Statement::Select(_))
    }

    /// Number of `?` bind-parameter slots in the statement (one past the
    /// highest parameter index).
    pub fn param_count(&self) -> usize {
        let mut n = 0usize;
        self.for_each_expr(&mut |e| n = n.max(e.param_count()));
        n
    }

    /// Visits every expression embedded in the statement.
    fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Statement::Select(sel) => {
                if let Some(filter) = &sel.filter {
                    f(filter);
                }
                for item in &sel.items {
                    if let SelectItem::Expr { expr, .. } = item {
                        f(expr);
                    }
                }
            }
            Statement::Insert(ins) => {
                for row in &ins.rows {
                    for expr in row {
                        f(expr);
                    }
                }
            }
            Statement::Update(upd) => {
                for (_, expr) in &upd.assignments {
                    f(expr);
                }
                if let Some(filter) = &upd.filter {
                    f(filter);
                }
            }
            Statement::Delete(del) => {
                if let Some(filter) = &del.filter {
                    f(filter);
                }
            }
            Statement::CreateTable(_)
            | Statement::CreateIndex { .. }
            | Statement::DropTable(_)
            | Statement::Begin
            | Statement::Commit
            | Statement::Rollback => {}
        }
    }

    /// The table this statement primarily targets, if any.
    pub fn target_table(&self) -> Option<&str> {
        match self {
            Statement::CreateTable(s) => Some(&s.name),
            Statement::CreateIndex { table, .. } => Some(table),
            Statement::DropTable(t) => Some(t),
            Statement::Select(s) => Some(&s.table),
            Statement::Insert(s) => Some(&s.table),
            Statement::Update(s) => Some(&s.table),
            Statement::Delete(s) => Some(&s.table),
            Statement::Begin | Statement::Commit | Statement::Rollback => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    #[test]
    fn statement_classification() {
        let sel = Statement::Select(SelectStmt {
            items: vec![SelectItem::Wildcard],
            table: "jobs".into(),
            joins: vec![],
            filter: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        });
        assert!(sel.is_read_only());
        assert_eq!(sel.target_table(), Some("jobs"));

        let ct = Statement::CreateTable(Schema::new(
            "jobs",
            vec![Column::new("job_id", DataType::Int)],
        ));
        assert!(!ct.is_read_only());
        assert_eq!(ct.target_table(), Some("jobs"));
        assert_eq!(Statement::Begin.target_table(), None);
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::Count.name(), "COUNT");
        assert_eq!(AggFunc::Avg.name(), "AVG");
    }

    #[test]
    fn param_count_covers_every_statement_kind() {
        use crate::sql::parser::parse;

        assert_eq!(parse("UPDATE jobs SET state = ? WHERE job_id = ?").unwrap().param_count(), 2);
        assert_eq!(parse("INSERT INTO jobs (job_id, owner) VALUES (?, ?)").unwrap().param_count(), 2);
        assert_eq!(parse("SELECT job_id + ? FROM jobs WHERE owner = ?").unwrap().param_count(), 2);
        assert_eq!(parse("DELETE FROM jobs WHERE job_id = ?").unwrap().param_count(), 1);
        assert_eq!(parse("DROP TABLE jobs").unwrap().param_count(), 0);
    }
}
