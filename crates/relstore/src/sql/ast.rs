//! Abstract syntax tree for the supported SQL subset.

use crate::predicate::{CmpOp, Expr};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Sort direction for `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderKey {
    /// The column to sort by.
    pub column: String,
    /// Sort direction.
    pub order: SortOrder,
}

/// Aggregate functions supported in the projection list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggFunc {
    /// Canonical upper-case name of the function.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One item in a `SELECT` projection list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*` — every column of the (joined) input relation.
    Wildcard,
    /// A scalar expression with an optional `AS` alias.
    Expr {
        /// The expression to evaluate per row.
        expr: Expr,
        /// Output column name override.
        alias: Option<String>,
    },
    /// An aggregate over an optional column (`None` means `COUNT(*)`).
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column, or `None` for `COUNT(*)`.
        column: Option<String>,
        /// Output column name override.
        alias: Option<String>,
    },
}

/// An inner join clause: `JOIN <table> ON <predicate>`.
///
/// A predicate that is a single equality between two column references (the
/// common `a.x = b.y` case) is executed as a hash join; any other predicate
/// falls back to a nested-loop join evaluating `on` over the concatenated
/// row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinClause {
    /// The right-hand table name.
    pub table: String,
    /// The `ON` predicate.
    pub on: Expr,
}

impl JoinClause {
    /// When the `ON` predicate is a single equality between two column
    /// references, returns them as `(left, right)` in source order. Which
    /// side belongs to which table is resolved by the planner against the
    /// joined schemas.
    pub fn equi_columns(&self) -> Option<(&str, &str)> {
        if let Expr::Cmp(CmpOp::Eq, l, r) = &self.on {
            if let (Expr::Column(a), Expr::Column(b)) = (l.as_ref(), r.as_ref()) {
                return Some((a, b));
            }
        }
        None
    }
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Base table.
    pub table: String,
    /// Inner joins applied left-to-right.
    pub joins: Vec<JoinClause>,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<String>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// Number of `?` bind-parameter slots referenced anywhere in the
    /// statement (one past the highest index), including join predicates
    /// and subqueries.
    pub fn param_count(&self) -> usize {
        let mut n = 0usize;
        self.for_each_expr(&mut |e| n = n.max(e.param_count()));
        n
    }

    /// Visits every expression directly embedded in the statement
    /// (subquery bodies are reached through [`Expr::param_count`] and
    /// friends, not this visitor).
    pub(crate) fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        if let Some(filter) = &self.filter {
            f(filter);
        }
        for item in &self.items {
            if let SelectItem::Expr { expr, .. } = item {
                f(expr);
            }
        }
        for join in &self.joins {
            f(&join.on);
        }
    }
}

/// An `INSERT` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Optional explicit column list; when empty the full schema order is used.
    pub columns: Vec<String>,
    /// One or more value rows (literal expressions, evaluated against an empty row).
    pub rows: Vec<Vec<Expr>>,
}

/// An `UPDATE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET column = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
}

/// A `DELETE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
}

/// Any parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `CREATE TABLE ...`.
    CreateTable(Schema),
    /// `CREATE [UNIQUE] INDEX ON table (column)`.
    CreateIndex {
        /// Target table.
        table: String,
        /// Indexed column.
        column: String,
        /// Whether duplicates are rejected.
        unique: bool,
    },
    /// `DROP TABLE name`.
    DropTable(String),
    /// `SELECT ...`.
    Select(SelectStmt),
    /// `INSERT ...`.
    Insert(InsertStmt),
    /// `UPDATE ...`.
    Update(UpdateStmt),
    /// `DELETE ...`.
    Delete(DeleteStmt),
    /// `BEGIN [TRANSACTION]`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
    /// `ANALYZE [table]` — collect planner statistics for one table or for
    /// every table in the catalog.
    Analyze(Option<String>),
    /// `EXPLAIN [ANALYZE] <select>` — render the chosen plan as rows;
    /// with ANALYZE, execute the query and annotate operators with actual
    /// row counts and timings.
    Explain {
        /// Whether to execute and report actuals (`EXPLAIN ANALYZE`).
        analyze: bool,
        /// The SELECT being explained.
        select: SelectStmt,
    },
}

impl Statement {
    /// True for statements that only read data. `EXPLAIN ANALYZE` executes
    /// its SELECT, which is itself read-only; `ANALYZE` mutates catalog-held
    /// statistics and is treated as a write.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Statement::Select(_) | Statement::Explain { .. })
    }

    /// Number of `?` bind-parameter slots in the statement (one past the
    /// highest parameter index).
    pub fn param_count(&self) -> usize {
        let mut n = 0usize;
        self.for_each_expr(&mut |e| n = n.max(e.param_count()));
        n
    }

    /// Visits every expression embedded in the statement.
    fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Statement::Select(sel) | Statement::Explain { select: sel, .. } => {
                sel.for_each_expr(f);
            }
            Statement::Insert(ins) => {
                for row in &ins.rows {
                    for expr in row {
                        f(expr);
                    }
                }
            }
            Statement::Update(upd) => {
                for (_, expr) in &upd.assignments {
                    f(expr);
                }
                if let Some(filter) = &upd.filter {
                    f(filter);
                }
            }
            Statement::Delete(del) => {
                if let Some(filter) = &del.filter {
                    f(filter);
                }
            }
            Statement::CreateTable(_)
            | Statement::CreateIndex { .. }
            | Statement::DropTable(_)
            | Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Analyze(_) => {}
        }
    }

    /// The table this statement primarily targets, if any.
    pub fn target_table(&self) -> Option<&str> {
        match self {
            Statement::CreateTable(s) => Some(&s.name),
            Statement::CreateIndex { table, .. } => Some(table),
            Statement::DropTable(t) => Some(t),
            Statement::Select(s) => Some(&s.table),
            Statement::Insert(s) => Some(&s.table),
            Statement::Update(s) => Some(&s.table),
            Statement::Delete(s) => Some(&s.table),
            Statement::Analyze(t) => t.as_deref(),
            Statement::Explain { select, .. } => Some(&select.table),
            Statement::Begin | Statement::Commit | Statement::Rollback => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    #[test]
    fn statement_classification() {
        let sel = Statement::Select(SelectStmt {
            items: vec![SelectItem::Wildcard],
            table: "jobs".into(),
            joins: vec![],
            filter: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        });
        assert!(sel.is_read_only());
        assert_eq!(sel.target_table(), Some("jobs"));

        let ct = Statement::CreateTable(Schema::new(
            "jobs",
            vec![Column::new("job_id", DataType::Int)],
        ));
        assert!(!ct.is_read_only());
        assert_eq!(ct.target_table(), Some("jobs"));
        assert_eq!(Statement::Begin.target_table(), None);

        // ANALYZE mutates catalog-held statistics; EXPLAIN only reads.
        let an = Statement::Analyze(Some("jobs".into()));
        assert!(!an.is_read_only());
        assert_eq!(an.target_table(), Some("jobs"));
        assert_eq!(Statement::Analyze(None).target_table(), None);
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::Count.name(), "COUNT");
        assert_eq!(AggFunc::Avg.name(), "AVG");
    }

    #[test]
    fn param_count_covers_every_statement_kind() {
        use crate::sql::parser::parse;

        assert_eq!(parse("UPDATE jobs SET state = ? WHERE job_id = ?").unwrap().param_count(), 2);
        assert_eq!(parse("INSERT INTO jobs (job_id, owner) VALUES (?, ?)").unwrap().param_count(), 2);
        assert_eq!(parse("SELECT job_id + ? FROM jobs WHERE owner = ?").unwrap().param_count(), 2);
        assert_eq!(parse("DELETE FROM jobs WHERE job_id = ?").unwrap().param_count(), 1);
        assert_eq!(parse("DROP TABLE jobs").unwrap().param_count(), 0);
        // Parameters inside join predicates, subqueries and EXPLAIN count too.
        assert_eq!(
            parse("SELECT * FROM jobs JOIN runs ON jobs.job_id = runs.job_id WHERE owner = ?")
                .unwrap()
                .param_count(),
            1
        );
        assert_eq!(
            parse("SELECT * FROM jobs WHERE owner IN (SELECT name FROM users WHERE quota > ?)")
                .unwrap()
                .param_count(),
            1
        );
        assert_eq!(
            parse("EXPLAIN SELECT * FROM jobs WHERE job_id = ?").unwrap().param_count(),
            1
        );
    }
}
