//! The SQL front-end: lexer, AST and parser for the supported subset.
//!
//! The subset covers what the CondorJ2 application server needs to express
//! every service call as SQL: `CREATE TABLE` / `CREATE INDEX` / `DROP TABLE`,
//! `INSERT`, single-table `UPDATE` and `DELETE`, and `SELECT` with inner
//! joins, `WHERE`, `GROUP BY` + aggregates, `ORDER BY` and `LIMIT`, plus
//! `BEGIN` / `COMMIT` / `ROLLBACK`.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::Statement;
pub use parser::{parse, parse_script};
