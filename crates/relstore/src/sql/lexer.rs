//! Tokeniser for the SQL subset.

use crate::error::{Error, Result};
use std::fmt;

/// A single SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword or bare identifier (stored upper-case for keywords matching).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `;`.
    Semicolon,
    /// `*`.
    Star,
    /// `.`.
    Dot,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `?` — a positional bind-parameter placeholder.
    Param,
}

impl Token {
    /// Returns the identifier text if this token is an identifier/keyword.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Dot => write!(f, "."),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Param => write!(f, "?"),
        }
    }
}

/// Tokenises `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Param);
                i += 1;
            }
            '-' => {
                // `--` starts a comment that runs to end of line.
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(Error::parse("unexpected '!'"));
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' as the escape for a single quote.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(Error::parse("unterminated string literal"));
                    }
                    if chars[i] == '\'' {
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    if chars[i] == '.' {
                        // A second dot ends the number (e.g. ranges are not supported).
                        if is_float {
                            break;
                        }
                        // A dot not followed by a digit is a separate token.
                        if i + 1 >= chars.len() || !chars[i + 1].is_ascii_digit() {
                            break;
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| Error::parse(format!("bad float literal {text}")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| Error::parse(format!("bad integer literal {text}")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::Ident(text));
            }
            other => {
                return Err(Error::parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_select() {
        let toks = tokenize("SELECT * FROM jobs WHERE state = 'idle' AND job_id >= 10;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Star);
        assert!(toks.contains(&Token::Str("idle".into())));
        assert!(toks.contains(&Token::Ge));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn tokenizes_numbers() {
        let toks = tokenize("1 2.5 -3 10.0").unwrap();
        assert_eq!(toks[0], Token::Int(1));
        assert_eq!(toks[1], Token::Float(2.5));
        assert_eq!(toks[2], Token::Minus);
        assert_eq!(toks[3], Token::Int(3));
        assert_eq!(toks[4], Token::Float(10.0));
    }

    #[test]
    fn string_escape_and_errors() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn bind_parameter_placeholders() {
        let toks = tokenize("SELECT * FROM jobs WHERE job_id = ? AND state = ?").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Param).count(), 2);
        assert_eq!(Token::Param.to_string(), "?");
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a <= b >= c <> d != e < f > g").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
        assert_eq!(toks.iter().filter(|t| **t == Token::Ne).count(), 2);
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Gt));
    }

    #[test]
    fn keyword_helper() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].is_keyword("SELECT"));
        assert!(toks[0].is_keyword("select"));
        assert!(!toks[0].is_keyword("FROM"));
    }

    #[test]
    fn qualified_names() {
        let toks = tokenize("jobs.job_id").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("jobs".into()),
                Token::Dot,
                Token::Ident("job_id".into())
            ]
        );
    }
}
