//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (informal):
//!
//! ```text
//! statement  := create_table | create_index | drop_table | select | insert
//!             | update | delete | BEGIN | COMMIT | ROLLBACK
//!             | EXPLAIN [ANALYZE] select | ANALYZE [ident]
//! select     := SELECT items FROM ident join* [WHERE expr] [GROUP BY cols]
//!               [ORDER BY key (, key)*] [LIMIT int]
//! join       := JOIN ident ON expr
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | cmp_expr
//! cmp_expr   := add_expr [(= | <> | < | <= | > | >=) add_expr
//!             | IS [NOT] NULL
//!             | IN '(' (literal (, literal)* | select) ')']
//! add_expr   := mul_expr ((+|-) mul_expr)*
//! mul_expr   := unary ((*|/) unary)*
//! unary      := - unary | primary
//! primary    := literal | colref | '(' expr ')' | '(' select ')'
//! ```

use crate::error::{Error, Result};
use crate::predicate::{ArithOp, CmpOp, Expr};
use crate::schema::{Column, Schema};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token};
use crate::value::{DataType, Value};

/// Parses a single SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.parse_statement()?;
    p.consume_if(&Token::Semicolon);
    if !p.at_end() {
        return Err(Error::parse(format!(
            "unexpected trailing token {}",
            p.peek_desc()
        )));
    }
    Ok(stmt)
}

/// Parses a semicolon-separated script into a list of statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let mut out = Vec::new();
    for piece in sql.split(';') {
        if piece.trim().is_empty() {
            continue;
        }
        out.push(parse(piece)?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far; each gets the next index.
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek().map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
    }

    fn next(&mut self) -> Result<Token> {
        let tok = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::parse("unexpected end of input"))?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        let got = self.next()?;
        if &got == tok {
            Ok(())
        } else {
            Err(Error::parse(format!("expected {tok}, got {got}")))
        }
    }

    fn consume_if(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let got = self.next()?;
        if got.is_keyword(kw) {
            Ok(())
        } else {
            Err(Error::parse(format!("expected {kw}, got {got}")))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false)
    }

    fn expect_ident(&mut self) -> Result<String> {
        let got = self.next()?;
        match got {
            Token::Ident(s) => Ok(s.to_ascii_lowercase()),
            other => Err(Error::parse(format!("expected identifier, got {other}"))),
        }
    }

    /// A column reference, possibly qualified (`table.column`); the qualifier
    /// is folded into the flat joined-schema column name used by the executor.
    fn expect_column_ref(&mut self) -> Result<String> {
        let first = self.expect_ident()?;
        if self.consume_if(&Token::Dot) {
            let second = self.expect_ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        let tok = self
            .peek()
            .cloned()
            .ok_or_else(|| Error::parse("empty statement"))?;
        let kw = tok
            .as_ident()
            .map(|s| s.to_ascii_uppercase())
            .unwrap_or_default();
        match kw.as_str() {
            "CREATE" => self.parse_create(),
            "DROP" => self.parse_drop(),
            "SELECT" => self.parse_select().map(Statement::Select),
            "INSERT" => self.parse_insert().map(Statement::Insert),
            "UPDATE" => self.parse_update().map(Statement::Update),
            "DELETE" => self.parse_delete().map(Statement::Delete),
            "BEGIN" | "START" => {
                self.next()?;
                self.consume_keyword("TRANSACTION");
                self.consume_keyword("WORK");
                Ok(Statement::Begin)
            }
            "COMMIT" => {
                self.next()?;
                self.consume_keyword("WORK");
                Ok(Statement::Commit)
            }
            "ROLLBACK" | "ABORT" => {
                self.next()?;
                self.consume_keyword("WORK");
                Ok(Statement::Rollback)
            }
            "EXPLAIN" => {
                self.next()?;
                let analyze = self.consume_keyword("ANALYZE");
                if !self.peek_keyword("SELECT") {
                    return Err(Error::parse("EXPLAIN supports only SELECT statements"));
                }
                let select = self.parse_select()?;
                Ok(Statement::Explain { analyze, select })
            }
            "ANALYZE" => {
                self.next()?;
                let table = if self.at_end() || self.peek() == Some(&Token::Semicolon) {
                    None
                } else {
                    Some(self.expect_ident()?)
                };
                Ok(Statement::Analyze(table))
            }
            _ => Err(Error::parse(format!("unsupported statement starting with {tok}"))),
        }
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        if self.consume_keyword("TABLE") {
            return self.parse_create_table();
        }
        let unique = self.consume_keyword("UNIQUE");
        if self.consume_keyword("INDEX") {
            // Optional index name is accepted and ignored (names are derived).
            if !self.peek_keyword("ON") {
                let _ = self.expect_ident()?;
            }
            self.expect_keyword("ON")?;
            let table = self.expect_ident()?;
            self.expect(&Token::LParen)?;
            let column = self.expect_ident()?;
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateIndex {
                table,
                column,
                unique,
            });
        }
        Err(Error::parse("expected TABLE or INDEX after CREATE"))
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        let name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        loop {
            let col_name = self.expect_ident()?;
            let ty = self.parse_data_type()?;
            let mut column = Column::new(col_name.clone(), ty);
            loop {
                if self.consume_keyword("NOT") {
                    self.expect_keyword("NULL")?;
                    column.not_null = true;
                } else if self.consume_keyword("PRIMARY") {
                    self.expect_keyword("KEY")?;
                    primary_key = Some(col_name.clone());
                    column.not_null = true;
                } else {
                    break;
                }
            }
            columns.push(column);
            if self.consume_if(&Token::Comma) {
                continue;
            }
            self.expect(&Token::RParen)?;
            break;
        }
        let mut schema = Schema::new(name, columns);
        if let Some(pk) = primary_key {
            schema = schema.with_primary_key(pk);
        }
        Ok(Statement::CreateTable(schema))
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let ident = self.expect_ident()?;
        match ident.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "DOUBLE" | "FLOAT" | "REAL" => Ok(DataType::Double),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => {
                // Accept an optional length such as VARCHAR(255) and ignore it.
                if self.consume_if(&Token::LParen) {
                    let _ = self.next()?;
                    self.expect(&Token::RParen)?;
                }
                Ok(DataType::Text)
            }
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "TIMESTAMP" | "DATETIME" => Ok(DataType::Timestamp),
            other => Err(Error::parse(format!("unknown data type {other}"))),
        }
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        let name = self.expect_ident()?;
        Ok(Statement::DropTable(name))
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let mut joins = Vec::new();
        while self.consume_keyword("JOIN") || {
            if self.peek_keyword("INNER") {
                self.pos += 1;
                self.expect_keyword("JOIN")?;
                true
            } else {
                false
            }
        } {
            let join_table = self.expect_ident()?;
            self.expect_keyword("ON")?;
            // A general predicate: the common `a.x = b.y` equality becomes a
            // hash join, anything else a nested-loop join.
            let on = self.parse_expr()?;
            joins.push(JoinClause {
                table: join_table,
                on,
            });
        }
        let filter = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.consume_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expect_column_ref()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.consume_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let column = self.expect_column_ref()?;
                let order = if self.consume_keyword("DESC") {
                    SortOrder::Desc
                } else {
                    self.consume_keyword("ASC");
                    SortOrder::Asc
                };
                order_by.push(OrderKey { column, order });
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.consume_keyword("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(Error::parse(format!("expected LIMIT count, got {other}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            table,
            joins,
            filter,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.consume_if(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate function?
        if let Some(Token::Ident(name)) = self.peek() {
            let func = match name.to_ascii_uppercase().as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2; // consume name and '('
                    let column = if self.consume_if(&Token::Star) {
                        None
                    } else {
                        Some(self.expect_column_ref()?)
                    };
                    self.expect(&Token::RParen)?;
                    let alias = self.parse_alias()?;
                    return Ok(SelectItem::Aggregate {
                        func,
                        column,
                        alias,
                    });
                }
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.consume_keyword("AS") {
            Ok(Some(self.expect_ident()?))
        } else {
            Ok(None)
        }
    }

    fn parse_insert(&mut self) -> Result<InsertStmt> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.consume_if(&Token::LParen) {
            loop {
                columns.push(self.expect_ident()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        Ok(InsertStmt {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> Result<UpdateStmt> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.expect_ident()?;
            self.expect(&Token::Eq)?;
            let expr = self.parse_expr()?;
            assignments.push((column, expr));
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        let filter = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(UpdateStmt {
            table,
            assignments,
            filter,
        })
    }

    fn parse_delete(&mut self) -> Result<DeleteStmt> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let filter = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(DeleteStmt { table, filter })
    }

    // --- expression parsing -------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.consume_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.consume_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.consume_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let left = self.parse_add()?;
        if self.consume_keyword("IS") {
            let negated = self.consume_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(if negated {
                Expr::IsNotNull(Box::new(left))
            } else {
                Expr::IsNull(Box::new(left))
            });
        }
        if self.consume_keyword("BETWEEN") {
            // `a BETWEEN lo AND hi` desugars to `a >= lo AND a <= hi`; the
            // bounds parse at additive precedence so the `AND` belongs to the
            // BETWEEN, not to an enclosing conjunction.
            let lo = self.parse_add()?;
            self.expect_keyword("AND")?;
            let hi = self.parse_add()?;
            return Ok(Expr::And(
                Box::new(Expr::Cmp(CmpOp::Ge, Box::new(left.clone()), Box::new(lo))),
                Box::new(Expr::Cmp(CmpOp::Le, Box::new(left), Box::new(hi))),
            ));
        }
        if self.consume_keyword("IN") {
            self.expect(&Token::LParen)?;
            if self.peek_keyword("SELECT") {
                let sel = self.parse_select()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery(Box::new(left), Box::new(sel)));
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_literal_value()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList(Box::new(left), list));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_add()?;
            return Ok(Expr::Cmp(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => Some(ArithOp::Add),
                Some(Token::Minus) => Some(ArithOp::Sub),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.parse_mul()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => Some(ArithOp::Mul),
                Some(Token::Slash) => Some(ArithOp::Div),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.consume_if(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Double(d)) => Expr::Literal(Value::Double(-d)),
                other => Expr::Arith(
                    ArithOp::Sub,
                    Box::new(Expr::Literal(Value::Int(0))),
                    Box::new(other),
                ),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let tok = self.next()?;
        match tok {
            Token::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            Token::Float(x) => Ok(Expr::Literal(Value::Double(x))),
            Token::Str(s) => Ok(Expr::Literal(Value::Text(s.into()))),
            Token::Param => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Token::LParen => {
                if self.peek_keyword("SELECT") {
                    let sel = self.parse_select()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sel)));
                }
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => Ok(Expr::Literal(Value::Null)),
                    "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
                    _ => {
                        let mut col = name.to_ascii_lowercase();
                        if self.consume_if(&Token::Dot) {
                            let second = self.expect_ident()?;
                            col = format!("{col}.{second}");
                        }
                        Ok(Expr::Column(col))
                    }
                }
            }
            other => Err(Error::parse(format!("unexpected token {other} in expression"))),
        }
    }

    fn parse_literal_value(&mut self) -> Result<Value> {
        let expr = self.parse_unary()?;
        match expr {
            Expr::Literal(v) => Ok(v),
            other => Err(Error::parse(format!("expected literal, got {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_with_constraints() {
        let stmt = parse(
            "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner VARCHAR(64) NOT NULL, \
             runtime DOUBLE, submitted TIMESTAMP, done BOOLEAN)",
        )
        .unwrap();
        let Statement::CreateTable(schema) = stmt else {
            panic!("expected CreateTable");
        };
        assert_eq!(schema.name, "jobs");
        assert_eq!(schema.arity(), 5);
        assert_eq!(schema.primary_key.as_deref(), Some("job_id"));
        assert!(schema.column("owner").unwrap().not_null);
        assert_eq!(schema.column("runtime").unwrap().ty, DataType::Double);
        assert_eq!(schema.column("submitted").unwrap().ty, DataType::Timestamp);
    }

    #[test]
    fn parses_create_index() {
        let stmt = parse("CREATE UNIQUE INDEX idx_name ON machines (name)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateIndex {
                table: "machines".into(),
                column: "name".into(),
                unique: true
            }
        );
        let stmt = parse("CREATE INDEX ON jobs (state)").unwrap();
        assert!(matches!(stmt, Statement::CreateIndex { unique: false, .. }));
    }

    #[test]
    fn parses_select_with_all_clauses() {
        let stmt = parse(
            "SELECT job_id, owner AS submitter FROM jobs WHERE state = 'idle' AND priority >= 5 \
             ORDER BY priority DESC, job_id LIMIT 10",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected Select");
        };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.table, "jobs");
        assert!(sel.filter.is_some());
        assert_eq!(sel.order_by.len(), 2);
        assert_eq!(sel.order_by[0].order, SortOrder::Desc);
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn parses_join_and_aggregates() {
        let stmt = parse(
            "SELECT COUNT(*), AVG(jobs.runtime) AS mean_rt FROM jobs \
             JOIN matches ON jobs.job_id = matches.job_id WHERE matches.state = 'claimed' \
             GROUP BY jobs.owner",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected Select");
        };
        assert_eq!(sel.joins.len(), 1);
        assert_eq!(sel.joins[0].table, "matches");
        assert_eq!(
            sel.joins[0].equi_columns(),
            Some(("jobs.job_id", "matches.job_id"))
        );
        assert_eq!(sel.group_by, vec!["jobs.owner".to_string()]);
        assert!(matches!(
            sel.items[0],
            SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None,
                ..
            }
        ));
        assert!(matches!(
            &sel.items[1],
            SelectItem::Aggregate {
                func: AggFunc::Avg,
                column: Some(c),
                alias: Some(a)
            } if c == "jobs.runtime" && a == "mean_rt"
        ));
    }

    #[test]
    fn parses_insert_update_delete() {
        let stmt = parse(
            "INSERT INTO jobs (job_id, owner, state) VALUES (1, 'alice', 'idle'), (2, 'bob', 'idle')",
        )
        .unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!("expected Insert");
        };
        assert_eq!(ins.columns, vec!["job_id", "owner", "state"]);
        assert_eq!(ins.rows.len(), 2);

        let stmt = parse("UPDATE machines SET state = 'busy', load = load + 0.5 WHERE machine_id = 7")
            .unwrap();
        let Statement::Update(upd) = stmt else {
            panic!("expected Update");
        };
        assert_eq!(upd.assignments.len(), 2);
        assert!(upd.filter.is_some());

        let stmt = parse("DELETE FROM matches WHERE job_id = 3").unwrap();
        assert!(matches!(stmt, Statement::Delete(_)));
    }

    #[test]
    fn parses_transaction_control() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parses_null_handling_and_in_lists() {
        let stmt = parse("SELECT * FROM jobs WHERE finished IS NOT NULL AND state IN ('idle', 'held')")
            .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected Select");
        };
        let filter = sel.filter.unwrap();
        let shown = filter.to_string();
        assert!(shown.contains("IS NOT NULL"));
        assert!(shown.contains("IN ('idle', 'held')"));
    }

    #[test]
    fn negative_numbers_and_arithmetic() {
        let stmt = parse("SELECT runtime * 2 + 1 FROM jobs WHERE priority = -3").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected Select");
        };
        assert!(sel.filter.unwrap().to_string().contains("-3"));
    }

    #[test]
    fn parses_bind_parameters_in_order() {
        let stmt = parse("SELECT * FROM jobs WHERE state = ? AND job_id > ?").unwrap();
        assert_eq!(stmt.param_count(), 2);
        let Statement::Select(sel) = &stmt else {
            panic!("expected Select");
        };
        assert_eq!(sel.filter.as_ref().unwrap().to_string(), "((state = ?) AND (job_id > ?))");

        let stmt = parse("INSERT INTO jobs (job_id, owner) VALUES (?, ?), (?, ?)").unwrap();
        assert_eq!(stmt.param_count(), 4);
        let stmt = parse("UPDATE jobs SET state = ?, runtime = runtime + ? WHERE job_id = ?").unwrap();
        assert_eq!(stmt.param_count(), 3);
        let stmt = parse("DELETE FROM jobs WHERE owner = ?").unwrap();
        assert_eq!(stmt.param_count(), 1);
        assert_eq!(parse("SELECT * FROM jobs").unwrap().param_count(), 0);
    }

    #[test]
    fn parses_between_as_inclusive_range() {
        let stmt = parse("SELECT * FROM jobs WHERE runtime BETWEEN 10 AND 20 AND state = 'idle'")
            .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected Select");
        };
        let shown = sel.filter.unwrap().to_string();
        assert_eq!(
            shown,
            "(((runtime >= 10) AND (runtime <= 20)) AND (state = 'idle'))"
        );
    }

    #[test]
    fn parses_non_equi_and_compound_join_predicates() {
        let stmt = parse(
            "SELECT * FROM jobs JOIN machines ON jobs.req_mem <= machines.mem \
             AND machines.state = 'idle'",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected Select");
        };
        assert_eq!(sel.joins.len(), 1);
        // A compound predicate is not a single equality, so no hash-join key.
        assert_eq!(sel.joins[0].equi_columns(), None);
        assert!(sel.joins[0].on.to_string().contains("<="));
        assert!(sel.filter.is_none());
    }

    #[test]
    fn parses_explain_and_analyze() {
        let stmt = parse("EXPLAIN SELECT * FROM jobs WHERE job_id = 1").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: false, .. }));
        assert!(stmt.is_read_only());
        let stmt = parse("EXPLAIN ANALYZE SELECT * FROM jobs").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: true, .. }));

        assert_eq!(parse("ANALYZE").unwrap(), Statement::Analyze(None));
        assert_eq!(parse("ANALYZE jobs;").unwrap(), Statement::Analyze(Some("jobs".into())));
        // Only SELECT can be explained.
        assert!(parse("EXPLAIN DELETE FROM jobs").is_err());
    }

    #[test]
    fn parses_subqueries_in_where() {
        let stmt = parse(
            "SELECT * FROM jobs WHERE owner IN (SELECT name FROM users WHERE quota > 0)",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected Select");
        };
        let filter = sel.filter.unwrap();
        assert!(filter.contains_subquery());
        let Expr::InSubquery(lhs, sub) = filter else {
            panic!("expected InSubquery, got {filter:?}");
        };
        assert_eq!(*lhs, Expr::Column("owner".into()));
        assert_eq!(sub.table, "users");

        let stmt = parse(
            "SELECT * FROM jobs WHERE priority > (SELECT AVG(priority) FROM jobs)",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected Select");
        };
        let filter = sel.filter.unwrap();
        assert!(filter.contains_subquery());
        assert!(filter.to_string().contains("SELECT"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT FROM jobs").is_err());
        assert!(parse("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("SELECT * FROM t WHERE a = ").is_err());
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
        assert!(parse("TRUNCATE t").is_err());
        assert!(parse("SELECT * FROM t extra junk").is_err());
    }

    #[test]
    fn parse_script_splits_statements() {
        let stmts = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }
}
