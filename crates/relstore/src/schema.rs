//! Table schemas: columns, primary keys, and index definitions.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::Arc;

/// Lower-cases a table/column name without allocating when it is already
/// lower-case (the common case for parser output and internal callers).
/// Shared by every catalog/lock lookup on the statement hot path.
pub(crate) fn lower_name(name: &str) -> Cow<'_, str> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(name.to_ascii_lowercase())
    } else {
        Cow::Borrowed(name)
    }
}

/// Interns an identifier as a shared lower-case `Arc<str>`. Column names are
/// allocated once here, at schema-definition time; query results then clone
/// the `Arc` instead of re-allocating the `String` per query.
pub(crate) fn intern_lower(name: impl AsRef<str> + Into<Arc<str>>) -> Arc<str> {
    if name.as_ref().bytes().any(|b| b.is_ascii_uppercase()) {
        Arc::from(name.as_ref().to_ascii_lowercase())
    } else {
        name.into()
    }
}

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (case-insensitive, stored lower-case, shared with every
    /// query result that projects the column).
    pub name: Arc<str>,
    /// Declared data type.
    pub ty: DataType,
    /// Whether NULL values are rejected on insert/update.
    pub not_null: bool,
}

impl Column {
    /// Creates a nullable column.
    pub fn new(name: impl AsRef<str> + Into<Arc<str>>, ty: DataType) -> Self {
        Column {
            name: intern_lower(name),
            ty,
            not_null: false,
        }
    }

    /// Creates a NOT NULL column.
    pub fn not_null(name: impl AsRef<str> + Into<Arc<str>>, ty: DataType) -> Self {
        Column {
            name: intern_lower(name),
            ty,
            not_null: true,
        }
    }
}

/// Definition of a secondary index over one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Indexed column name.
    pub column: String,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
}

/// A table schema: ordered columns plus an optional single-column primary key
/// and any number of secondary indexes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Table name (case-insensitive, stored lower-case).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Name of the primary-key column, if any.
    pub primary_key: Option<String>,
    /// Secondary index definitions.
    pub indexes: Vec<IndexDef>,
}

impl Schema {
    /// Creates a new schema with the given name and columns.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Schema {
            name: name.into().to_ascii_lowercase(),
            columns,
            primary_key: None,
            indexes: Vec::new(),
        }
    }

    /// Builder-style: declares `column` as the primary key.
    pub fn with_primary_key(mut self, column: impl Into<String>) -> Self {
        self.primary_key = Some(column.into().to_ascii_lowercase());
        self
    }

    /// Builder-style: adds a (non-unique) secondary index on `column`.
    pub fn with_index(mut self, column: impl Into<String>) -> Self {
        let column = column.into().to_ascii_lowercase();
        let name = format!("idx_{}_{}", self.name, column);
        self.indexes.push(IndexDef {
            name,
            column,
            unique: false,
        });
        self
    }

    /// Builder-style: adds a unique secondary index on `column`.
    pub fn with_unique_index(mut self, column: impl Into<String>) -> Self {
        let column = column.into().to_ascii_lowercase();
        let name = format!("uidx_{}_{}", self.name, column);
        self.indexes.push(IndexDef {
            name,
            column,
            unique: true,
        });
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Looks up the ordinal position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        let lname = lower_name(name);
        self.columns
            .iter()
            .position(|c| *c.name == *lname)
            .ok_or_else(|| Error::not_found(format!("column {name} in table {}", self.name)))
    }

    /// Returns the column definition by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.column_index(name)?;
        Ok(&self.columns[idx])
    }

    /// Returns the ordinal of the primary-key column, if declared.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.primary_key
            .as_deref()
            .and_then(|pk| self.columns.iter().position(|c| *c.name == *pk))
    }

    /// Validates a full row against the schema: arity, types, NOT NULL.
    /// Returns the row with values coerced to the declared column types.
    pub fn validate_row(&self, values: Vec<Value>) -> Result<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(Error::type_err(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        let mut out = Vec::with_capacity(values.len());
        for (value, col) in values.into_iter().zip(&self.columns) {
            if value.is_null() && col.not_null {
                return Err(Error::constraint(format!(
                    "column {}.{} is NOT NULL",
                    self.name, col.name
                )));
            }
            if !value.is_compatible_with(col.ty) {
                return Err(Error::type_err(format!(
                    "column {}.{} has type {}, got {}",
                    self.name, col.name, col.ty, value
                )));
            }
            out.push(value.coerce_to(col.ty)?);
        }
        Ok(out)
    }

    /// Validates the schema definition itself: unique column names, the
    /// primary key and all index columns must exist.
    pub fn validate(&self) -> Result<()> {
        if self.columns.is_empty() {
            return Err(Error::type_err(format!("table {} has no columns", self.name)));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|p| p.name == c.name) {
                return Err(Error::AlreadyExists(format!(
                    "duplicate column {} in table {}",
                    c.name, self.name
                )));
            }
        }
        if let Some(pk) = &self.primary_key {
            self.column_index(pk)?;
        }
        for idx in &self.indexes {
            self.column_index(&idx.column)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_schema() -> Schema {
        Schema::new(
            "jobs",
            vec![
                Column::not_null("job_id", DataType::Int),
                Column::not_null("owner", DataType::Text),
                Column::new("state", DataType::Text),
                Column::new("runtime", DataType::Double),
            ],
        )
        .with_primary_key("job_id")
        .with_index("state")
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = jobs_schema();
        assert_eq!(s.column_index("JOB_ID").unwrap(), 0);
        assert_eq!(s.column_index("State").unwrap(), 2);
        assert!(s.column_index("missing").is_err());
    }

    #[test]
    fn primary_key_index_resolves() {
        let s = jobs_schema();
        assert_eq!(s.primary_key_index(), Some(0));
        let s2 = Schema::new("t", vec![Column::new("a", DataType::Int)]);
        assert_eq!(s2.primary_key_index(), None);
    }

    #[test]
    fn validate_row_checks_arity_types_nulls() {
        let s = jobs_schema();
        let ok = s
            .validate_row(vec![
                Value::Int(1),
                Value::Text("alice".into()),
                Value::Text("idle".into()),
                Value::Int(30),
            ])
            .unwrap();
        // INT literal coerced into the DOUBLE column.
        assert_eq!(ok[3], Value::Double(30.0));

        assert!(s
            .validate_row(vec![Value::Int(1), Value::Text("a".into())])
            .is_err());
        assert!(s
            .validate_row(vec![
                Value::Null,
                Value::Text("a".into()),
                Value::Null,
                Value::Null
            ])
            .is_err());
        assert!(s
            .validate_row(vec![
                Value::Int(1),
                Value::Int(5),
                Value::Null,
                Value::Null
            ])
            .is_err());
    }

    #[test]
    fn schema_validation_rejects_bad_definitions() {
        let dup = Schema::new(
            "t",
            vec![Column::new("a", DataType::Int), Column::new("a", DataType::Int)],
        );
        assert!(dup.validate().is_err());

        let bad_pk = Schema::new("t", vec![Column::new("a", DataType::Int)]).with_primary_key("b");
        assert!(bad_pk.validate().is_err());

        let bad_idx = Schema::new("t", vec![Column::new("a", DataType::Int)]).with_index("zzz");
        assert!(bad_idx.validate().is_err());

        assert!(jobs_schema().validate().is_ok());
    }

    #[test]
    fn index_builders_name_indexes() {
        let s = jobs_schema().with_unique_index("owner");
        assert_eq!(s.indexes.len(), 2);
        assert!(s.indexes[0].name.starts_with("idx_jobs_"));
        assert!(s.indexes[1].unique);
    }
}
