//! CRC-32 (IEEE 802.3 polynomial), hand-rolled and dependency-free.
//!
//! The durable log checksums every record header and payload so that
//! recovery can distinguish "the machine died mid-write" (a torn tail,
//! repaired by truncation) from "the media rotted" (corruption, which fails
//! loudly). A table-driven byte-at-a-time implementation is plenty: the log
//! write path is dominated by the fsync, not the checksum.

/// The reflected IEEE polynomial used by zlib, Ethernet and friends.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
