//! Binary encoding of logical WAL records: hand-rolled, serde-free.
//!
//! This mirrors the `crates/wire` codec idiom — little-endian fixed-width
//! integers and length-prefixed strings appended to a `Vec<u8>`, read back
//! through a bounds-checked [`Reader`] — but lives in `relstore` because the
//! wire crate depends on this one. Decoding a damaged log **never panics**:
//! a truncated buffer, an oversized length prefix or an unknown tag surfaces
//! as a clean [`Error::Corruption`]. (The record framing in
//! [`super::record`] decides whether damage is a repairable torn tail or
//! hard corruption; by the time payload decoding runs, the payload has
//! already passed its CRC, so any decode failure here is corruption.)

use crate::error::{Error, Result};
use crate::schema::{Column, IndexDef, Schema};
use crate::tuple::{Row, RowId};
use crate::value::{DataType, Value};
use crate::wal::{LogRecord, TableSnapshot, TxnId};
use std::sync::Arc;

/// Maximum nesting depth accepted when decoding [`LogRecord::Batch`]. The
/// engine itself writes flat batches; the cap only bounds stack use against
/// a log that passed its CRC yet still nests absurdly.
const MAX_BATCH_DEPTH: usize = 8;

// --- writing -----------------------------------------------------------------

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian u16.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u32.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian i64 (two's complement).
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an f64 by bit pattern — non-finite values round-trip exactly.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string (u32 length + bytes).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends one [`Value`] as a tag byte plus its payload (same tag scheme as
/// the wire protocol: 0=Null 1=Int 2=Double 3=Text 4=Bool 5=Timestamp).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Int(i) => {
            put_u8(buf, 1);
            put_i64(buf, *i);
        }
        Value::Double(d) => {
            put_u8(buf, 2);
            put_f64(buf, *d);
        }
        Value::Text(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            put_u8(buf, 4);
            put_u8(buf, u8::from(*b));
        }
        Value::Timestamp(t) => {
            put_u8(buf, 5);
            put_i64(buf, *t);
        }
    }
}

/// Appends one row (u16 value count + values).
pub fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u16(buf, row.values.len() as u16);
    for v in &row.values {
        put_value(buf, v);
    }
}

fn put_data_type(buf: &mut Vec<u8>, ty: DataType) {
    put_u8(
        buf,
        match ty {
            DataType::Int => 0,
            DataType::Double => 1,
            DataType::Text => 2,
            DataType::Bool => 3,
            DataType::Timestamp => 4,
        },
    );
}

/// Appends a full table schema: name, columns, primary key, index defs.
pub fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_str(buf, &schema.name);
    put_u16(buf, schema.columns.len() as u16);
    for col in &schema.columns {
        put_str(buf, &col.name);
        put_data_type(buf, col.ty);
        put_u8(buf, u8::from(col.not_null));
    }
    match &schema.primary_key {
        None => put_u8(buf, 0),
        Some(pk) => {
            put_u8(buf, 1);
            put_str(buf, pk);
        }
    }
    put_u16(buf, schema.indexes.len() as u16);
    for idx in &schema.indexes {
        put_str(buf, &idx.name);
        put_str(buf, &idx.column);
        put_u8(buf, u8::from(idx.unique));
    }
}

/// Appends a checkpoint table snapshot: schema plus every visible row.
pub fn put_snapshot(buf: &mut Vec<u8>, snap: &TableSnapshot) {
    put_schema(buf, &snap.schema);
    put_u64(buf, snap.rows.len() as u64);
    for (row_id, row) in &snap.rows {
        put_u64(buf, row_id.0);
        put_row(buf, row);
    }
}

/// Appends one logical [`LogRecord`] (kind tag + fields).
pub fn put_record(buf: &mut Vec<u8>, record: &LogRecord) {
    match record {
        LogRecord::Begin { txn } => {
            put_u8(buf, 1);
            put_u64(buf, txn.0);
        }
        LogRecord::Commit { txn } => {
            put_u8(buf, 2);
            put_u64(buf, txn.0);
        }
        LogRecord::Abort { txn } => {
            put_u8(buf, 3);
            put_u64(buf, txn.0);
        }
        LogRecord::CreateTable { txn, schema } => {
            put_u8(buf, 4);
            put_u64(buf, txn.0);
            put_schema(buf, schema);
        }
        LogRecord::DropTable { txn, table } => {
            put_u8(buf, 5);
            put_u64(buf, txn.0);
            put_str(buf, table);
        }
        LogRecord::Insert { txn, table, row_id, row } => {
            put_u8(buf, 6);
            put_u64(buf, txn.0);
            put_str(buf, table);
            put_u64(buf, row_id.0);
            put_row(buf, row);
        }
        LogRecord::Delete { txn, table, row_id, before } => {
            put_u8(buf, 7);
            put_u64(buf, txn.0);
            put_str(buf, table);
            put_u64(buf, row_id.0);
            put_row(buf, before);
        }
        LogRecord::Update { txn, table, row_id, before, after } => {
            put_u8(buf, 8);
            put_u64(buf, txn.0);
            put_str(buf, table);
            put_u64(buf, row_id.0);
            put_row(buf, before);
            put_row(buf, after);
        }
        LogRecord::Batch { txn, changes } => {
            put_u8(buf, 9);
            put_u64(buf, txn.0);
            put_u32(buf, changes.len() as u32);
            for change in changes {
                put_record(buf, change);
            }
        }
        LogRecord::Checkpoint { snapshot } => {
            put_u8(buf, 10);
            put_u32(buf, snapshot.len() as u32);
            for table in snapshot {
                put_snapshot(buf, table);
            }
        }
    }
}

// --- reading -----------------------------------------------------------------

/// A bounds-checked cursor over one decoded record payload.
///
/// Every accessor returns [`Error::Corruption`] instead of panicking when
/// the buffer is shorter than the encoding claims, and collection counts are
/// validated against the bytes actually remaining before anything is
/// allocated, so a damaged length prefix cannot force a huge allocation.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over one record payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corruption(format!(
                "truncated record payload: wanted {n} more byte(s), {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 by bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(Error::corruption(format!(
                "truncated record payload: string claims {n} byte(s), {} remain",
                self.remaining()
            )));
        }
        std::str::from_utf8(self.take(n)?)
            .map_err(|e| Error::corruption(format!("record carries invalid UTF-8: {e}")))
    }

    /// Reads one [`Value`].
    pub fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Double(self.f64()?)),
            3 => Ok(Value::Text(Arc::from(self.str()?))),
            4 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                other => Err(Error::corruption(format!("invalid BOOL byte {other}"))),
            },
            5 => Ok(Value::Timestamp(self.i64()?)),
            tag => Err(Error::corruption(format!("unknown value tag {tag}"))),
        }
    }

    /// Reads one row, validating the value count against the bytes
    /// remaining before allocating.
    pub fn row(&mut self) -> Result<Row> {
        let n = self.u16()? as usize;
        if n > self.remaining() {
            return Err(Error::corruption(format!(
                "truncated record payload: row claims {n} value(s), {} byte(s) remain",
                self.remaining()
            )));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.value()?);
        }
        Ok(Row::new(values))
    }

    fn data_type(&mut self) -> Result<DataType> {
        match self.u8()? {
            0 => Ok(DataType::Int),
            1 => Ok(DataType::Double),
            2 => Ok(DataType::Text),
            3 => Ok(DataType::Bool),
            4 => Ok(DataType::Timestamp),
            tag => Err(Error::corruption(format!("unknown data type tag {tag}"))),
        }
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::corruption(format!("invalid flag byte {other}"))),
        }
    }

    /// Reads one table schema.
    pub fn schema(&mut self) -> Result<Schema> {
        let name = self.str()?.to_string();
        let col_count = self.u16()? as usize;
        if col_count > self.remaining() {
            return Err(Error::corruption(format!(
                "schema claims {col_count} column(s), {} byte(s) remain",
                self.remaining()
            )));
        }
        let mut columns = Vec::with_capacity(col_count);
        for _ in 0..col_count {
            let col_name = self.str()?.to_string();
            let ty = self.data_type()?;
            let not_null = self.bool()?;
            columns.push(if not_null {
                Column::not_null(col_name, ty)
            } else {
                Column::new(col_name, ty)
            });
        }
        let primary_key = if self.bool()? { Some(self.str()?.to_string()) } else { None };
        let idx_count = self.u16()? as usize;
        if idx_count > self.remaining() {
            return Err(Error::corruption(format!(
                "schema claims {idx_count} index(es), {} byte(s) remain",
                self.remaining()
            )));
        }
        let mut indexes = Vec::with_capacity(idx_count);
        for _ in 0..idx_count {
            indexes.push(IndexDef {
                name: self.str()?.to_string(),
                column: self.str()?.to_string(),
                unique: self.bool()?,
            });
        }
        Ok(Schema { name, columns, primary_key, indexes })
    }

    /// Reads one checkpoint table snapshot.
    pub fn snapshot(&mut self) -> Result<TableSnapshot> {
        let schema = self.schema()?;
        let row_count = self.u64()?;
        if row_count > self.remaining() as u64 {
            return Err(Error::corruption(format!(
                "snapshot claims {row_count} row(s), {} byte(s) remain",
                self.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(row_count as usize);
        for _ in 0..row_count {
            let row_id = RowId(self.u64()?);
            rows.push((row_id, self.row()?));
        }
        Ok(TableSnapshot { schema, rows })
    }

    /// Reads one logical [`LogRecord`].
    pub fn record(&mut self) -> Result<LogRecord> {
        self.record_at_depth(0)
    }

    fn record_at_depth(&mut self, depth: usize) -> Result<LogRecord> {
        if depth > MAX_BATCH_DEPTH {
            return Err(Error::corruption(format!(
                "batch records nested deeper than {MAX_BATCH_DEPTH}"
            )));
        }
        match self.u8()? {
            1 => Ok(LogRecord::Begin { txn: TxnId(self.u64()?) }),
            2 => Ok(LogRecord::Commit { txn: TxnId(self.u64()?) }),
            3 => Ok(LogRecord::Abort { txn: TxnId(self.u64()?) }),
            4 => Ok(LogRecord::CreateTable {
                txn: TxnId(self.u64()?),
                schema: self.schema()?,
            }),
            5 => Ok(LogRecord::DropTable {
                txn: TxnId(self.u64()?),
                table: self.str()?.to_string(),
            }),
            6 => Ok(LogRecord::Insert {
                txn: TxnId(self.u64()?),
                table: self.str()?.to_string(),
                row_id: RowId(self.u64()?),
                row: self.row()?,
            }),
            7 => Ok(LogRecord::Delete {
                txn: TxnId(self.u64()?),
                table: self.str()?.to_string(),
                row_id: RowId(self.u64()?),
                before: self.row()?,
            }),
            8 => Ok(LogRecord::Update {
                txn: TxnId(self.u64()?),
                table: self.str()?.to_string(),
                row_id: RowId(self.u64()?),
                before: self.row()?,
                after: self.row()?,
            }),
            9 => {
                let txn = TxnId(self.u64()?);
                let count = self.u32()? as usize;
                if count > self.remaining() {
                    return Err(Error::corruption(format!(
                        "batch claims {count} change(s), {} byte(s) remain",
                        self.remaining()
                    )));
                }
                let mut changes = Vec::with_capacity(count);
                for _ in 0..count {
                    changes.push(self.record_at_depth(depth + 1)?);
                }
                Ok(LogRecord::Batch { txn, changes })
            }
            10 => {
                let count = self.u32()? as usize;
                if count > self.remaining() {
                    return Err(Error::corruption(format!(
                        "checkpoint claims {count} table(s), {} byte(s) remain",
                        self.remaining()
                    )));
                }
                let mut snapshot = Vec::with_capacity(count);
                for _ in 0..count {
                    snapshot.push(self.snapshot()?);
                }
                Ok(LogRecord::Checkpoint { snapshot })
            }
            tag => Err(Error::corruption(format!("unknown record kind tag {tag}"))),
        }
    }

    /// Fails unless every payload byte was consumed — trailing garbage in a
    /// CRC-valid record still counts as corruption, never silently ignored.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::corruption(format!(
                "record payload carries {} unexpected trailing byte(s)",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn sample_schema() -> Schema {
        Schema::new(
            "jobs",
            vec![
                Column::new("job_id", DataType::Int),
                Column::not_null("owner", DataType::Text),
                Column::new("runtime", DataType::Double),
                Column::new("alive", DataType::Bool),
                Column::new("submitted", DataType::Timestamp),
            ],
        )
        .with_primary_key("job_id")
        .with_unique_index("owner")
    }

    fn sample_records() -> Vec<LogRecord> {
        let row = Row::new(vec![
            Value::Int(1),
            Value::Text("alice".into()),
            Value::Double(f64::NAN),
            Value::Bool(true),
            Value::Timestamp(-7),
        ]);
        vec![
            LogRecord::Begin { txn: TxnId(1) },
            LogRecord::CreateTable { txn: TxnId(1), schema: sample_schema() },
            LogRecord::Insert {
                txn: TxnId(1),
                table: "jobs".into(),
                row_id: RowId(1),
                row: row.clone(),
            },
            LogRecord::Update {
                txn: TxnId(1),
                table: "jobs".into(),
                row_id: RowId(1),
                before: row.clone(),
                after: Row::new(vec![Value::Null]),
            },
            LogRecord::Delete {
                txn: TxnId(1),
                table: "jobs".into(),
                row_id: RowId(1),
                before: row.clone(),
            },
            LogRecord::Batch {
                txn: TxnId(2),
                changes: vec![
                    LogRecord::Insert {
                        txn: TxnId(2),
                        table: "jobs".into(),
                        row_id: RowId(2),
                        row: Row::new(vec![Value::Int(2)]),
                    },
                    LogRecord::DropTable { txn: TxnId(2), table: "jobs".into() },
                ],
            },
            LogRecord::Checkpoint {
                snapshot: vec![TableSnapshot {
                    schema: sample_schema(),
                    rows: vec![(RowId(9), row)],
                }],
            },
            LogRecord::Commit { txn: TxnId(2) },
            LogRecord::Abort { txn: TxnId(3) },
        ]
    }

    #[test]
    fn every_record_kind_round_trips() {
        for record in sample_records() {
            let mut buf = Vec::new();
            put_record(&mut buf, &record);
            let mut r = Reader::new(&buf);
            let decoded = r.record().unwrap();
            r.expect_end().unwrap();
            // LogRecord has no PartialEq (rows hold NaN doubles); compare the
            // re-encoding instead, which is bit-exact.
            let mut buf2 = Vec::new();
            put_record(&mut buf2, &decoded);
            assert_eq!(buf, buf2, "re-encode differs for {record:?}");
        }
    }

    #[test]
    fn every_strict_prefix_errors_cleanly() {
        for record in sample_records() {
            let mut buf = Vec::new();
            put_record(&mut buf, &record);
            for cut in 0..buf.len() {
                let err = Reader::new(&buf[..cut]).record().unwrap_err();
                assert!(
                    matches!(err, Error::Corruption(_)),
                    "prefix {cut} of {record:?}: {err}"
                );
            }
        }
    }

    #[test]
    fn hostile_tags_and_counts_error_cleanly() {
        // Unknown record kind.
        assert!(Reader::new(&[0u8]).record().is_err());
        assert!(Reader::new(&[42u8]).record().is_err());
        // A batch count far larger than the remaining bytes is rejected
        // before any allocation happens.
        let mut buf = Vec::new();
        put_u8(&mut buf, 9);
        put_u64(&mut buf, 1);
        put_u32(&mut buf, u32::MAX);
        assert!(Reader::new(&buf).record().is_err());
        // Deeply nested batches hit the depth cap instead of the stack.
        let mut buf = Vec::new();
        for _ in 0..64 {
            put_u8(&mut buf, 9);
            put_u64(&mut buf, 1);
            put_u32(&mut buf, 1);
        }
        put_u8(&mut buf, 2);
        put_u64(&mut buf, 1);
        let err = Reader::new(&buf).record().unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");
        // Trailing bytes after a valid record are corruption.
        let mut buf = Vec::new();
        put_record(&mut buf, &LogRecord::Commit { txn: TxnId(1) });
        put_u8(&mut buf, 0);
        let mut r = Reader::new(&buf);
        r.record().unwrap();
        assert!(r.expect_end().is_err());
    }
}
