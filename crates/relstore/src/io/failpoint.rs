//! Deterministic fault injection for the durable-log IO path.
//!
//! A [`Failpoints`] registry hangs off every durable database. Tests arm a
//! named point with a [`FailAction`]; the next time the IO path passes that
//! point, the action fires exactly once (points are one-shot) and the
//! `failpoints_hit` counter is bumped. When nothing is armed — the production
//! case — the check is a single relaxed atomic load, so the framework can
//! stay compiled in without costing the write path anything measurable.
//!
//! The point names the IO path consults live in [`points`].

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Well-known failpoint names consulted by the durable log.
pub mod points {
    /// Fires inside [`super::super::LogDevice::append`]-bound writes, before
    /// the record bytes reach the device.
    pub const WAL_APPEND: &str = "wal.append";
    /// Fires inside commit/flush fsyncs, before the device syncs.
    pub const WAL_SYNC: &str = "wal.sync";
    /// Fires inside checkpoint segment rotation, before the new segment
    /// replaces the old one.
    pub const WAL_ROTATE: &str = "wal.rotate";
    /// Fires inside the page store, once per page write of a batch, before
    /// the page image reaches the block device.
    pub const PAGE_WRITE: &str = "page.write";
    /// Fires inside the page store's batch fsync, before the block device
    /// syncs.
    pub const PAGE_SYNC: &str = "page.sync";
}

/// What an armed failpoint does when the IO path reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Only the first `k` bytes of the write reach the device (buffered,
    /// unsynced — a crash would lose them), then the operation errors.
    /// Models a partial `write(2)` followed by an IO error.
    ShortWrite(usize),
    /// The first `k` bytes of the write reach the device **durably**, then
    /// the device dies. Models power loss midway through an append that the
    /// disk had partially persisted — the canonical torn tail.
    TornWrite(usize),
    /// The operation fails with an injected IO error; the device survives.
    /// On a sync point this models `fsync(2)` returning `EIO`.
    Err,
    /// The write (if any) completes in the device's volatile buffer, then
    /// the device dies before anything is synced. Models a crash after
    /// `write(2)` but before `fsync(2)`.
    Crash,
}

#[derive(Debug)]
struct ArmedPoint {
    action: FailAction,
    /// Passes to let through before firing (0 = fire on the next pass).
    skip: usize,
}

/// A registry of named, one-shot fault-injection points.
#[derive(Debug, Default)]
pub struct Failpoints {
    /// Number of currently armed points. The disarmed fast path is a single
    /// relaxed load of this counter.
    armed: AtomicUsize,
    points: Mutex<HashMap<&'static str, ArmedPoint>>,
    hits: AtomicU64,
}

impl Failpoints {
    /// Creates a registry with nothing armed.
    pub fn new() -> Self {
        Failpoints::default()
    }

    /// Arms `name` to fire `action` on the next pass. Re-arming an armed
    /// point replaces its action.
    pub fn arm(&self, name: &'static str, action: FailAction) {
        self.arm_after(name, 0, action);
    }

    /// Arms `name` to let `skip` passes through, then fire `action` once.
    pub fn arm_after(&self, name: &'static str, skip: usize, action: FailAction) {
        let mut points = self.points.lock();
        if points.insert(name, ArmedPoint { action, skip }).is_none() {
            self.armed.fetch_add(1, Ordering::Release);
        }
    }

    /// Disarms `name` if armed.
    pub fn disarm(&self, name: &'static str) {
        let mut points = self.points.lock();
        if points.remove(name).is_some() {
            self.armed.fetch_sub(1, Ordering::Release);
        }
    }

    /// Total number of times any point has fired.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Consulted by the IO path: returns the action to perform at `name`,
    /// or `None` (the overwhelmingly common case) to proceed normally.
    /// Firing disarms the point.
    pub fn check(&self, name: &'static str) -> Option<FailAction> {
        if self.armed.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut points = self.points.lock();
        let point = points.get_mut(name)?;
        if point.skip > 0 {
            point.skip -= 1;
            return None;
        }
        let action = point.action;
        points.remove(name);
        self.armed.fetch_sub(1, Ordering::Release);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_never_fire() {
        let fp = Failpoints::new();
        assert_eq!(fp.check(points::WAL_APPEND), None);
        assert_eq!(fp.hits(), 0);
    }

    #[test]
    fn armed_points_fire_exactly_once() {
        let fp = Failpoints::new();
        fp.arm(points::WAL_SYNC, FailAction::Err);
        assert_eq!(fp.check(points::WAL_APPEND), None, "other points unaffected");
        assert_eq!(fp.check(points::WAL_SYNC), Some(FailAction::Err));
        assert_eq!(fp.check(points::WAL_SYNC), None, "one-shot");
        assert_eq!(fp.hits(), 1);
    }

    #[test]
    fn skip_counts_passes_before_firing() {
        let fp = Failpoints::new();
        fp.arm_after(points::WAL_APPEND, 2, FailAction::TornWrite(5));
        assert_eq!(fp.check(points::WAL_APPEND), None);
        assert_eq!(fp.check(points::WAL_APPEND), None);
        assert_eq!(fp.check(points::WAL_APPEND), Some(FailAction::TornWrite(5)));
        assert_eq!(fp.hits(), 1);
    }

    #[test]
    fn disarm_and_rearm() {
        let fp = Failpoints::new();
        fp.arm(points::WAL_APPEND, FailAction::Err);
        fp.disarm(points::WAL_APPEND);
        assert_eq!(fp.check(points::WAL_APPEND), None);
        fp.arm(points::WAL_APPEND, FailAction::ShortWrite(1));
        fp.arm(points::WAL_APPEND, FailAction::ShortWrite(3));
        assert_eq!(
            fp.check(points::WAL_APPEND),
            Some(FailAction::ShortWrite(3)),
            "re-arming replaces the action"
        );
    }
}
