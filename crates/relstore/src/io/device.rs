//! The pluggable byte-log device under the durable WAL.
//!
//! A [`LogDevice`] is a dumb append-only byte store with an explicit
//! durability barrier ([`LogDevice::sync`]). All record framing, checksums
//! and failure-injection *policy* live above it in the WAL layer; the two
//! implementations only differ in where the bytes go:
//!
//! - [`FsDevice`] — a real file: `write(2)` to append, `fsync(2)` to sync,
//!   write-new-file-then-`rename(2)` to atomically replace the segment at a
//!   checkpoint.
//! - [`MemDevice`] — a `Vec<u8>` that *models the physical disk under a
//!   power loss*: bytes appended but not yet synced are discarded by
//!   [`LogDevice::durable_contents`], so crash-recovery tests can simulate
//!   "the machine died here" deterministically, with no filesystem and no
//!   actual crash.

use crate::error::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An append-only byte log with an explicit durability barrier.
///
/// Implementations report failures as [`Error::Io`]; they never panic. Once
/// a device has died (see [`LogDevice::crash`]) every mutation fails, but
/// [`LogDevice::durable_contents`] still answers — it is "what would be on
/// the platter after the machine rebooted".
pub trait LogDevice: Send + std::fmt::Debug {
    /// Appends bytes to the end of the log. The bytes are *not* durable
    /// until the next [`LogDevice::sync`].
    fn append(&mut self, bytes: &[u8]) -> Result<()>;

    /// Durability barrier: everything appended so far survives a crash once
    /// this returns.
    fn sync(&mut self) -> Result<()>;

    /// Current length in bytes (including unsynced appends).
    fn len(&self) -> u64;

    /// True when nothing has been appended yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes a crash right now would leave behind. For [`MemDevice`]
    /// this is exactly the synced prefix; for [`FsDevice`] it is the file's
    /// current contents (the OS may have persisted unsynced pages — real
    /// disks only make *weaker* guarantees than the model, never stronger
    /// ones, so recovery must tolerate both).
    fn durable_contents(&self) -> Result<Vec<u8>>;

    /// Discards everything past `len` — used once at recovery to repair a
    /// torn tail before appending resumes.
    fn truncate(&mut self, len: u64) -> Result<()>;

    /// Atomically replaces the entire log with `bytes`, durably: after this
    /// returns, a crash finds either the old log or the new one, never a
    /// mix and never neither. Used by checkpoint segment rotation.
    fn replace(&mut self, bytes: &[u8]) -> Result<()>;

    /// Kills the device: every later mutation fails with [`Error::Io`].
    /// Fault injection uses this to model the machine dying; there is no
    /// way back short of reopening from [`LogDevice::durable_contents`].
    fn crash(&mut self);
}

fn dead() -> Error {
    Error::io("log device is dead (simulated crash)")
}

// --- in-memory ---------------------------------------------------------------

/// An in-memory [`LogDevice`] that models a disk under power loss: appends
/// land in `buf`, but only the prefix written before the last successful
/// [`LogDevice::sync`] is reported by [`LogDevice::durable_contents`].
#[derive(Debug, Default)]
pub struct MemDevice {
    buf: Vec<u8>,
    synced: usize,
    dead: bool,
}

impl MemDevice {
    /// A fresh, empty device.
    pub fn new() -> Self {
        MemDevice::default()
    }

    /// A device whose durable contents are `bytes` — "the disk found after
    /// the reboot". Used to reopen a database from a previous device's
    /// [`LogDevice::durable_contents`].
    pub fn with_contents(bytes: Vec<u8>) -> Self {
        let synced = bytes.len();
        MemDevice { buf: bytes, synced, dead: false }
    }

    /// Bytes appended but not yet covered by a sync (would be lost now).
    pub fn unsynced_len(&self) -> usize {
        self.buf.len() - self.synced
    }
}

impl LogDevice for MemDevice {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.synced = self.buf.len();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    fn durable_contents(&self) -> Result<Vec<u8>> {
        // Deliberately answers even when dead: this is the post-mortem view.
        Ok(self.buf[..self.synced].to_vec())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        let len = len as usize;
        if len < self.buf.len() {
            self.buf.truncate(len);
        }
        self.synced = self.synced.min(self.buf.len());
        Ok(())
    }

    fn replace(&mut self, bytes: &[u8]) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        // Atomic in memory by construction; durable immediately, like the
        // fs rename.
        self.buf = bytes.to_vec();
        self.synced = self.buf.len();
        Ok(())
    }

    fn crash(&mut self) {
        self.dead = true;
    }
}

// --- filesystem --------------------------------------------------------------

/// A real on-disk [`LogDevice`]: one segment file, appended with `write(2)`,
/// made durable with `fsync(2)`, and atomically swapped at checkpoint via a
/// sync-then-rename of a sibling temp file.
#[derive(Debug)]
pub struct FsDevice {
    path: PathBuf,
    file: File,
    len: u64,
    dead: bool,
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> Error {
    Error::io(format!("{ctx} {}: {e}", path.display()))
}

impl FsDevice {
    /// Opens (creating if absent) the segment file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<FsDevice> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open log", &path, e))?;
        let len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek log", &path, e))?;
        Ok(FsDevice { path, file, len, dead: false })
    }

    /// The segment file this device writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fsyncs the directory containing the segment, making a just-renamed
    /// file durable. Best-effort on platforms where directories cannot be
    /// opened; on Linux (the target) it works.
    fn sync_dir(&self) -> Result<()> {
        let parent = self.path.parent().filter(|p| !p.as_os_str().is_empty());
        let dir = parent.map(Path::to_path_buf).unwrap_or_else(|| PathBuf::from("."));
        match File::open(&dir) {
            Ok(handle) => handle.sync_all().map_err(|e| io_err("fsync dir", &dir, e)),
            Err(_) => Ok(()),
        }
    }
}

impl LogDevice for FsDevice {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.file
            .write_all(bytes)
            .map_err(|e| io_err("append to log", &self.path, e))?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.file
            .sync_all()
            .map_err(|e| io_err("fsync log", &self.path, e))
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn durable_contents(&self) -> Result<Vec<u8>> {
        // Read through a fresh handle so the append cursor is untouched.
        let mut file =
            File::open(&self.path).map_err(|e| io_err("read log", &self.path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read log", &self.path, e))?;
        Ok(bytes)
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.file
            .set_len(len)
            .map_err(|e| io_err("truncate log", &self.path, e))?;
        self.file
            .seek(SeekFrom::Start(len))
            .map_err(|e| io_err("seek log", &self.path, e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err("fsync log", &self.path, e))?;
        self.len = len;
        Ok(())
    }

    fn replace(&mut self, bytes: &[u8]) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        // Write the new segment beside the old one, make it durable, then
        // rename over the old segment: a crash at any point leaves either
        // the old complete segment or the new complete segment.
        let tmp = self.path.with_extension("rotate.tmp");
        {
            let mut out = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            out.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
            out.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        }
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| io_err("rename new segment over", &self.path, e))?;
        self.sync_dir()?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("reopen log", &self.path, e))?;
        self.len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek log", &self.path, e))?;
        self.file = file;
        Ok(())
    }

    fn crash(&mut self) {
        self.dead = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("relstore_device_tests_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mem_device_loses_unsynced_bytes() {
        let mut dev = MemDevice::new();
        dev.append(b"durable").unwrap();
        dev.sync().unwrap();
        dev.append(b" volatile").unwrap();
        assert_eq!(dev.len(), 16);
        assert_eq!(dev.unsynced_len(), 9);
        assert_eq!(dev.durable_contents().unwrap(), b"durable");
        dev.crash();
        assert!(dev.append(b"x").is_err());
        assert!(dev.sync().is_err());
        assert_eq!(dev.durable_contents().unwrap(), b"durable", "post-mortem view");
    }

    #[test]
    fn mem_device_truncate_and_replace() {
        let mut dev = MemDevice::with_contents(b"0123456789".to_vec());
        dev.truncate(4).unwrap();
        assert_eq!(dev.durable_contents().unwrap(), b"0123");
        dev.replace(b"fresh").unwrap();
        assert_eq!(dev.durable_contents().unwrap(), b"fresh");
        assert_eq!(dev.len(), 5);
    }

    #[test]
    fn fs_device_round_trips_through_reopen() {
        let path = temp_path("roundtrip.log");
        std::fs::remove_file(&path).ok();
        {
            let mut dev = FsDevice::open(&path).unwrap();
            assert!(dev.is_empty());
            dev.append(b"hello ").unwrap();
            dev.append(b"world").unwrap();
            dev.sync().unwrap();
        }
        {
            let mut dev = FsDevice::open(&path).unwrap();
            assert_eq!(dev.len(), 11);
            assert_eq!(dev.durable_contents().unwrap(), b"hello world");
            dev.truncate(5).unwrap();
            dev.append(b"!").unwrap();
            dev.sync().unwrap();
            assert_eq!(dev.durable_contents().unwrap(), b"hello!");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fs_device_replace_is_a_rename() {
        let path = temp_path("replace.log");
        std::fs::remove_file(&path).ok();
        let mut dev = FsDevice::open(&path).unwrap();
        dev.append(b"old segment full of records").unwrap();
        dev.sync().unwrap();
        dev.replace(b"new segment").unwrap();
        assert_eq!(dev.durable_contents().unwrap(), b"new segment");
        assert_eq!(dev.len(), 11);
        // Appends continue on the new segment.
        dev.append(b"+tail").unwrap();
        dev.sync().unwrap();
        assert_eq!(dev.durable_contents().unwrap(), b"new segment+tail");
        // No temp file is left behind.
        assert!(!path.with_extension("rotate.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dead_fs_device_refuses_mutation() {
        let path = temp_path("dead.log");
        std::fs::remove_file(&path).ok();
        let mut dev = FsDevice::open(&path).unwrap();
        dev.append(b"x").unwrap();
        dev.sync().unwrap();
        dev.crash();
        assert!(matches!(dev.append(b"y").unwrap_err(), Error::Io(_)));
        assert!(matches!(dev.sync().unwrap_err(), Error::Io(_)));
        assert!(matches!(dev.truncate(0).unwrap_err(), Error::Io(_)));
        assert!(matches!(dev.replace(b"z").unwrap_err(), Error::Io(_)));
        assert_eq!(dev.durable_contents().unwrap(), b"x");
        std::fs::remove_file(&path).ok();
    }
}
