//! On-disk segment layout: versioned header, CRC-framed records, and the
//! torn-tail-tolerant segment decoder.
//!
//! A log segment is
//!
//! ```text
//! [8-byte segment header: "RWAL" magic + u16 version + u16 reserved]
//! [record] [record] ...
//! ```
//!
//! and each record is framed as
//!
//! ```text
//! [u32 payload_len][u32 payload_crc][u32 header_crc][payload_len bytes]
//! ```
//!
//! where `header_crc` is the CRC-32 of the first 8 header bytes. The double
//! checksum is what lets recovery separate the two failure modes without
//! guessing:
//!
//! - **Torn tail** (the machine died mid-append): an append writes a strict
//!   *prefix* of the record bytes, so the damage is always "bytes missing at
//!   the end" — a header shorter than 12 bytes, or a valid header whose
//!   payload runs past the end of the segment. Recovery truncates the tail
//!   and yields exactly the records before it.
//! - **Corruption** (the media rotted, or someone scribbled on the file):
//!   bytes that are *present* but wrong. A complete 12-byte header with a
//!   bad `header_crc`, a complete payload with a bad `payload_crc`, or a
//!   CRC-valid payload that decodes to garbage. Because `header_crc` covers
//!   the length field, a bit flip in `payload_len` can never masquerade as
//!   a torn tail. Recovery fails loudly with [`Error::Corruption`].

use crate::error::{Error, Result};
use crate::stats::OpStats;
use crate::wal::LogRecord;

use super::codec::{put_record, put_u32, Reader};
use super::crc::crc32;

/// Magic bytes opening every segment.
pub const SEGMENT_MAGIC: [u8; 4] = *b"RWAL";

/// Current segment format version.
pub const SEGMENT_VERSION: u16 = 1;

/// Size of the fixed segment header.
pub const SEGMENT_HEADER_LEN: usize = 8;

/// Size of the per-record frame header.
pub const RECORD_HEADER_LEN: usize = 12;

/// Hard upper bound on a single record payload. The engine never writes
/// anything close to this; it bounds allocation against damaged headers
/// whose CRC happens to collide.
pub const MAX_RECORD_PAYLOAD: usize = 256 * 1024 * 1024;

/// The 8 header bytes opening every segment.
pub fn segment_header() -> [u8; SEGMENT_HEADER_LEN] {
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[..4].copy_from_slice(&SEGMENT_MAGIC);
    header[4..6].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    header
}

/// Frames one logical record: 12-byte checksummed header + payload.
pub fn encode_record(record: &LogRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    put_record(&mut payload, record);
    let mut framed = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    put_u32(&mut framed, payload.len() as u32);
    put_u32(&mut framed, crc32(&payload));
    let header_crc = crc32(&framed[..8]);
    put_u32(&mut framed, header_crc);
    framed.extend_from_slice(&payload);
    framed
}

/// Encodes a whole segment (header + records) — used when a checkpoint
/// rotates the log onto a fresh segment.
pub fn encode_segment<'a>(records: impl IntoIterator<Item = &'a LogRecord>) -> Vec<u8> {
    let mut bytes = segment_header().to_vec();
    for record in records {
        bytes.extend_from_slice(&encode_record(record));
    }
    bytes
}

/// The result of scanning a segment image at recovery.
#[derive(Debug)]
pub struct DecodedSegment {
    /// Every complete, checksum-valid record, in log order.
    pub records: Vec<LogRecord>,
    /// Length of the valid prefix. The device should be truncated to this
    /// before appending resumes.
    pub valid_len: u64,
    /// Bytes past `valid_len` that belonged to a torn (partial) record and
    /// were discarded.
    pub truncated_bytes: u64,
}

/// Scans a segment image, tolerating a torn tail and refusing corruption.
///
/// On success, `stats.recovery_truncated_bytes` reflects any repaired tail;
/// on [`Error::Corruption`], `stats.corruption_detected` is bumped before
/// the error is returned (the caller usually merges `stats` into shared
/// counters either way). An empty image is a fresh log, not an error.
pub fn decode_segment(bytes: &[u8], stats: &mut OpStats) -> Result<DecodedSegment> {
    let mut fail = |msg: String| {
        stats.corruption_detected += 1;
        Err(Error::corruption(msg))
    };

    // The segment header. A crash during the very first write can leave a
    // strict prefix of it behind: that is a torn tail of an empty log.
    let expected = segment_header();
    if bytes.len() < SEGMENT_HEADER_LEN {
        if bytes != &expected[..bytes.len()] {
            return fail(format!(
                "segment header damaged ({} byte(s), not a prefix of the magic)",
                bytes.len()
            ));
        }
        let truncated = bytes.len() as u64;
        stats.recovery_truncated_bytes += truncated;
        return Ok(DecodedSegment { records: Vec::new(), valid_len: 0, truncated_bytes: truncated });
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return fail("segment magic mismatch: not a relstore log".into());
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEGMENT_VERSION {
        return fail(format!(
            "unsupported segment version {version} (this build reads {SEGMENT_VERSION})"
        ));
    }
    if bytes[6..8] != [0, 0] {
        return fail("segment header reserved bytes are non-zero".into());
    }

    let mut records = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok(DecodedSegment {
                records,
                valid_len: offset as u64,
                truncated_bytes: 0,
            });
        }
        if remaining < RECORD_HEADER_LEN {
            // Not even a full frame header: a torn append. Everything before
            // it is intact.
            stats.recovery_truncated_bytes += remaining as u64;
            return Ok(DecodedSegment {
                records,
                valid_len: offset as u64,
                truncated_bytes: remaining as u64,
            });
        }
        let header = &bytes[offset..offset + RECORD_HEADER_LEN];
        let payload_len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let payload_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let header_crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if crc32(&header[..8]) != header_crc {
            // All 12 header bytes are present, so this is not a torn append
            // (a torn append only ever leaves bytes *missing*): the header
            // itself rotted, and the length field cannot be trusted.
            return fail(format!("record header checksum mismatch at offset {offset}"));
        }
        if payload_len > MAX_RECORD_PAYLOAD {
            return fail(format!(
                "record at offset {offset} claims a {payload_len}-byte payload"
            ));
        }
        let payload_start = offset + RECORD_HEADER_LEN;
        if payload_len > bytes.len() - payload_start {
            // Valid header, missing payload bytes: the append tore partway
            // through the payload.
            let torn = (bytes.len() - offset) as u64;
            stats.recovery_truncated_bytes += torn;
            return Ok(DecodedSegment {
                records,
                valid_len: offset as u64,
                truncated_bytes: torn,
            });
        }
        let payload = &bytes[payload_start..payload_start + payload_len];
        if crc32(payload) != payload_crc {
            return fail(format!("record payload checksum mismatch at offset {offset}"));
        }
        let mut reader = Reader::new(payload);
        let record = match reader.record().and_then(|r| reader.expect_end().map(|_| r)) {
            Ok(record) => record,
            Err(e) => {
                // The payload passed its CRC yet does not decode: the record
                // was damaged before it was checksummed, or the format is
                // from the future. Either way, corruption.
                return fail(format!("record at offset {offset} is undecodable: {e}"));
            }
        };
        records.push(record);
        offset = payload_start + payload_len;
    }
}

/// Record boundaries of a fully valid segment: byte offsets at which a
/// recovery prefix ends exactly on a record boundary. The first entry is the
/// segment header length; each subsequent entry is the end of one record.
/// Used by the crash-matrix tests to enumerate every clean prefix.
pub fn record_boundaries(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut stats = OpStats::default();
    let decoded = decode_segment(bytes, &mut stats)?;
    if decoded.truncated_bytes != 0 {
        return Err(Error::Wal(
            "record_boundaries requires a fully valid segment".into(),
        ));
    }
    let mut boundaries = vec![SEGMENT_HEADER_LEN as u64];
    let mut offset = SEGMENT_HEADER_LEN as u64;
    for record in &decoded.records {
        let framed = encode_record(record);
        offset += framed.len() as u64;
        boundaries.push(offset);
    }
    Ok(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Row, RowId};
    use crate::value::Value;
    use crate::wal::TxnId;

    fn sample_log() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: TxnId(1) },
            LogRecord::Insert {
                txn: TxnId(1),
                table: "jobs".into(),
                row_id: RowId(1),
                row: Row::new(vec![Value::Int(7), Value::Text("alice".into())]),
            },
            LogRecord::Commit { txn: TxnId(1) },
        ]
    }

    fn encode(records: &[LogRecord]) -> Vec<u8> {
        encode_segment(records.iter())
    }

    #[test]
    fn clean_segment_round_trips() {
        let bytes = encode(&sample_log());
        let mut stats = OpStats::default();
        let decoded = decode_segment(&bytes, &mut stats).unwrap();
        assert_eq!(decoded.records.len(), 3);
        assert_eq!(decoded.valid_len, bytes.len() as u64);
        assert_eq!(decoded.truncated_bytes, 0);
        assert_eq!(stats.recovery_truncated_bytes, 0);
        assert_eq!(stats.corruption_detected, 0);
        assert_eq!(encode(&decoded.records), bytes);
    }

    #[test]
    fn empty_and_header_only_segments_are_fresh_logs() {
        let mut stats = OpStats::default();
        let decoded = decode_segment(&[], &mut stats).unwrap();
        assert!(decoded.records.is_empty());
        assert_eq!(decoded.valid_len, 0);

        let decoded = decode_segment(&segment_header(), &mut stats).unwrap();
        assert!(decoded.records.is_empty());
        assert_eq!(decoded.valid_len, SEGMENT_HEADER_LEN as u64);
        assert_eq!(stats.recovery_truncated_bytes, 0);
    }

    #[test]
    fn every_truncation_recovers_the_longest_clean_prefix() {
        let bytes = encode(&sample_log());
        let boundaries = record_boundaries(&bytes).unwrap();
        assert_eq!(boundaries.len(), 4, "header + three records");
        for cut in 0..bytes.len() {
            let mut stats = OpStats::default();
            let decoded = decode_segment(&bytes[..cut], &mut stats)
                .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            let last_boundary = boundaries
                .iter()
                .rev()
                .find(|b| **b <= cut as u64)
                .copied()
                .unwrap_or(0);
            assert_eq!(decoded.valid_len, last_boundary, "cut {cut}");
            // boundaries[k] is the prefix that holds exactly k records; a cut
            // inside the segment header holds none.
            let expected_records =
                boundaries.iter().position(|b| *b == last_boundary).unwrap_or(0);
            assert_eq!(decoded.records.len(), expected_records, "cut {cut}");
            assert_eq!(decoded.truncated_bytes, cut as u64 - last_boundary, "cut {cut}");
            assert_eq!(stats.recovery_truncated_bytes, decoded.truncated_bytes);
        }
    }

    #[test]
    fn every_non_tail_byte_flip_is_corruption() {
        let bytes = encode(&sample_log());
        let boundaries = record_boundaries(&bytes).unwrap();
        // Bytes before the start of the final record are "non-tail": a flip
        // there must never be mistaken for a repairable torn tail.
        let non_tail_end = boundaries[boundaries.len() - 2] as usize;
        for i in 0..non_tail_end {
            for bit in [0, 3, 7] {
                let mut damaged = bytes.clone();
                damaged[i] ^= 1 << bit;
                let mut stats = OpStats::default();
                let err = decode_segment(&damaged, &mut stats)
                    .err()
                    .unwrap_or_else(|| panic!("flip at {i} bit {bit} was accepted"));
                assert!(matches!(err, Error::Corruption(_)), "flip at {i}: {err}");
                assert_eq!(stats.corruption_detected, 1);
            }
        }
    }

    #[test]
    fn length_field_flips_cannot_masquerade_as_torn_tails() {
        // Flip a bit in the length field of the *final* record so the claimed
        // payload runs past the end of the segment. Without the header CRC
        // this would look exactly like a torn tail; with it, it must be
        // corruption.
        let bytes = encode(&sample_log());
        let boundaries = record_boundaries(&bytes).unwrap();
        let final_header = boundaries[boundaries.len() - 2] as usize;
        let mut damaged = bytes.clone();
        damaged[final_header] ^= 0x80; // low length byte: claims +128 bytes
        let mut stats = OpStats::default();
        let err = decode_segment(&damaged, &mut stats).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "{err}");
    }

    #[test]
    fn wrong_magic_and_version_are_corruption() {
        let mut stats = OpStats::default();
        let err = decode_segment(b"NOPE\x01\x00\x00\x00", &mut stats).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "{err}");

        let mut versioned = segment_header();
        versioned[4] = 9;
        let err = decode_segment(&versioned, &mut stats).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
