//! Durable-log IO: devices, record framing, checksums, and fault injection.
//!
//! This module tree turns the logical WAL of [`crate::wal`] into a real
//! crash-safe on-disk log while keeping the default in-memory engine
//! untouched. The layering, bottom up:
//!
//! - [`crc`] — hand-rolled CRC-32, no dependencies.
//! - [`codec`] — serde-free binary encoding of [`crate::wal::LogRecord`],
//!   mirroring the `crates/wire` codec idiom (the wire crate depends on this
//!   one, so the codec is duplicated in spirit, not imported).
//! - [`record`] — the segment layout: versioned header plus CRC-framed
//!   records, and the recovery scanner that repairs a **torn tail** by
//!   truncation but refuses **mid-log corruption** with
//!   [`crate::Error::Corruption`].
//! - [`device`] — the [`LogDevice`] byte-log trait with a real-file
//!   [`FsDevice`] and a crash-modelling [`MemDevice`].
//! - [`failpoint`] — named, one-shot fault injection for the IO path,
//!   free when disarmed.
//!
//! The WAL consumes all of this through `Wal`'s optional durable sink; see
//! the "Durability & recovery" section of the crate docs for the user-facing
//! story ([`crate::Database::open_durable`], [`DurabilityPolicy`], and the
//! poisoning rules).

pub mod codec;
pub mod crc;
pub mod device;
pub mod failpoint;
pub mod record;

pub use device::{FsDevice, LogDevice, MemDevice};
pub use failpoint::{points, FailAction, Failpoints};
pub use record::{
    decode_segment, record_boundaries, DecodedSegment, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN,
};

/// When the durable log fsyncs, trading commit latency for crash-loss
/// exposure. Every policy syncs at checkpoints and on an explicit
/// [`crate::Database::flush_log`]; they differ in what happens at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Fsync on every commit: an acknowledged commit is on disk. The
    /// classical force-at-commit discipline, and the default for
    /// [`crate::Database::open_durable`].
    Always,
    /// Fsync once every `n` commits (and at flush/checkpoint). An
    /// acknowledged commit may be lost in a crash — at most the last `n-1`
    /// commits' worth. Group-commit-shaped throughput without giving up
    /// bounded loss.
    Batch(usize),
    /// Fsync only at checkpoints and explicit flushes. The fastest and
    /// weakest mode: a crash can lose everything since the last checkpoint.
    /// Matches the pre-durability simulated engine most closely.
    Checkpoint,
}

impl DurabilityPolicy {
    /// How many commits may be acknowledged between fsyncs (`None` =
    /// unbounded, i.e. [`DurabilityPolicy::Checkpoint`]).
    pub fn commits_per_sync(&self) -> Option<usize> {
        match self {
            DurabilityPolicy::Always => Some(1),
            DurabilityPolicy::Batch(n) => Some((*n).max(1)),
            DurabilityPolicy::Checkpoint => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_per_sync_reflects_policy() {
        assert_eq!(DurabilityPolicy::Always.commits_per_sync(), Some(1));
        assert_eq!(DurabilityPolicy::Batch(8).commits_per_sync(), Some(8));
        assert_eq!(DurabilityPolicy::Batch(0).commits_per_sync(), Some(1));
        assert_eq!(DurabilityPolicy::Checkpoint.commits_per_sync(), None);
    }
}
