//! Rows and row identifiers.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier for a row within a table's heap.
///
/// Row ids are assigned monotonically by the table and never reused, which
/// keeps the write-ahead log and the secondary indexes simple: a `(key, RowId)`
/// pair uniquely identifies one version of one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A single row: an ordered list of values matching the table schema.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Row {
    /// The values, positionally aligned with the schema columns.
    pub values: Vec<Value>,
}

impl Row {
    /// Creates a row from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of values in the row.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at ordinal `idx`, or NULL if out of bounds.
    pub fn get(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.values.get(idx).unwrap_or(&NULL)
    }

    /// Replaces the value at ordinal `idx`. Panics if out of bounds — callers
    /// validate ordinals against the schema before updating.
    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// Approximate in-memory size in bytes, used by the cost model.
    pub fn approx_size(&self) -> usize {
        self.values.iter().map(Value::approx_size).sum::<usize>() + 16
    }

    /// Concatenates two rows (used by join operators).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A borrowed row paired with its identifier, as streamed by the table
/// access paths ([`crate::table::Table::scan`] and the index lookups).
///
/// Rows stay in the heap; the executor evaluates predicates against the
/// borrow and clones only the values that survive projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredRowRef<'a> {
    /// The heap identifier of the row.
    pub id: RowId,
    /// The row contents, borrowed from the table heap.
    pub row: &'a Row,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_out_of_bounds_is_null() {
        let r = Row::new(vec![Value::Int(1)]);
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r.get(5), &Value::Null);
    }

    #[test]
    fn set_and_arity() {
        let mut r = Row::new(vec![Value::Int(1), Value::Null]);
        r.set(1, Value::Text("x".into()));
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(1), &Value::Text("x".into()));
    }

    #[test]
    fn concat_preserves_order() {
        let a = Row::new(vec![Value::Int(1)]);
        let b = Row::new(vec![Value::Int(2), Value::Int(3)]);
        let c = a.concat(&b);
        assert_eq!(c.values, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn display_formats_tuple() {
        let r = Row::new(vec![Value::Int(1), Value::Text("a".into())]);
        assert_eq!(r.to_string(), "(1, 'a')");
        assert_eq!(RowId(7).to_string(), "#7");
    }

    #[test]
    fn row_size_grows_with_content() {
        let small = Row::new(vec![Value::Int(1)]);
        let big = Row::new(vec![Value::Text("a long machine name".into()), Value::Int(1)]);
        assert!(big.approx_size() > small.approx_size());
    }
}
