//! Scalar expressions and predicate evaluation over rows.
//!
//! Expressions are evaluated against a row plus a column-name environment
//! (the schema of the relation flowing through the operator). Comparison
//! follows SQL three-valued logic: any comparison against NULL is unknown and
//! an unknown predicate does not select the row.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::sql::ast::SelectStmt;
use crate::tuple::Row;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality (`=`).
    Eq,
    /// Inequality (`<>` / `!=`).
    Ne,
    /// Less-than (`<`).
    Lt,
    /// Less-than-or-equal (`<=`).
    Le,
    /// Greater-than (`>`).
    Gt,
    /// Greater-than-or-equal (`>=`).
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq | CmpOp::Ne => self,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal constant.
    Literal(Value),
    /// A positional bind parameter (`?`), 0-indexed in statement order.
    /// Resolved at evaluation time from the bound-parameter context (see
    /// [`Expr::eval_with`]).
    Param(usize),
    /// A reference to a column by name.
    Column(String),
    /// A comparison between two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic over two sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical AND (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// `expr IN (v1, v2, ...)` against literal values.
    InList(Box<Expr>, Vec<Value>),
    /// `expr IN (SELECT ...)`. Uncorrelated subqueries are rewritten into an
    /// [`Expr::InList`] over the subquery's result before row evaluation
    /// begins (a hash semi-join over the materialized inner side), so this
    /// variant never reaches `eval_with`.
    InSubquery(Box<Expr>, Box<SelectStmt>),
    /// `(SELECT ...)` used as a scalar value. The subquery must produce at
    /// most one row of exactly one column; it is rewritten into an
    /// [`Expr::Literal`] (NULL when it yields no row) before row evaluation
    /// begins, so this variant never reaches `eval_with`.
    ScalarSubquery(Box<SelectStmt>),
}

impl Expr {
    /// Convenience constructor: `column = literal`.
    pub fn col_eq(column: impl Into<String>, value: impl Into<Value>) -> Expr {
        Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Column(column.into())),
            Box::new(Expr::Literal(value.into())),
        )
    }

    /// Convenience constructor: `column <op> literal`.
    pub fn col_cmp(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Expr {
        Expr::Cmp(
            op,
            Box::new(Expr::Column(column.into())),
            Box::new(Expr::Literal(value.into())),
        )
    }

    /// Convenience constructor: logical AND of two expressions.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Convenience constructor: logical OR of two expressions.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the expression against `row` described by `schema`, with no
    /// bound parameters (any [`Expr::Param`] fails).
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<Value> {
        self.eval_with(schema, row, &[])
    }

    /// Evaluates the expression against `row` described by `schema`,
    /// resolving `?` placeholders from `params`. Prepared execution passes
    /// parameters as this evaluation context, so the hot path never clones or
    /// rewrites the AST.
    pub fn eval_with(&self, schema: &Schema, row: &Row, params: &[Value]) -> Result<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(i) => params.get(*i).cloned().ok_or_else(|| {
                Error::type_err(format!(
                    "unbound parameter ?{} — execute this statement through a prepared handle",
                    i + 1
                ))
            }),
            Expr::Column(name) => {
                let idx = schema.column_index(name)?;
                Ok(row.get(idx).clone())
            }
            Expr::Cmp(op, l, r) => {
                let lv = l.eval_with(schema, row, params)?;
                let rv = r.eval_with(schema, row, params)?;
                Ok(match eval_cmp(*op, &lv, &rv) {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                })
            }
            Expr::Arith(op, l, r) => {
                let lv = l.eval_with(schema, row, params)?;
                let rv = r.eval_with(schema, row, params)?;
                eval_arith(*op, &lv, &rv)
            }
            Expr::And(l, r) => {
                let lv = to_tristate(l.eval_with(schema, row, params)?)?;
                let rv = to_tristate(r.eval_with(schema, row, params)?)?;
                Ok(from_tristate(and3(lv, rv)))
            }
            Expr::Or(l, r) => {
                let lv = to_tristate(l.eval_with(schema, row, params)?)?;
                let rv = to_tristate(r.eval_with(schema, row, params)?)?;
                Ok(from_tristate(or3(lv, rv)))
            }
            Expr::Not(e) => {
                let v = to_tristate(e.eval_with(schema, row, params)?)?;
                Ok(from_tristate(v.map(|b| !b)))
            }
            Expr::IsNull(e) => Ok(Value::Bool(e.eval_with(schema, row, params)?.is_null())),
            Expr::IsNotNull(e) => Ok(Value::Bool(!e.eval_with(schema, row, params)?.is_null())),
            Expr::InList(e, list) => {
                let v = e.eval_with(schema, row, params)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_eq(item) {
                        Some(true) => return Ok(Value::Bool(true)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(false) })
            }
            Expr::InSubquery(..) | Expr::ScalarSubquery(_) => Err(Error::type_err(
                "subqueries are only supported in the WHERE clause of a SELECT",
            )),
        }
    }

    /// Evaluates the expression as a predicate: true selects the row,
    /// false or unknown (NULL) rejects it.
    pub fn matches(&self, schema: &Schema, row: &Row) -> Result<bool> {
        self.matches_with(schema, row, &[])
    }

    /// As [`Expr::matches`], resolving `?` placeholders from `params`.
    pub fn matches_with(&self, schema: &Schema, row: &Row, params: &[Value]) -> Result<bool> {
        match self.eval_with(schema, row, params)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(Error::type_err(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    /// If the expression pins `column` of `table` to a single concrete value
    /// with equality somewhere in a top-level conjunction, return that value.
    /// Accepts both the bare and the `table.column`-qualified spelling
    /// without allocating a candidate name per call, and resolves `?`
    /// placeholders from `params`. Used by the planner to choose point
    /// lookups over scans.
    pub fn equality_lookup_on(&self, table: &str, column: &str, params: &[Value]) -> Option<Value> {
        match self {
            Expr::Cmp(CmpOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
                (Expr::Column(c), v) | (v, Expr::Column(c))
                    if column_matches(c, table, column) =>
                {
                    as_bound(v, params).cloned()
                }
                _ => None,
            },
            Expr::And(l, r) => l
                .equality_lookup_on(table, column, params)
                .or_else(|| r.equality_lookup_on(table, column, params)),
            _ => None,
        }
    }

    /// Inclusive `(lo, hi)` bounds implied for `column` of `table` by the
    /// top-level conjunction, or `None` when no comparison constrains the
    /// column. Strict bounds (`<`, `>`) are widened to inclusive ones: the
    /// access path only needs a *superset* of the matching rows because the
    /// executor re-applies the full predicate afterwards. `?` placeholders
    /// resolve through `params`.
    pub fn range_bounds_on(
        &self,
        table: &str,
        column: &str,
        params: &[Value],
    ) -> Option<(Option<Value>, Option<Value>)> {
        let mut lo: Option<Value> = None;
        let mut hi: Option<Value> = None;
        self.collect_range_bounds(table, column, params, &mut lo, &mut hi);
        if lo.is_none() && hi.is_none() {
            None
        } else {
            Some((lo, hi))
        }
    }

    fn collect_range_bounds(
        &self,
        table: &str,
        column: &str,
        params: &[Value],
        lo: &mut Option<Value>,
        hi: &mut Option<Value>,
    ) {
        match self {
            Expr::And(l, r) => {
                l.collect_range_bounds(table, column, params, lo, hi);
                r.collect_range_bounds(table, column, params, lo, hi);
            }
            Expr::Cmp(op, l, r) => {
                let (op, v) = match (l.as_ref(), r.as_ref()) {
                    (Expr::Column(c), v) if column_matches(c, table, column) => {
                        match as_bound(v, params) {
                            Some(v) => (*op, v),
                            None => return,
                        }
                    }
                    (v, Expr::Column(c)) if column_matches(c, table, column) => {
                        match as_bound(v, params) {
                            Some(v) => (op.flip(), v),
                            None => return,
                        }
                    }
                    _ => return,
                };
                // A NULL comparison matches nothing; the filter re-check
                // rejects every row, so no bound needs recording.
                if v.is_null() {
                    return;
                }
                match op {
                    CmpOp::Eq => {
                        tighten_lo(lo, v);
                        tighten_hi(hi, v);
                    }
                    CmpOp::Gt | CmpOp::Ge => tighten_lo(lo, v),
                    CmpOp::Lt | CmpOp::Le => tighten_hi(hi, v),
                    CmpOp::Ne => {}
                }
            }
            _ => {}
        }
    }

    /// Number of parameter slots this expression requires
    /// (one past the highest `?` index).
    pub fn param_count(&self) -> usize {
        match self {
            Expr::Param(i) => i + 1,
            Expr::Literal(_) | Expr::Column(_) => 0,
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.param_count().max(r.param_count())
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) | Expr::InList(e, _) => {
                e.param_count()
            }
            Expr::InSubquery(e, sel) => e.param_count().max(sel.param_count()),
            Expr::ScalarSubquery(sel) => sel.param_count(),
        }
    }

    /// Collects the names of all columns referenced by the expression.
    /// Subquery bodies are *not* descended into: their column references
    /// resolve against the subquery's own tables, not the enclosing
    /// relation.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) | Expr::Param(_) | Expr::ScalarSubquery(_) => {}
            Expr::Column(c) => out.push(c.clone()),
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            Expr::Not(e)
            | Expr::IsNull(e)
            | Expr::IsNotNull(e)
            | Expr::InList(e, _)
            | Expr::InSubquery(e, _) => e.referenced_columns(out),
        }
    }

    /// True when the expression contains a subquery anywhere — the signal
    /// that a filter needs the subquery-rewrite pass before evaluation.
    pub fn contains_subquery(&self) -> bool {
        match self {
            Expr::InSubquery(..) | Expr::ScalarSubquery(_) => true,
            Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) => false,
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.contains_subquery() || r.contains_subquery()
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) | Expr::InList(e, _) => {
                e.contains_subquery()
            }
        }
    }

    /// Structural form of [`Expr::equality_lookup_on`]: true when a
    /// top-level conjunct pins `column` of `table` with equality against a
    /// literal *or an unbound `?` placeholder*. Plans for prepared
    /// statements are built before parameters are bound, so the planner asks
    /// whether a point lookup *will* be possible; the concrete key is
    /// extracted at execution time via `equality_lookup_on`.
    pub fn pins_column(&self, table: &str, column: &str) -> bool {
        match self {
            Expr::Cmp(CmpOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
                (Expr::Column(c), v) | (v, Expr::Column(c))
                    if column_matches(c, table, column) =>
                {
                    matches!(v, Expr::Literal(_) | Expr::Param(_))
                }
                _ => false,
            },
            Expr::And(l, r) => l.pins_column(table, column) || r.pins_column(table, column),
            _ => false,
        }
    }

    /// Structural form of [`Expr::range_bounds_on`]: true when a top-level
    /// conjunct constrains `column` of `table` with an ordering comparison
    /// against a literal or an unbound `?` placeholder.
    pub fn ranges_column(&self, table: &str, column: &str) -> bool {
        match self {
            Expr::And(l, r) => l.ranges_column(table, column) || r.ranges_column(table, column),
            Expr::Cmp(op, l, r) => {
                if matches!(op, CmpOp::Ne) {
                    return false;
                }
                match (l.as_ref(), r.as_ref()) {
                    (Expr::Column(c), v) | (v, Expr::Column(c))
                        if column_matches(c, table, column) =>
                    {
                        matches!(v, Expr::Literal(_) | Expr::Param(_))
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Param(_) => write!(f, "?"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Cmp(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::And(l, r) => write!(f, "({l} AND {r})"),
            Expr::Or(l, r) => write!(f, "({l} OR {r})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            Expr::InList(e, list) => {
                write!(f, "({e} IN (")?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            Expr::InSubquery(e, sel) => write!(f, "({e} IN (SELECT … FROM {}))", sel.table),
            Expr::ScalarSubquery(sel) => write!(f, "(SELECT … FROM {})", sel.table),
        }
    }
}

/// Resolves a planner operand to a concrete value: a literal directly, a `?`
/// placeholder through `params`. Column references and compound expressions
/// yield `None` (the planner cannot constant-fold them).
fn as_bound<'v>(e: &'v Expr, params: &'v [Value]) -> Option<&'v Value> {
    match e {
        Expr::Literal(v) => Some(v),
        Expr::Param(i) => params.get(*i),
        _ => None,
    }
}

/// True when a column reference `cand` denotes `column` of `table`, accepting
/// both the bare and the `table.column`-qualified spelling, without
/// allocating.
pub(crate) fn column_matches(cand: &str, table: &str, column: &str) -> bool {
    if cand.eq_ignore_ascii_case(column) {
        return true;
    }
    match cand.split_once('.') {
        Some((t, c)) => t.eq_ignore_ascii_case(table) && c.eq_ignore_ascii_case(column),
        None => false,
    }
}

/// Raises `*lo` to `v` when `v` is the tighter lower bound.
fn tighten_lo(lo: &mut Option<Value>, v: &Value) {
    if lo.as_ref().is_none_or(|cur| v.total_cmp(cur) == std::cmp::Ordering::Greater) {
        *lo = Some(v.clone());
    }
}

/// Lowers `*hi` to `v` when `v` is the tighter upper bound.
fn tighten_hi(hi: &mut Option<Value>, v: &Value) {
    if hi.as_ref().is_none_or(|cur| v.total_cmp(cur) == std::cmp::Ordering::Less) {
        *hi = Some(v.clone());
    }
}

fn eval_cmp(op: CmpOp, l: &Value, r: &Value) -> Option<bool> {
    match op {
        CmpOp::Eq => l.sql_eq(r),
        CmpOp::Ne => l.sql_eq(r).map(|b| !b),
        CmpOp::Lt => l.sql_cmp(r).map(|o| o == std::cmp::Ordering::Less),
        CmpOp::Le => l.sql_cmp(r).map(|o| o != std::cmp::Ordering::Greater),
        CmpOp::Gt => l.sql_cmp(r).map(|o| o == std::cmp::Ordering::Greater),
        CmpOp::Ge => l.sql_cmp(r).map(|o| o != std::cmp::Ordering::Less),
    }
}

fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic stays integral when both sides are integral and the
    // operation is exact; everything else widens to double.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
        }),
        _ => {
            let a = l.as_double()?;
            let b = r.as_double()?;
            Ok(match op {
                ArithOp::Add => Value::Double(a + b),
                ArithOp::Sub => Value::Double(a - b),
                ArithOp::Mul => Value::Double(a * b),
                ArithOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a / b)
                    }
                }
            })
        }
    }
}

fn to_tristate(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(Error::type_err(format!(
            "expected boolean operand, got {other}"
        ))),
    }
}

fn from_tristate(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn and3(l: Option<bool>, r: Option<bool>) -> Option<bool> {
    match (l, r) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(l: Option<bool>, r: Option<bool>) -> Option<bool> {
    match (l, r) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(
            "jobs",
            vec![
                Column::new("job_id", DataType::Int),
                Column::new("state", DataType::Text),
                Column::new("runtime", DataType::Double),
                Column::new("done", DataType::Bool),
            ],
        )
    }

    fn row(id: i64, state: &str, runtime: f64, done: bool) -> Row {
        Row::new(vec![
            Value::Int(id),
            Value::Text(state.into()),
            Value::Double(runtime),
            Value::Bool(done),
        ])
    }

    #[test]
    fn column_and_literal_eval() {
        let s = schema();
        let r = row(1, "idle", 2.0, false);
        assert_eq!(
            Expr::Column("state".into()).eval(&s, &r).unwrap(),
            Value::Text("idle".into())
        );
        assert_eq!(
            Expr::Literal(Value::Int(9)).eval(&s, &r).unwrap(),
            Value::Int(9)
        );
        assert!(Expr::Column("missing".into()).eval(&s, &r).is_err());
    }

    #[test]
    fn comparisons_and_matching() {
        let s = schema();
        let r = row(5, "idle", 2.0, false);
        assert!(Expr::col_eq("state", "idle").matches(&s, &r).unwrap());
        assert!(!Expr::col_eq("state", "running").matches(&s, &r).unwrap());
        assert!(Expr::col_cmp("job_id", CmpOp::Ge, 5).matches(&s, &r).unwrap());
        assert!(Expr::col_cmp("runtime", CmpOp::Lt, 3).matches(&s, &r).unwrap());
    }

    #[test]
    fn null_comparisons_do_not_match() {
        let s = schema();
        let r = Row::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]);
        assert!(!Expr::col_eq("job_id", 1).matches(&s, &r).unwrap());
        assert!(!Expr::col_cmp("job_id", CmpOp::Ne, 1).matches(&s, &r).unwrap());
        assert!(Expr::IsNull(Box::new(Expr::Column("job_id".into())))
            .matches(&s, &r)
            .unwrap());
        assert!(!Expr::IsNotNull(Box::new(Expr::Column("job_id".into())))
            .matches(&s, &r)
            .unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let s = schema();
        let r = row(1, "idle", 2.0, true);
        let null = Expr::Literal(Value::Null);
        let truth = Expr::Literal(Value::Bool(true));
        let falsity = Expr::Literal(Value::Bool(false));
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL (does not match).
        assert!(!null.clone().and(falsity.clone()).matches(&s, &r).unwrap());
        assert!(!null.clone().and(truth.clone()).matches(&s, &r).unwrap());
        // NULL OR TRUE = TRUE.
        assert!(null.clone().or(truth).matches(&s, &r).unwrap());
        assert!(!null.or(falsity).matches(&s, &r).unwrap());
    }

    #[test]
    fn arithmetic_int_and_double() {
        let s = schema();
        let r = row(10, "idle", 4.0, false);
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::Column("job_id".into())),
            Box::new(Expr::Literal(Value::Int(5))),
        );
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(15));
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Column("runtime".into())),
            Box::new(Expr::Literal(Value::Int(2))),
        );
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Double(2.0));
        // Division by zero yields NULL rather than an error.
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Column("job_id".into())),
            Box::new(Expr::Literal(Value::Int(0))),
        );
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Null);
    }

    #[test]
    fn in_list_semantics() {
        let s = schema();
        let r = row(1, "idle", 2.0, false);
        let e = Expr::InList(
            Box::new(Expr::Column("state".into())),
            vec![Value::Text("idle".into()), Value::Text("running".into())],
        );
        assert!(e.matches(&s, &r).unwrap());
        let e = Expr::InList(
            Box::new(Expr::Column("state".into())),
            vec![Value::Text("held".into())],
        );
        assert!(!e.matches(&s, &r).unwrap());
    }

    #[test]
    fn equality_lookup_detection() {
        let e = Expr::col_eq("job_id", 7).and(Expr::col_eq("state", "idle"));
        assert_eq!(e.equality_lookup_on("jobs", "job_id", &[]), Some(Value::Int(7)));
        assert_eq!(
            e.equality_lookup_on("jobs", "STATE", &[]),
            Some(Value::Text("idle".into()))
        );
        assert_eq!(e.equality_lookup_on("jobs", "runtime", &[]), None);
        let e = Expr::col_cmp("job_id", CmpOp::Gt, 7);
        assert_eq!(e.equality_lookup_on("jobs", "job_id", &[]), None);
        // Parameters resolve through the bound-value context.
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Column("job_id".into())),
            Box::new(Expr::Param(0)),
        );
        assert_eq!(e.equality_lookup_on("jobs", "job_id", &[]), None);
        assert_eq!(
            e.equality_lookup_on("jobs", "job_id", &[Value::Int(4)]),
            Some(Value::Int(4))
        );
    }

    #[test]
    fn equality_lookup_on_accepts_qualified_names() {
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Column("jobs.job_id".into())),
            Box::new(Expr::Literal(Value::Int(7))),
        );
        assert_eq!(e.equality_lookup_on("jobs", "job_id", &[]), Some(Value::Int(7)));
        assert_eq!(e.equality_lookup_on("machines", "job_id", &[]), None);
        let e = Expr::col_eq("job_id", 9);
        assert_eq!(e.equality_lookup_on("jobs", "job_id", &[]), Some(Value::Int(9)));
    }

    #[test]
    fn range_bounds_from_conjunctions() {
        let e = Expr::col_cmp("job_id", CmpOp::Ge, 2).and(Expr::col_cmp("job_id", CmpOp::Lt, 9));
        let (lo, hi) = e.range_bounds_on("jobs", "job_id", &[]).unwrap();
        assert_eq!(lo, Some(Value::Int(2)));
        assert_eq!(hi, Some(Value::Int(9)), "strict bound widened to inclusive");

        // Tightest bound wins across repeated conjuncts.
        let e = Expr::col_cmp("job_id", CmpOp::Ge, 2).and(Expr::col_cmp("job_id", CmpOp::Gt, 5));
        let (lo, hi) = e.range_bounds_on("jobs", "job_id", &[]).unwrap();
        assert_eq!(lo, Some(Value::Int(5)));
        assert_eq!(hi, None);

        // Literal-on-the-left comparisons flip.
        let e = Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::Literal(Value::Int(10))),
            Box::new(Expr::Column("job_id".into())),
        );
        let (lo, hi) = e.range_bounds_on("jobs", "job_id", &[]).unwrap();
        assert_eq!(lo, None);
        assert_eq!(hi, Some(Value::Int(10)));

        // Disjunctions must not contribute bounds.
        let e = Expr::col_cmp("job_id", CmpOp::Ge, 2).or(Expr::col_eq("state", "idle"));
        assert_eq!(e.range_bounds_on("jobs", "job_id", &[]), None);
        // Other columns and NULL literals contribute nothing.
        assert_eq!(
            Expr::col_cmp("runtime", CmpOp::Ge, 2).range_bounds_on("jobs", "job_id", &[]),
            None
        );
        assert_eq!(
            Expr::col_cmp("job_id", CmpOp::Ge, Value::Null).range_bounds_on("jobs", "job_id", &[]),
            None
        );
    }

    #[test]
    fn params_resolve_through_the_evaluation_context() {
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Column("state".into())),
            Box::new(Expr::Param(0)),
        )
        .and(Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::Column("job_id".into())),
            Box::new(Expr::Param(1)),
        ));
        assert_eq!(e.param_count(), 2);
        assert_eq!(e.to_string(), "((state = ?) AND (job_id > ?))");

        let s = schema();
        let r = row(5, "idle", 2.0, false);
        let params = [Value::Text("idle".into()), Value::Int(3)];
        assert!(e.matches_with(&s, &r, &params).unwrap());
        assert!(!e
            .matches_with(&s, &r, &[Value::Text("held".into()), Value::Int(3)])
            .unwrap());
        // Unbound evaluation and short bindings fail loudly.
        assert!(e.eval(&s, &r).is_err());
        assert!(e.matches_with(&s, &r, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::col_eq("a", 1).and(Expr::col_cmp("b", CmpOp::Lt, 2));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn non_boolean_predicate_is_error() {
        let s = schema();
        let r = row(1, "idle", 2.0, false);
        assert!(Expr::Column("job_id".into()).matches(&s, &r).is_err());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::col_eq("state", "idle").and(Expr::col_cmp("job_id", CmpOp::Gt, 3));
        assert_eq!(e.to_string(), "((state = 'idle') AND ((job_id > 3)))"
            .replace("((job_id > 3))", "(job_id > 3)"));
    }
}
