//! The typed client surface: [`Session`] and the RAII [`Transaction`] guard.
//!
//! The paper's thesis makes the SQL client surface the system's internal API
//! — every cluster-management action is a database action — so this surface
//! is designed to be used everywhere, not just at a console:
//!
//! * parameters bind from plain Rust tuples ([`IntoParams`]), so a service
//!   writes `session.execute(&stmt, (job_id, now_ms))`;
//! * rows decode into structs by column *name* ([`FromRow`] over
//!   [`crate::RowView`]), so a projection reorder cannot silently misassign
//!   fields the way positional indexing does;
//! * transactions are RAII guards: [`Transaction::commit`] consumes the
//!   guard, and dropping it — on early return or mid-panic — rolls back;
//! * batches ([`Session::execute_batch`], [`Session::query_batch`]) run N
//!   bindings of one prepared statement under a single catalog guard with a
//!   single WAL append, for scheduler-sweep-shaped write bursts.

use crate::convert::{FromRow, FromValue, IntoParams, ToStatement};
use crate::db::{Database, ExecResult, Prepared};
use crate::error::{Error, Result};
use crate::exec::QueryResult;
use crate::govern::Governance;
use crate::sql::ast::Statement;
use crate::wal::TxnId;
use std::time::{Duration, Instant};

/// Runs `f` up to `attempts` times, sleeping with capped exponential
/// backoff (50 µs doubling to 2 ms) between attempts, retrying when it
/// fails with a **retryable** error
/// ([`ErrorClass::Retryable`](crate::ErrorClass)). Any other error, or
/// exhausting the attempts, returns the last error.
///
/// This is the engine's one retry policy: [`Session::with_retries`] applies
/// it embedded, and the `wire` crate's client and pool apply it remotely
/// (the wire protocol transports error classes, so retryability is
/// transport-agnostic).
///
/// Durability failures are deliberately **not** retryable: an
/// [`Error::Io`] from a failed fsync poisons the log writer (retrying
/// could acknowledge a commit whose bytes never reached disk), and
/// [`Error::Corruption`] reports damaged on-disk state that no retry can
/// repair.
pub fn retry_with_backoff<T>(attempts: usize, f: impl FnMut() -> Result<T>) -> Result<T> {
    retry_with_backoff_deadline(attempts, None, f)
}

/// As [`retry_with_backoff`], honouring an optional **overall wall-clock
/// deadline across attempts**: once the budget cannot cover the next
/// backoff sleep, retrying stops and the last retryable error is returned.
/// The first attempt always runs — a zero budget degrades to "try once".
///
/// This is the shared implementation behind [`Session::with_retries`] and
/// the wire client/pool `with_retries`, so embedded and remote callers get
/// identical overload behaviour: a caller-facing operation never spins in
/// a retry loop long past the time its own caller was willing to wait.
pub fn retry_with_backoff_deadline<T>(
    attempts: usize,
    overall: Option<Duration>,
    mut f: impl FnMut() -> Result<T>,
) -> Result<T> {
    const BASE_BACKOFF: Duration = Duration::from_micros(50);
    const MAX_BACKOFF: Duration = Duration::from_millis(2);
    let attempts = attempts.max(1);
    let deadline = overall.map(|d| Instant::now() + d);
    let mut backoff = BASE_BACKOFF;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            if let Some(deadline) = deadline {
                // Stop when the remaining budget cannot cover the sleep.
                if Instant::now() + backoff >= deadline {
                    break;
                }
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(MAX_BACKOFF);
        }
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

/// A lightweight client handle over a [`Database`].
///
/// A session is two words (a database reference and an optional open
/// transaction id); open one per request. All typed access — tuple-bound
/// parameters, [`FromRow`] decoding, batches — goes through it. SQL-text
/// transaction control (`BEGIN` / `COMMIT` / `ROLLBACK`) is honoured for
/// console-style callers; programmatic callers should prefer the
/// [`Session::transaction`] RAII guard. A session dropped with an open
/// SQL-level transaction rolls it back.
#[derive(Debug)]
pub struct Session<'a> {
    db: &'a Database,
    txn: Option<TxnId>,
    governance: Governance,
}

impl<'a> Session<'a> {
    /// Creates a session over `db` with no open transaction and no
    /// statement limits.
    pub fn new(db: &'a Database) -> Self {
        Session {
            db,
            txn: None,
            governance: Governance::NONE,
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// Sets the per-statement limits (deadline, cancellation token, row and
    /// byte budgets, lock-wait bound) applied to every statement this
    /// session executes; see [`Governance`]. Returns `self` for chaining.
    pub fn with_governance(mut self, governance: Governance) -> Self {
        self.governance = governance;
        self
    }

    /// Sets this session's statement limits in place.
    pub fn set_governance(&mut self, governance: Governance) {
        self.governance = governance;
    }

    /// The session's current statement limits.
    pub fn governance(&self) -> &Governance {
        &self.governance
    }

    /// True when a SQL-level (`BEGIN`) transaction is open on this session.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Executes one statement — SQL text or a prepared handle — binding
    /// `params` positionally to its `?` placeholders.
    ///
    /// `BEGIN` / `COMMIT` / `ROLLBACK` statements drive the session's
    /// SQL-level transaction; every other statement runs inside the open
    /// transaction if there is one, else in autocommit mode.
    pub fn execute<S: ToStatement, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<ExecResult> {
        let prepared = stmt.to_prepared(self.db)?;
        let values = params.into_params();
        match prepared.statement() {
            Statement::Begin | Statement::Commit | Statement::Rollback if !values.is_empty() => {
                Err(Error::type_err(format!(
                    "transaction-control statements take no parameters, got {}",
                    values.len()
                )))
            }
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(Error::type_err("transaction already open"));
                }
                self.txn = Some(self.db.begin());
                Ok(ExecResult::Ack)
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::type_err("no open transaction"))?;
                self.db.commit(txn)?;
                Ok(ExecResult::Ack)
            }
            Statement::Rollback => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::type_err("no open transaction"))?;
                self.db.rollback(txn)?;
                Ok(ExecResult::Ack)
            }
            _ => match self.txn {
                Some(txn) => self.db.execute_prepared_in_governed(
                    txn,
                    &prepared,
                    &values,
                    &self.governance,
                ),
                None => self
                    .db
                    .execute_prepared_governed(&prepared, &values, &self.governance),
            },
        }
    }

    /// Executes a SELECT and returns its rows.
    pub fn query<S: ToStatement, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<QueryResult> {
        self.execute(stmt, params)?.query()
    }

    /// Executes a SELECT and decodes every row into `T`.
    pub fn query_as<T: FromRow, S: ToStatement, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Vec<T>> {
        self.query(stmt, params)?.decode()
    }

    /// Executes a SELECT and decodes the first row, if any.
    pub fn query_one<T: FromRow, S: ToStatement, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Option<T>> {
        self.query(stmt, params)?.decode_first()
    }

    /// Executes a single-column SELECT and decodes each row's value —
    /// the typed form of "give me the list of ids".
    pub fn query_scalars<T: FromValue, S: ToStatement, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Vec<T>> {
        let result = self.query(stmt, params)?;
        result.views().map(|v| v.get_at(0)).collect()
    }

    /// Executes a prepared DML statement once per binding under one catalog
    /// guard and one WAL append (see [`Database::execute_batch`]). Runs
    /// inside the session's open transaction if there is one.
    pub fn execute_batch<P: IntoParams>(
        &mut self,
        stmt: &Prepared,
        bindings: impl IntoIterator<Item = P>,
    ) -> Result<usize> {
        let bindings: Vec<Vec<_>> = bindings.into_iter().map(IntoParams::into_params).collect();
        match self.txn {
            Some(txn) => {
                self.db
                    .execute_batch_in_governed(txn, stmt, &bindings, &self.governance)
            }
            None => self
                .db
                .execute_batch_governed(stmt, &bindings, &self.governance),
        }
    }

    /// Executes a prepared SELECT once per binding under a single shared
    /// catalog guard (see [`Database::query_batch`]).
    pub fn query_batch<P: IntoParams>(
        &mut self,
        stmt: &Prepared,
        bindings: impl IntoIterator<Item = P>,
    ) -> Result<Vec<QueryResult>> {
        let bindings: Vec<Vec<_>> = bindings.into_iter().map(IntoParams::into_params).collect();
        match self.txn {
            Some(txn) => {
                self.db
                    .query_batch_in_governed(txn, stmt, &bindings, &self.governance)
            }
            None => self.db.query_batch_governed(stmt, &bindings, &self.governance),
        }
    }

    /// Begins an explicit transaction and returns its RAII guard. While the
    /// guard lives the session is mutably borrowed, so all statements go
    /// through the guard; commit consumes it, drop rolls back.
    ///
    /// Fails if a SQL-level `BEGIN` transaction is already open.
    pub fn transaction(&mut self) -> Result<Transaction<'_>> {
        if self.txn.is_some() {
            return Err(Error::type_err(
                "a SQL-level transaction is already open on this session",
            ));
        }
        Ok(Transaction::begin(self.db))
    }

    /// Runs `f` up to `attempts` times, retrying — with capped exponential
    /// backoff — when it fails with a **retryable** error
    /// ([`ErrorClass::Retryable`](crate::ErrorClass): a write-write lock
    /// conflict or a checkpoint-busy condition). Any other error, or
    /// exhausting the attempts, returns the last error to the caller.
    ///
    /// With MVCC, reads never need this — only writers can still conflict —
    /// so wrap the *write* path of a service call:
    ///
    /// ```
    /// # use relstore::Database;
    /// # let db = Database::new();
    /// # db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)")?;
    /// let mut session = db.session();
    /// let updated = session.with_retries(3, |s| {
    ///     let txn = s.transaction()?;
    ///     let n = txn
    ///         .execute("UPDATE jobs SET state = ? WHERE state = ?", ("held", "idle"))?
    ///         .affected();
    ///     txn.commit()?;
    ///     Ok(n)
    /// })?;
    /// # assert_eq!(updated, 0);
    /// # Ok::<(), relstore::Error>(())
    /// ```
    ///
    /// `f` must leave no transaction open on failure (the RAII guard's
    /// rollback-on-drop gives this for free).
    pub fn with_retries<T>(
        &mut self,
        attempts: usize,
        mut f: impl FnMut(&mut Session<'a>) -> Result<T>,
    ) -> Result<T> {
        retry_with_backoff(attempts, || f(self))
    }

    /// As [`Session::with_retries`], with an **overall wall-clock deadline
    /// across attempts**: retrying stops once `overall` has elapsed, even
    /// with attempts left (see [`retry_with_backoff_deadline`]). The first
    /// attempt always runs.
    pub fn with_retries_deadline<T>(
        &mut self,
        attempts: usize,
        overall: Duration,
        mut f: impl FnMut(&mut Session<'a>) -> Result<T>,
    ) -> Result<T> {
        retry_with_backoff_deadline(attempts, Some(overall), || f(self))
    }
}

impl<'a> Drop for Session<'a> {
    fn drop(&mut self) {
        if let Some(txn) = self.txn.take() {
            let _ = self.db.rollback(txn);
        }
    }
}

/// An RAII transaction guard.
///
/// Obtained from [`Database::transaction`] or [`Session::transaction`].
/// Statements executed through the guard run inside the transaction;
/// [`commit`](Transaction::commit) consumes the guard, and dropping it
/// without committing — early return, `?` propagation, or a panic unwinding
/// past it — rolls the transaction back and releases its locks. The id-passing
/// `begin()` / `commit(TxnId)` surface still exists underneath for the
/// recovery machinery, but services should never touch raw ids.
#[derive(Debug)]
pub struct Transaction<'a> {
    db: &'a Database,
    id: TxnId,
    open: bool,
}

impl<'a> Transaction<'a> {
    /// Begins a transaction on `db` (used by the `Database`/`Session`
    /// constructors).
    pub(crate) fn begin(db: &'a Database) -> Self {
        Transaction {
            db,
            id: db.begin(),
            open: true,
        }
    }

    /// The transaction id (for diagnostics; the guard owns its lifecycle).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Executes one statement inside the transaction, binding `params`
    /// positionally. Transaction-control SQL is rejected — the guard is the
    /// transaction control.
    pub fn execute<S: ToStatement, P: IntoParams>(
        &self,
        stmt: S,
        params: P,
    ) -> Result<ExecResult> {
        let prepared = stmt.to_prepared(self.db)?;
        let values = params.into_params();
        self.db.execute_prepared_in(self.id, &prepared, &values)
    }

    /// Executes a SELECT inside the transaction and returns its rows.
    pub fn query<S: ToStatement, P: IntoParams>(
        &self,
        stmt: S,
        params: P,
    ) -> Result<QueryResult> {
        self.execute(stmt, params)?.query()
    }

    /// Executes a SELECT and decodes every row into `T`.
    pub fn query_as<T: FromRow, S: ToStatement, P: IntoParams>(
        &self,
        stmt: S,
        params: P,
    ) -> Result<Vec<T>> {
        self.query(stmt, params)?.decode()
    }

    /// Executes a SELECT and decodes the first row, if any.
    pub fn query_one<T: FromRow, S: ToStatement, P: IntoParams>(
        &self,
        stmt: S,
        params: P,
    ) -> Result<Option<T>> {
        self.query(stmt, params)?.decode_first()
    }

    /// Executes a single-column SELECT and decodes each row's value.
    pub fn query_scalars<T: FromValue, S: ToStatement, P: IntoParams>(
        &self,
        stmt: S,
        params: P,
    ) -> Result<Vec<T>> {
        let result = self.query(stmt, params)?;
        result.views().map(|v| v.get_at(0)).collect()
    }

    /// Executes a prepared DML statement once per binding inside the
    /// transaction — one catalog guard, one WAL append for the whole batch.
    pub fn execute_batch<P: IntoParams>(
        &self,
        stmt: &Prepared,
        bindings: impl IntoIterator<Item = P>,
    ) -> Result<usize> {
        let bindings: Vec<Vec<_>> = bindings.into_iter().map(IntoParams::into_params).collect();
        self.db.execute_batch_in(self.id, stmt, &bindings)
    }

    /// Executes a prepared SELECT once per binding inside the transaction
    /// under a single shared catalog guard.
    pub fn query_batch<P: IntoParams>(
        &self,
        stmt: &Prepared,
        bindings: impl IntoIterator<Item = P>,
    ) -> Result<Vec<QueryResult>> {
        let bindings: Vec<Vec<_>> = bindings.into_iter().map(IntoParams::into_params).collect();
        self.db.query_batch_in(self.id, stmt, &bindings)
    }

    /// Commits the transaction, consuming the guard.
    pub fn commit(mut self) -> Result<()> {
        self.open = false;
        self.db.commit(self.id)
    }

    /// Rolls the transaction back explicitly (dropping the guard does the
    /// same; this form surfaces the result).
    pub fn rollback(mut self) -> Result<()> {
        self.open = false;
        self.db.rollback(self.id)
    }
}

impl<'a> Drop for Transaction<'a> {
    fn drop(&mut self) {
        if self.open {
            let _ = self.db.rollback(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::RowView;
    use crate::value::Value;

    fn setup() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime DOUBLE)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO jobs (job_id, owner, state, runtime) VALUES \
             (1, 'alice', 'idle', 60), (2, 'bob', 'idle', 120), (3, 'alice', 'running', 300)",
        )
        .unwrap();
        db
    }

    #[derive(Debug, PartialEq)]
    struct Job {
        id: i64,
        owner: String,
        state: Option<String>,
        runtime: Option<f64>,
    }

    impl FromRow for Job {
        fn from_row(row: &RowView<'_>) -> crate::Result<Self> {
            Ok(Job {
                id: row.get("job_id")?,
                owner: row.get("owner")?,
                state: row.get("state")?,
                runtime: row.get("runtime")?,
            })
        }
    }

    #[test]
    fn typed_params_and_decoding_round_trip() {
        let db = setup();
        let mut s = db.session();
        // Tuple params against SQL text and against a prepared handle.
        let by_id = db.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
        let job: Job = s.query_one(&by_id, (2i64,)).unwrap().unwrap();
        assert_eq!(job.owner, "bob");
        let jobs: Vec<Job> = s
            .query_as("SELECT * FROM jobs WHERE owner = ? ORDER BY job_id", ("alice",))
            .unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].state.as_deref(), Some("running"));
        // Scalars decode the single projected column.
        let ids: Vec<i64> = s
            .query_scalars("SELECT job_id FROM jobs ORDER BY job_id", ())
            .unwrap();
        assert_eq!(ids, vec![1, 2, 3]);
        // Missing rows decode to None, not an error.
        assert_eq!(s.query_one::<Job, _, _>(&by_id, (99i64,)).unwrap(), None);
    }

    #[test]
    fn from_row_round_trips_nulls() {
        let db = setup();
        let mut s = db.session();
        s.execute(
            "INSERT INTO jobs (job_id, owner, state, runtime) VALUES (?, ?, ?, ?)",
            (7i64, "carol", Option::<String>::None, Option::<f64>::None),
        )
        .unwrap();
        let job: Job = s
            .query_one("SELECT * FROM jobs WHERE job_id = ?", (7i64,))
            .unwrap()
            .unwrap();
        assert_eq!(
            job,
            Job {
                id: 7,
                owner: "carol".into(),
                state: None,
                runtime: None
            }
        );
        // A NULL column refuses to decode into a non-Option target, by name
        // or by position.
        let r = s
            .query("SELECT state FROM jobs WHERE job_id = ?", (7i64,))
            .unwrap();
        let view = r.view(0).unwrap();
        assert!(view.get::<String>("state").is_err());
        assert!(view.get_at::<String>(0).is_err());
        assert_eq!(view.get::<Option<String>>("state").unwrap(), None);
    }

    #[test]
    fn by_name_get_matches_positional_access() {
        let db = setup();
        let r = db
            .query("SELECT job_id, owner, state, runtime FROM jobs ORDER BY job_id")
            .unwrap();
        for (i, view) in r.views().enumerate() {
            // By-name access must agree with the raw positional row.
            assert_eq!(
                view.get::<i64>("job_id").unwrap(),
                r.rows[i].get(0).as_int().unwrap()
            );
            assert_eq!(
                view.get::<String>("owner").unwrap(),
                r.rows[i].get(1).as_text().unwrap()
            );
            assert_eq!(view.get_at::<Value>(2).unwrap(), *r.rows[i].get(2));
        }
        // The view's column names are the interned schema names.
        let view = r.view(0).unwrap();
        assert_eq!(view.columns().len(), 4);
    }

    #[test]
    fn transaction_commit_consumes_and_applies() {
        let db = setup();
        let txn = db.transaction();
        txn.execute(
            "INSERT INTO jobs (job_id, owner) VALUES (?, ?)",
            (10i64, "zoe"),
        )
        .unwrap();
        let inside: Vec<i64> = txn
            .query_scalars("SELECT job_id FROM jobs WHERE owner = ?", ("zoe",))
            .unwrap();
        assert_eq!(inside, vec![10]);
        txn.commit().unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 4);
    }

    #[test]
    fn transaction_rolls_back_on_drop() {
        let db = setup();
        {
            let txn = db.transaction();
            txn.execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("held", 1i64))
                .unwrap();
            // Guard dropped without commit.
        }
        let r = db.query("SELECT state FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("idle".into())));
        // The table lock is released: a new writer succeeds immediately.
        db.execute("UPDATE jobs SET state = 'idle' WHERE job_id = 1").unwrap();
    }

    #[test]
    fn transaction_rolls_back_when_a_panic_unwinds() {
        let db = setup();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let txn = db.transaction();
            txn.execute("DELETE FROM jobs WHERE job_id = ?", (1i64,)).unwrap();
            panic!("service handler crashed mid-transaction");
        }));
        assert!(result.is_err());
        // The delete was rolled back and the lock released by the unwind.
        assert_eq!(db.table_len("jobs").unwrap(), 3);
        db.execute("UPDATE jobs SET state = 'held' WHERE job_id = 1").unwrap();
    }

    #[test]
    fn explicit_rollback_surfaces_result() {
        let db = setup();
        let txn = db.transaction();
        txn.execute("DELETE FROM jobs", ()).unwrap();
        txn.rollback().unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 3);
    }

    #[test]
    fn session_transaction_guard_excludes_sql_level_txn() {
        let db = setup();
        let mut s = db.session();
        {
            let txn = s.transaction().unwrap();
            txn.execute(
                "INSERT INTO jobs (job_id, owner) VALUES (?, ?)",
                (11i64, "pat"),
            )
            .unwrap();
            txn.commit().unwrap();
        }
        assert_eq!(db.table_len("jobs").unwrap(), 4);
        // With a SQL-level BEGIN open, the guard constructor refuses.
        s.execute("BEGIN", ()).unwrap();
        assert!(s.transaction().is_err());
        s.execute("ROLLBACK", ()).unwrap();
    }

    #[test]
    fn session_drives_transactions_through_sql() {
        let db = setup();
        let mut session = db.session();
        session.execute("BEGIN", ()).unwrap();
        assert!(session.in_transaction());
        session
            .execute("INSERT INTO jobs (job_id, owner) VALUES (7, 'sam')", ())
            .unwrap();
        session.execute("ROLLBACK", ()).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 3);

        session.execute("BEGIN", ()).unwrap();
        session
            .execute("INSERT INTO jobs (job_id, owner) VALUES (7, 'sam')", ())
            .unwrap();
        session.execute("COMMIT", ()).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 4);

        assert!(session.execute("COMMIT", ()).is_err());
        assert!(db.session().execute("ROLLBACK", ()).is_err());

        // Transaction control takes no parameters; a stray binding is an
        // arity error, not a silent commit.
        session.execute("BEGIN", ()).unwrap();
        assert!(session.execute("COMMIT", (42i64,)).is_err());
        assert!(session.in_transaction(), "failed COMMIT must not close the txn");
        session.execute("COMMIT", ()).unwrap();
    }

    #[test]
    fn dropped_session_releases_its_transaction() {
        let db = setup();
        {
            let mut session = db.session();
            session.execute("BEGIN", ()).unwrap();
            session
                .execute("UPDATE jobs SET state = 'held' WHERE job_id = 1", ())
                .unwrap();
            // Dropped without commit.
        }
        let r = db.query("SELECT state FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("idle".into())));
    }

    #[test]
    fn execute_batch_equals_the_statement_loop() {
        let batched = setup();
        let looped = setup();
        let ins = "INSERT INTO jobs (job_id, owner, state) VALUES (?, ?, ?)";
        let bindings: Vec<(i64, String, String)> = (10..40)
            .map(|i| (i, format!("u{}", i % 3), "idle".to_string()))
            .collect();

        let stmt = batched.prepare(ins).unwrap();
        let before = batched.stats();
        let n = batched
            .session()
            .execute_batch(&stmt, bindings.clone())
            .unwrap();
        assert_eq!(n, 30);
        let delta = batched.stats().delta_since(&before);
        // One WAL append carries all 30 inserts: Begin + Batch + Commit.
        assert_eq!(delta.wal_records, 3, "batch must append one change record");
        assert_eq!(delta.rows_inserted, 30);

        let stmt = looped.prepare(ins).unwrap();
        let before = looped.stats();
        for b in bindings {
            looped.session().execute(&stmt, b).unwrap();
        }
        let delta = looped.stats().delta_since(&before);
        assert_eq!(delta.rows_inserted, 30);
        assert!(delta.wal_records >= 90, "the loop pays 3 records per insert");

        // Same data in both databases.
        let q = "SELECT job_id, owner, state FROM jobs ORDER BY job_id";
        assert_eq!(batched.query(q).unwrap(), looped.query(q).unwrap());
        batched.check_consistency().unwrap();

        // A batched database recovers identically from its WAL.
        let recovered = Database::recover_from(batched.snapshot_wal()).unwrap();
        assert_eq!(recovered.query(q).unwrap(), batched.query(q).unwrap());
    }

    #[test]
    fn execute_batch_is_atomic_on_failure() {
        let db = setup();
        let stmt = db
            .prepare("INSERT INTO jobs (job_id, owner) VALUES (?, ?)")
            .unwrap();
        // The third binding collides with an existing primary key.
        let err = db
            .session()
            .execute_batch(&stmt, vec![(20i64, "a"), (21, "b"), (1, "dup")])
            .unwrap_err();
        assert_eq!(err.class(), crate::ErrorClass::Constraint);
        assert_eq!(db.table_len("jobs").unwrap(), 3, "no partial batch applies");
        db.check_consistency().unwrap();
    }

    #[test]
    fn execute_batch_rejects_non_dml() {
        let db = setup();
        let sel = db.prepare("SELECT * FROM jobs WHERE job_id = ?").unwrap();
        assert!(db.session().execute_batch(&sel, vec![(1i64,)]).is_err());
        let ins = db
            .prepare("INSERT INTO jobs (job_id, owner) VALUES (?, ?)")
            .unwrap();
        assert!(db.session().query_batch(&ins, vec![(1i64, "x")]).is_err());
        // Arity mismatches are caught before anything runs.
        assert!(db.session().execute_batch(&ins, vec![(1i64,)]).is_err());
        assert_eq!(db.table_len("jobs").unwrap(), 3);
    }

    #[test]
    fn query_batch_pipelines_point_selects() {
        let db = setup();
        let q = db.prepare("SELECT owner FROM jobs WHERE job_id = ?").unwrap();
        let results = db
            .session()
            .query_batch(&q, vec![(1i64,), (3i64,), (99i64,)])
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].first_value("owner"), Some(&Value::from("alice")));
        assert_eq!(results[1].first_value("owner"), Some(&Value::from("alice")));
        assert!(results[2].is_empty());

        // Inside a transaction the batch registers shared locks once and
        // still sees the transaction-local state.
        let txn = db.transaction();
        txn.execute("UPDATE jobs SET owner = ? WHERE job_id = ?", ("eve", 1i64))
            .unwrap();
        let results = txn.query_batch(&q, vec![(1i64,), (2i64,)]).unwrap();
        assert_eq!(results[0].first_value("owner"), Some(&Value::from("eve")));
        txn.rollback().unwrap();
    }

    #[test]
    fn with_retries_retries_only_retryable_errors() {
        let db = setup();
        let mut s = db.session();

        // A transient conflict resolves itself: the helper keeps trying.
        let mut calls = 0;
        let out = s
            .with_retries(5, |_| {
                calls += 1;
                if calls < 3 {
                    Err(Error::LockConflict("simulated".into()))
                } else {
                    Ok(calls)
                }
            })
            .unwrap();
        assert_eq!(out, 3);

        // Exhausted attempts surface the last retryable error.
        let mut calls = 0;
        let err = s
            .with_retries(3, |_| -> Result<()> {
                calls += 1;
                Err(Error::busy("still busy"))
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert!(err.is_retryable());

        // Non-retryable errors propagate immediately, without re-running.
        let mut calls = 0;
        let err = s
            .with_retries(5, |_| -> Result<()> {
                calls += 1;
                Err(Error::constraint("pk"))
            })
            .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(err.class(), crate::ErrorClass::Constraint);
    }

    #[test]
    fn durability_failures_are_never_retried() {
        // A failed fsync poisons the log writer and a corrupt log needs
        // operator intervention — retrying either would be wrong, so both
        // must propagate on the first attempt.
        for err in [Error::io("fsync failed"), Error::corruption("bad crc")] {
            let mut calls = 0;
            let got = retry_with_backoff(5, || -> Result<()> {
                calls += 1;
                Err(err.clone())
            })
            .unwrap_err();
            assert_eq!(calls, 1);
            assert!(!got.is_retryable());
            assert_eq!(got, err);
        }
    }

    #[test]
    fn with_retries_rides_out_a_real_writer_conflict() {
        let db = setup();
        // A writer holds the exclusive lock on `jobs` until the second
        // attempt; the retried transaction then succeeds.
        let writer = std::cell::RefCell::new(Some(db.transaction()));
        writer
            .borrow()
            .as_ref()
            .unwrap()
            .execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("held", 1i64))
            .unwrap();
        let mut attempt = 0;
        let n = db
            .session()
            .with_retries(4, |s| {
                attempt += 1;
                if attempt == 2 {
                    // The conflicting writer commits between attempts.
                    writer.borrow_mut().take().unwrap().commit().unwrap();
                }
                let txn = s.transaction()?;
                let n = txn
                    .execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("done", 2i64))?
                    .affected();
                txn.commit()?;
                Ok(n)
            })
            .unwrap();
        assert_eq!(n, 1);
        assert!(attempt >= 2, "the first attempt must have conflicted");
        let r = db.query("SELECT state FROM jobs WHERE job_id = 2").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::from("done")));
    }

    #[test]
    fn retry_deadline_bounds_the_whole_loop() {
        // An absurd attempt budget is cut short by the wall-clock deadline:
        // without it, 1M attempts at up-to-2ms backoff would take ~30 min.
        let start = Instant::now();
        let mut calls = 0u32;
        let err = retry_with_backoff_deadline(1_000_000, Some(Duration::from_millis(20)), || {
            calls += 1;
            Err::<(), _>(Error::busy("overloaded"))
        })
        .unwrap_err();
        assert!(err.is_retryable());
        assert!(calls >= 2, "the budget allows at least one retry");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "the deadline must stop the loop long before the attempts run out"
        );

        // A zero budget degrades to exactly one attempt.
        let mut calls = 0u32;
        let _ = retry_with_backoff_deadline(10, Some(Duration::ZERO), || {
            calls += 1;
            Err::<(), _>(Error::busy("overloaded"))
        });
        assert_eq!(calls, 1);

        // A success inside the budget returns immediately.
        let out =
            retry_with_backoff_deadline(5, Some(Duration::from_secs(5)), || Ok(7)).unwrap();
        assert_eq!(out, 7);
    }

    #[test]
    fn session_governance_applies_to_every_statement() {
        let db = setup();
        let mut s = db.session().with_governance(Governance {
            max_rows: Some(1),
            ..Governance::default()
        });
        let err = s.query("SELECT * FROM jobs", ()).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
        assert!(db.stats().statements_over_budget >= 1);
        // Statements under the cap still run, in and out of transactions.
        let r = s.query("SELECT * FROM jobs WHERE job_id = ?", (1i64,)).unwrap();
        assert_eq!(r.len(), 1);
        s.execute("BEGIN", ()).unwrap();
        let err = s.query("SELECT * FROM jobs", ()).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
        s.execute("ROLLBACK", ()).unwrap();
    }

    #[test]
    fn batched_reads_never_conflict_with_writers() {
        let db = setup();
        let q = db.prepare("SELECT state FROM jobs WHERE job_id = ?").unwrap();
        let writer = db.transaction();
        writer
            .execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("held", 1i64))
            .unwrap();
        // An autocommit batched read runs against the in-flight writer and
        // observes the committed (pre-update) state.
        let results = db.session().query_batch(&q, vec![(1i64,)]).unwrap();
        assert_eq!(results[0].first_value("state"), Some(&Value::from("idle")));
        writer.commit().unwrap();
        // A fresh batch sees the committed update.
        let results = db.session().query_batch(&q, vec![(1i64,)]).unwrap();
        assert_eq!(results[0].first_value("state"), Some(&Value::from("held")));
    }
}
