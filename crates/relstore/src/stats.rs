//! Operation counters used by the application-server cost model.
//!
//! The CondorJ2 paper's performance argument hinges on "the speed and
//! efficiency with which incoming messages can be transformed into actions on
//! the underlying database". To let the simulator charge CPU and IO time for
//! that work, the storage engine counts every logical operation it performs.
//! The [`appserver::cost`](../appserver) model converts these counts into
//! simulated user/system/IO cycles.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of cumulative engine operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// Rows inserted into any table.
    pub rows_inserted: u64,
    /// Rows deleted from any table.
    pub rows_deleted: u64,
    /// Rows updated in place.
    pub rows_updated: u64,
    /// Rows read (returned or examined by scans and lookups).
    pub rows_read: u64,
    /// Rows examined by full-table scans specifically.
    pub rows_scanned: u64,
    /// Point/range lookups satisfied through an index.
    pub index_lookups: u64,
    /// Individual index maintenance operations (entry insert/remove).
    pub index_maintenance: u64,
    /// SQL statements parsed.
    pub statements_parsed: u64,
    /// Statement-cache hits: executions that reused a cached parse.
    pub cache_hits: u64,
    /// Statement-cache misses: SQL text that had to be parsed.
    pub cache_misses: u64,
    /// Statements executed (parsed or programmatic).
    pub statements_executed: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Records appended to the write-ahead log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Checkpoints taken by the background maintenance task.
    pub checkpoints: u64,
    /// MVCC row versions created (one per INSERT row and one per UPDATE).
    pub versions_created: u64,
    /// MVCC row versions pruned by vacuum.
    pub versions_vacuumed: u64,
    /// MVCC snapshots taken (one per transaction begin and one per
    /// autocommit read statement/batch).
    pub snapshots_taken: u64,
    /// High-water mark of the longest row version chain observed. Unlike
    /// the other counters this is a gauge: `merge` takes the max and
    /// `delta_since` reports the current mark, not a difference.
    pub max_version_chain: u64,
    /// Bytes received from network clients (wire-protocol frames, including
    /// their length prefixes). Counted by the network server.
    pub net_bytes_in: u64,
    /// Bytes sent to network clients (response frames and handshakes).
    pub net_bytes_out: u64,
    /// Wire-protocol frames decoded successfully by the network server.
    pub frames_decoded: u64,
    /// High-water mark of concurrently open network connections. A gauge
    /// like [`OpStats::max_version_chain`]: `merge` takes the max and
    /// `delta_since` reports the current mark, not a difference.
    pub active_connections: u64,
    /// Fsyncs issued against the durable log device (commit syncs, explicit
    /// flushes and checkpoint rotations). Always zero for in-memory logs.
    pub wal_fsyncs: u64,
    /// Log segments rotated: checkpoints that replaced the on-disk segment
    /// with a fresh one via write-then-atomic-rename.
    pub wal_segments_rotated: u64,
    /// Bytes discarded from the tail of the log during recovery because a
    /// crash left a partial (torn) record behind.
    pub recovery_truncated_bytes: u64,
    /// Checksum or decode failures detected in the non-tail region of a log
    /// segment. Any non-zero value accompanied an [`crate::Error::Corruption`].
    pub corruption_detected: u64,
    /// Failpoints that fired in the durable-log IO path (test-only fault
    /// injection; always zero in production use).
    pub failpoints_hit: u64,
    /// Statements cancelled because their deadline expired mid-execution
    /// (surfaced as a statement-deadline [`crate::Error::Timeout`]).
    pub statements_timed_out: u64,
    /// Statements cancelled because a resource budget (max rows / max
    /// result bytes) was exceeded ([`crate::Error::ResourceExhausted`]).
    pub statements_over_budget: u64,
    /// Write statements that found their table lock held and entered a
    /// bounded wait (whether or not the wait eventually succeeded).
    pub lock_waits: u64,
    /// Bounded lock waits that expired without the lock freeing (surfaced
    /// as a retryable lock-wait [`crate::Error::Timeout`]).
    pub lock_wait_timeouts: u64,
    /// Idle transactions aborted by the reaper (locks released, changes
    /// undone, WAL Abort appended).
    pub txns_reaped: u64,
    /// High-water mark of the vacuum horizon lag: how many transaction ids
    /// the oldest live snapshot trails the newest transaction. A gauge like
    /// [`OpStats::max_version_chain`]: `merge` takes the max and
    /// `delta_since` reports the current mark, not a difference.
    pub horizon_lag: u64,
    /// Pages read from the page store (buffer-pool misses and recovery
    /// scans). Always zero for purely in-memory databases.
    pub pages_read: u64,
    /// Pages written to the page store (evictions and checkpoint flushes).
    pub pages_written: u64,
    /// Buffer-pool hits: page accesses satisfied without touching the store.
    pub buffer_hits: u64,
    /// Buffer-pool evictions: frames recycled to make room for another page.
    pub buffer_evictions: u64,
    /// High-water mark of live overflow pages (rows larger than a page). A
    /// gauge like [`OpStats::max_version_chain`]: `merge` takes the max and
    /// `delta_since` reports the current mark, not a difference.
    pub overflow_pages: u64,
}

impl OpStats {
    /// Component-wise difference `self - earlier`, for interval accounting.
    pub fn delta_since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            rows_inserted: self.rows_inserted - earlier.rows_inserted,
            rows_deleted: self.rows_deleted - earlier.rows_deleted,
            rows_updated: self.rows_updated - earlier.rows_updated,
            rows_read: self.rows_read - earlier.rows_read,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            index_lookups: self.index_lookups - earlier.index_lookups,
            index_maintenance: self.index_maintenance - earlier.index_maintenance,
            statements_parsed: self.statements_parsed - earlier.statements_parsed,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            statements_executed: self.statements_executed - earlier.statements_executed,
            commits: self.commits - earlier.commits,
            aborts: self.aborts - earlier.aborts,
            wal_records: self.wal_records - earlier.wal_records,
            wal_bytes: self.wal_bytes - earlier.wal_bytes,
            checkpoints: self.checkpoints - earlier.checkpoints,
            versions_created: self.versions_created - earlier.versions_created,
            versions_vacuumed: self.versions_vacuumed - earlier.versions_vacuumed,
            snapshots_taken: self.snapshots_taken - earlier.snapshots_taken,
            // A high-water mark has no meaningful difference; report the
            // current mark.
            max_version_chain: self.max_version_chain,
            net_bytes_in: self.net_bytes_in - earlier.net_bytes_in,
            net_bytes_out: self.net_bytes_out - earlier.net_bytes_out,
            frames_decoded: self.frames_decoded - earlier.frames_decoded,
            active_connections: self.active_connections,
            wal_fsyncs: self.wal_fsyncs - earlier.wal_fsyncs,
            wal_segments_rotated: self.wal_segments_rotated - earlier.wal_segments_rotated,
            recovery_truncated_bytes: self.recovery_truncated_bytes
                - earlier.recovery_truncated_bytes,
            corruption_detected: self.corruption_detected - earlier.corruption_detected,
            failpoints_hit: self.failpoints_hit - earlier.failpoints_hit,
            statements_timed_out: self.statements_timed_out - earlier.statements_timed_out,
            statements_over_budget: self.statements_over_budget - earlier.statements_over_budget,
            lock_waits: self.lock_waits - earlier.lock_waits,
            lock_wait_timeouts: self.lock_wait_timeouts - earlier.lock_wait_timeouts,
            txns_reaped: self.txns_reaped - earlier.txns_reaped,
            horizon_lag: self.horizon_lag,
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
            buffer_evictions: self.buffer_evictions - earlier.buffer_evictions,
            overflow_pages: self.overflow_pages,
        }
    }

    /// Total number of row mutations (insert + update + delete).
    pub fn total_mutations(&self) -> u64 {
        self.rows_inserted + self.rows_deleted + self.rows_updated
    }

    /// Statement-cache hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Component-wise sum, used when aggregating per-connection counters.
    pub fn merge(&mut self, other: &OpStats) {
        self.rows_inserted += other.rows_inserted;
        self.rows_deleted += other.rows_deleted;
        self.rows_updated += other.rows_updated;
        self.rows_read += other.rows_read;
        self.rows_scanned += other.rows_scanned;
        self.index_lookups += other.index_lookups;
        self.index_maintenance += other.index_maintenance;
        self.statements_parsed += other.statements_parsed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.statements_executed += other.statements_executed;
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.wal_records += other.wal_records;
        self.wal_bytes += other.wal_bytes;
        self.checkpoints += other.checkpoints;
        self.versions_created += other.versions_created;
        self.versions_vacuumed += other.versions_vacuumed;
        self.snapshots_taken += other.snapshots_taken;
        self.max_version_chain = self.max_version_chain.max(other.max_version_chain);
        self.net_bytes_in += other.net_bytes_in;
        self.net_bytes_out += other.net_bytes_out;
        self.frames_decoded += other.frames_decoded;
        self.active_connections = self.active_connections.max(other.active_connections);
        self.wal_fsyncs += other.wal_fsyncs;
        self.wal_segments_rotated += other.wal_segments_rotated;
        self.recovery_truncated_bytes += other.recovery_truncated_bytes;
        self.corruption_detected += other.corruption_detected;
        self.failpoints_hit += other.failpoints_hit;
        self.statements_timed_out += other.statements_timed_out;
        self.statements_over_budget += other.statements_over_budget;
        self.lock_waits += other.lock_waits;
        self.lock_wait_timeouts += other.lock_wait_timeouts;
        self.txns_reaped += other.txns_reaped;
        self.horizon_lag = self.horizon_lag.max(other.horizon_lag);
        self.pages_read += other.pages_read;
        self.pages_written += other.pages_written;
        self.buffer_hits += other.buffer_hits;
        self.buffer_evictions += other.buffer_evictions;
        self.overflow_pages = self.overflow_pages.max(other.overflow_pages);
    }
}

/// Lock-free cumulative counters shared by every session of a database.
///
/// Statement execution accumulates its work into a stack-local [`OpStats`]
/// and merges the delta here once at the end, so the read path never needs
/// `&mut` access to shared engine state just to count rows. Counters use
/// relaxed ordering: totals are exact (every delta lands), but a concurrent
/// [`snapshot`](SharedStats::snapshot) may observe one statement's fields
/// partially applied — fine for monitoring and the simulation cost model,
/// which both read between statements.
#[derive(Debug, Default)]
pub struct SharedStats {
    rows_inserted: AtomicU64,
    rows_deleted: AtomicU64,
    rows_updated: AtomicU64,
    rows_read: AtomicU64,
    rows_scanned: AtomicU64,
    index_lookups: AtomicU64,
    index_maintenance: AtomicU64,
    statements_parsed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    statements_executed: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    checkpoints: AtomicU64,
    versions_created: AtomicU64,
    versions_vacuumed: AtomicU64,
    snapshots_taken: AtomicU64,
    max_version_chain: AtomicU64,
    net_bytes_in: AtomicU64,
    net_bytes_out: AtomicU64,
    frames_decoded: AtomicU64,
    active_connections: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_segments_rotated: AtomicU64,
    recovery_truncated_bytes: AtomicU64,
    corruption_detected: AtomicU64,
    failpoints_hit: AtomicU64,
    statements_timed_out: AtomicU64,
    statements_over_budget: AtomicU64,
    lock_waits: AtomicU64,
    lock_wait_timeouts: AtomicU64,
    txns_reaped: AtomicU64,
    horizon_lag: AtomicU64,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    buffer_hits: AtomicU64,
    buffer_evictions: AtomicU64,
    overflow_pages: AtomicU64,
}

impl SharedStats {
    /// Merges a per-statement delta into the shared totals.
    pub fn record(&self, delta: &OpStats) {
        // Skip the RMW for fields the statement never touched (most deltas
        // are sparse: a point select bumps three or four of sixteen).
        fn add(counter: &AtomicU64, v: u64) {
            if v != 0 {
                counter.fetch_add(v, Ordering::Relaxed);
            }
        }
        add(&self.rows_inserted, delta.rows_inserted);
        add(&self.rows_deleted, delta.rows_deleted);
        add(&self.rows_updated, delta.rows_updated);
        add(&self.rows_read, delta.rows_read);
        add(&self.rows_scanned, delta.rows_scanned);
        add(&self.index_lookups, delta.index_lookups);
        add(&self.index_maintenance, delta.index_maintenance);
        add(&self.statements_parsed, delta.statements_parsed);
        add(&self.cache_hits, delta.cache_hits);
        add(&self.cache_misses, delta.cache_misses);
        add(&self.statements_executed, delta.statements_executed);
        add(&self.commits, delta.commits);
        add(&self.aborts, delta.aborts);
        add(&self.wal_records, delta.wal_records);
        add(&self.wal_bytes, delta.wal_bytes);
        add(&self.checkpoints, delta.checkpoints);
        add(&self.versions_created, delta.versions_created);
        add(&self.versions_vacuumed, delta.versions_vacuumed);
        add(&self.snapshots_taken, delta.snapshots_taken);
        if delta.max_version_chain != 0 {
            self.max_version_chain
                .fetch_max(delta.max_version_chain, Ordering::Relaxed);
        }
        add(&self.net_bytes_in, delta.net_bytes_in);
        add(&self.net_bytes_out, delta.net_bytes_out);
        add(&self.frames_decoded, delta.frames_decoded);
        if delta.active_connections != 0 {
            self.active_connections
                .fetch_max(delta.active_connections, Ordering::Relaxed);
        }
        add(&self.wal_fsyncs, delta.wal_fsyncs);
        add(&self.wal_segments_rotated, delta.wal_segments_rotated);
        add(&self.recovery_truncated_bytes, delta.recovery_truncated_bytes);
        add(&self.corruption_detected, delta.corruption_detected);
        add(&self.failpoints_hit, delta.failpoints_hit);
        add(&self.statements_timed_out, delta.statements_timed_out);
        add(&self.statements_over_budget, delta.statements_over_budget);
        add(&self.lock_waits, delta.lock_waits);
        add(&self.lock_wait_timeouts, delta.lock_wait_timeouts);
        add(&self.txns_reaped, delta.txns_reaped);
        if delta.horizon_lag != 0 {
            self.horizon_lag
                .fetch_max(delta.horizon_lag, Ordering::Relaxed);
        }
        add(&self.pages_read, delta.pages_read);
        add(&self.pages_written, delta.pages_written);
        add(&self.buffer_hits, delta.buffer_hits);
        add(&self.buffer_evictions, delta.buffer_evictions);
        if delta.overflow_pages != 0 {
            self.overflow_pages
                .fetch_max(delta.overflow_pages, Ordering::Relaxed);
        }
    }

    /// Copies the current totals into a plain [`OpStats`] value.
    pub fn snapshot(&self) -> OpStats {
        OpStats {
            rows_inserted: self.rows_inserted.load(Ordering::Relaxed),
            rows_deleted: self.rows_deleted.load(Ordering::Relaxed),
            rows_updated: self.rows_updated.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            index_lookups: self.index_lookups.load(Ordering::Relaxed),
            index_maintenance: self.index_maintenance.load(Ordering::Relaxed),
            statements_parsed: self.statements_parsed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            statements_executed: self.statements_executed.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            versions_created: self.versions_created.load(Ordering::Relaxed),
            versions_vacuumed: self.versions_vacuumed.load(Ordering::Relaxed),
            snapshots_taken: self.snapshots_taken.load(Ordering::Relaxed),
            max_version_chain: self.max_version_chain.load(Ordering::Relaxed),
            net_bytes_in: self.net_bytes_in.load(Ordering::Relaxed),
            net_bytes_out: self.net_bytes_out.load(Ordering::Relaxed),
            frames_decoded: self.frames_decoded.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            wal_segments_rotated: self.wal_segments_rotated.load(Ordering::Relaxed),
            recovery_truncated_bytes: self.recovery_truncated_bytes.load(Ordering::Relaxed),
            corruption_detected: self.corruption_detected.load(Ordering::Relaxed),
            failpoints_hit: self.failpoints_hit.load(Ordering::Relaxed),
            statements_timed_out: self.statements_timed_out.load(Ordering::Relaxed),
            statements_over_budget: self.statements_over_budget.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            lock_wait_timeouts: self.lock_wait_timeouts.load(Ordering::Relaxed),
            txns_reaped: self.txns_reaped.load(Ordering::Relaxed),
            horizon_lag: self.horizon_lag.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            buffer_evictions: self.buffer_evictions.load(Ordering::Relaxed),
            overflow_pages: self.overflow_pages.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_componentwise() {
        let earlier = OpStats {
            rows_inserted: 5,
            rows_read: 10,
            ..Default::default()
        };
        let later = OpStats {
            rows_inserted: 8,
            rows_read: 25,
            commits: 2,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.rows_inserted, 3);
        assert_eq!(d.rows_read, 15);
        assert_eq!(d.commits, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpStats {
            rows_updated: 1,
            wal_bytes: 100,
            ..Default::default()
        };
        let b = OpStats {
            rows_updated: 2,
            wal_bytes: 50,
            aborts: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_updated, 3);
        assert_eq!(a.wal_bytes, 150);
        assert_eq!(a.aborts, 1);
    }

    #[test]
    fn cache_counters_flow_through_delta_and_merge() {
        let earlier = OpStats {
            cache_hits: 2,
            cache_misses: 1,
            ..Default::default()
        };
        let later = OpStats {
            cache_hits: 10,
            cache_misses: 3,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.cache_hits, 8);
        assert_eq!(d.cache_misses, 2);

        let mut merged = earlier;
        merged.merge(&later);
        assert_eq!(merged.cache_hits, 12);
        assert_eq!(merged.cache_misses, 4);
        assert_eq!(merged.cache_hit_rate(), Some(12.0 / 16.0));
        assert_eq!(OpStats::default().cache_hit_rate(), None);
    }

    #[test]
    fn shared_stats_record_and_snapshot() {
        let shared = SharedStats::default();
        shared.record(&OpStats {
            rows_read: 5,
            cache_hits: 1,
            ..Default::default()
        });
        shared.record(&OpStats {
            rows_read: 2,
            commits: 1,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.rows_read, 7);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.rows_inserted, 0);
    }

    #[test]
    fn shared_stats_merge_from_threads() {
        let shared = std::sync::Arc::new(SharedStats::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    for _ in 0..1000 {
                        shared.record(&OpStats {
                            rows_read: 1,
                            ..Default::default()
                        });
                    }
                });
            }
        });
        assert_eq!(shared.snapshot().rows_read, 4000);
    }

    #[test]
    fn mvcc_counters_and_the_chain_gauge() {
        let mut a = OpStats {
            versions_created: 3,
            max_version_chain: 4,
            ..Default::default()
        };
        let b = OpStats {
            versions_created: 2,
            versions_vacuumed: 5,
            snapshots_taken: 1,
            max_version_chain: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.versions_created, 5);
        assert_eq!(a.versions_vacuumed, 5);
        assert_eq!(a.snapshots_taken, 1);
        assert_eq!(a.max_version_chain, 4, "merge keeps the high-water mark");

        let shared = SharedStats::default();
        shared.record(&OpStats {
            max_version_chain: 3,
            ..Default::default()
        });
        shared.record(&OpStats {
            max_version_chain: 2,
            versions_vacuumed: 1,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.max_version_chain, 3, "record keeps the larger mark");
        assert_eq!(snap.versions_vacuumed, 1);
        let d = snap.delta_since(&OpStats {
            versions_vacuumed: 1,
            ..Default::default()
        });
        assert_eq!(d.versions_vacuumed, 0);
        assert_eq!(d.max_version_chain, 3, "delta reports the current mark");
    }

    #[test]
    fn network_counters_and_the_connection_gauge() {
        let mut a = OpStats {
            net_bytes_in: 100,
            frames_decoded: 2,
            active_connections: 4,
            ..Default::default()
        };
        let b = OpStats {
            net_bytes_in: 50,
            net_bytes_out: 80,
            frames_decoded: 1,
            active_connections: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.net_bytes_in, 150);
        assert_eq!(a.net_bytes_out, 80);
        assert_eq!(a.frames_decoded, 3);
        assert_eq!(a.active_connections, 4, "merge keeps the high-water mark");

        let shared = SharedStats::default();
        shared.record(&OpStats {
            net_bytes_in: 64,
            net_bytes_out: 32,
            frames_decoded: 1,
            active_connections: 3,
            ..Default::default()
        });
        shared.record(&OpStats {
            active_connections: 1,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.net_bytes_in, 64);
        assert_eq!(snap.net_bytes_out, 32);
        assert_eq!(snap.frames_decoded, 1);
        assert_eq!(snap.active_connections, 3, "record keeps the larger mark");
        let d = snap.delta_since(&OpStats {
            net_bytes_in: 14,
            ..Default::default()
        });
        assert_eq!(d.net_bytes_in, 50);
        assert_eq!(d.active_connections, 3, "delta reports the current mark");
    }

    #[test]
    fn durability_counters_flow_through_delta_merge_and_shared() {
        let mut a = OpStats {
            wal_fsyncs: 4,
            wal_segments_rotated: 1,
            ..Default::default()
        };
        let b = OpStats {
            wal_fsyncs: 2,
            recovery_truncated_bytes: 17,
            corruption_detected: 1,
            failpoints_hit: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.wal_fsyncs, 6);
        assert_eq!(a.wal_segments_rotated, 1);
        assert_eq!(a.recovery_truncated_bytes, 17);
        assert_eq!(a.corruption_detected, 1);
        assert_eq!(a.failpoints_hit, 3);

        let shared = SharedStats::default();
        shared.record(&a);
        shared.record(&OpStats {
            wal_fsyncs: 1,
            wal_segments_rotated: 2,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.wal_fsyncs, 7);
        assert_eq!(snap.wal_segments_rotated, 3);
        assert_eq!(snap.recovery_truncated_bytes, 17);

        let d = snap.delta_since(&OpStats {
            wal_fsyncs: 5,
            corruption_detected: 1,
            ..Default::default()
        });
        assert_eq!(d.wal_fsyncs, 2);
        assert_eq!(d.corruption_detected, 0);
        assert_eq!(d.failpoints_hit, 3);
    }

    #[test]
    fn governance_counters_and_the_horizon_gauge() {
        let mut a = OpStats {
            statements_timed_out: 1,
            lock_waits: 3,
            horizon_lag: 7,
            ..Default::default()
        };
        let b = OpStats {
            statements_over_budget: 2,
            lock_waits: 1,
            lock_wait_timeouts: 1,
            txns_reaped: 4,
            horizon_lag: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.statements_timed_out, 1);
        assert_eq!(a.statements_over_budget, 2);
        assert_eq!(a.lock_waits, 4);
        assert_eq!(a.lock_wait_timeouts, 1);
        assert_eq!(a.txns_reaped, 4);
        assert_eq!(a.horizon_lag, 7, "merge keeps the high-water mark");

        let shared = SharedStats::default();
        shared.record(&a);
        shared.record(&OpStats {
            txns_reaped: 1,
            horizon_lag: 2,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.txns_reaped, 5);
        assert_eq!(snap.horizon_lag, 7, "record keeps the larger mark");
        let d = snap.delta_since(&OpStats {
            txns_reaped: 2,
            ..Default::default()
        });
        assert_eq!(d.txns_reaped, 3);
        assert_eq!(d.horizon_lag, 7, "delta reports the current mark");
    }

    #[test]
    fn paging_counters_and_the_overflow_gauge() {
        let mut a = OpStats {
            pages_read: 10,
            buffer_hits: 50,
            overflow_pages: 3,
            ..Default::default()
        };
        let b = OpStats {
            pages_read: 5,
            pages_written: 7,
            buffer_evictions: 4,
            overflow_pages: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pages_read, 15);
        assert_eq!(a.pages_written, 7);
        assert_eq!(a.buffer_hits, 50);
        assert_eq!(a.buffer_evictions, 4);
        assert_eq!(a.overflow_pages, 3, "merge keeps the high-water mark");

        let shared = SharedStats::default();
        shared.record(&a);
        shared.record(&OpStats {
            pages_written: 1,
            overflow_pages: 9,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.pages_read, 15);
        assert_eq!(snap.pages_written, 8);
        assert_eq!(snap.overflow_pages, 9, "record keeps the larger mark");
        let d = snap.delta_since(&OpStats {
            pages_read: 10,
            ..Default::default()
        });
        assert_eq!(d.pages_read, 5);
        assert_eq!(d.overflow_pages, 9, "delta reports the current mark");
    }

    #[test]
    fn total_mutations_sums_writes() {
        let s = OpStats {
            rows_inserted: 2,
            rows_deleted: 3,
            rows_updated: 4,
            rows_read: 100,
            ..Default::default()
        };
        assert_eq!(s.total_mutations(), 9);
    }
}
