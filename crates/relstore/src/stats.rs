//! Operation counters used by the application-server cost model.
//!
//! The CondorJ2 paper's performance argument hinges on "the speed and
//! efficiency with which incoming messages can be transformed into actions on
//! the underlying database". To let the simulator charge CPU and IO time for
//! that work, the storage engine counts every logical operation it performs.
//! The [`appserver::cost`](../appserver) model converts these counts into
//! simulated user/system/IO cycles.

use serde::{Deserialize, Serialize};

/// A snapshot of cumulative engine operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// Rows inserted into any table.
    pub rows_inserted: u64,
    /// Rows deleted from any table.
    pub rows_deleted: u64,
    /// Rows updated in place.
    pub rows_updated: u64,
    /// Rows read (returned or examined by scans and lookups).
    pub rows_read: u64,
    /// Rows examined by full-table scans specifically.
    pub rows_scanned: u64,
    /// Point/range lookups satisfied through an index.
    pub index_lookups: u64,
    /// Individual index maintenance operations (entry insert/remove).
    pub index_maintenance: u64,
    /// SQL statements parsed.
    pub statements_parsed: u64,
    /// Statement-cache hits: executions that reused a cached parse.
    pub cache_hits: u64,
    /// Statement-cache misses: SQL text that had to be parsed.
    pub cache_misses: u64,
    /// Statements executed (parsed or programmatic).
    pub statements_executed: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Records appended to the write-ahead log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Checkpoints taken by the background maintenance task.
    pub checkpoints: u64,
}

impl OpStats {
    /// Component-wise difference `self - earlier`, for interval accounting.
    pub fn delta_since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            rows_inserted: self.rows_inserted - earlier.rows_inserted,
            rows_deleted: self.rows_deleted - earlier.rows_deleted,
            rows_updated: self.rows_updated - earlier.rows_updated,
            rows_read: self.rows_read - earlier.rows_read,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            index_lookups: self.index_lookups - earlier.index_lookups,
            index_maintenance: self.index_maintenance - earlier.index_maintenance,
            statements_parsed: self.statements_parsed - earlier.statements_parsed,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            statements_executed: self.statements_executed - earlier.statements_executed,
            commits: self.commits - earlier.commits,
            aborts: self.aborts - earlier.aborts,
            wal_records: self.wal_records - earlier.wal_records,
            wal_bytes: self.wal_bytes - earlier.wal_bytes,
            checkpoints: self.checkpoints - earlier.checkpoints,
        }
    }

    /// Total number of row mutations (insert + update + delete).
    pub fn total_mutations(&self) -> u64 {
        self.rows_inserted + self.rows_deleted + self.rows_updated
    }

    /// Statement-cache hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Component-wise sum, used when aggregating per-connection counters.
    pub fn merge(&mut self, other: &OpStats) {
        self.rows_inserted += other.rows_inserted;
        self.rows_deleted += other.rows_deleted;
        self.rows_updated += other.rows_updated;
        self.rows_read += other.rows_read;
        self.rows_scanned += other.rows_scanned;
        self.index_lookups += other.index_lookups;
        self.index_maintenance += other.index_maintenance;
        self.statements_parsed += other.statements_parsed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.statements_executed += other.statements_executed;
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.wal_records += other.wal_records;
        self.wal_bytes += other.wal_bytes;
        self.checkpoints += other.checkpoints;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_componentwise() {
        let earlier = OpStats {
            rows_inserted: 5,
            rows_read: 10,
            ..Default::default()
        };
        let later = OpStats {
            rows_inserted: 8,
            rows_read: 25,
            commits: 2,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.rows_inserted, 3);
        assert_eq!(d.rows_read, 15);
        assert_eq!(d.commits, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpStats {
            rows_updated: 1,
            wal_bytes: 100,
            ..Default::default()
        };
        let b = OpStats {
            rows_updated: 2,
            wal_bytes: 50,
            aborts: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_updated, 3);
        assert_eq!(a.wal_bytes, 150);
        assert_eq!(a.aborts, 1);
    }

    #[test]
    fn cache_counters_flow_through_delta_and_merge() {
        let earlier = OpStats {
            cache_hits: 2,
            cache_misses: 1,
            ..Default::default()
        };
        let later = OpStats {
            cache_hits: 10,
            cache_misses: 3,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.cache_hits, 8);
        assert_eq!(d.cache_misses, 2);

        let mut merged = earlier;
        merged.merge(&later);
        assert_eq!(merged.cache_hits, 12);
        assert_eq!(merged.cache_misses, 4);
        assert_eq!(merged.cache_hit_rate(), Some(12.0 / 16.0));
        assert_eq!(OpStats::default().cache_hit_rate(), None);
    }

    #[test]
    fn total_mutations_sums_writes() {
        let s = OpStats {
            rows_inserted: 2,
            rows_deleted: 3,
            rows_updated: 4,
            rows_read: 100,
            ..Default::default()
        };
        assert_eq!(s.total_mutations(), 9);
    }
}
