//! Operation counters used by the application-server cost model.
//!
//! The CondorJ2 paper's performance argument hinges on "the speed and
//! efficiency with which incoming messages can be transformed into actions on
//! the underlying database". To let the simulator charge CPU and IO time for
//! that work, the storage engine counts every logical operation it performs.
//! The [`appserver::cost`](../appserver) model converts these counts into
//! simulated user/system/IO cycles.
//!
//! Every field is declared exactly once in the `define_stats!` table below,
//! which generates [`OpStats`], [`SharedStats`], and the interval/merge/
//! introspection operations. Two field kinds exist:
//!
//! - `counter`: monotonically non-decreasing totals. `merge` sums,
//!   `delta_since` subtracts, [`SharedStats::record`] adds.
//! - `gauge`: high-water marks. `merge` takes the max, `delta_since` reports
//!   the current mark (a high-water mark has no meaningful difference), and
//!   [`SharedStats::record`] takes the max.
//!
//! The kind of each field is queryable at runtime through
//! [`OpStats::is_gauge`], and [`OpStats::fields`] enumerates `(name, value)`
//! pairs — this is what backs the `rel_stats` virtual system table and the
//! chaos-soak monotonicity invariant.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Declares every engine counter once and expands the snapshot struct, the
/// shared atomic struct, and all component-wise operations from that single
/// table. Adding a counter is a one-line change; `delta_since`, `merge`,
/// `record`, `snapshot`, `fields` and `is_gauge` can never drift out of sync
/// with the struct again.
macro_rules! define_stats {
    ($( $kind:tt $name:ident: $doc:literal, )+) => {
        /// A snapshot of cumulative engine operation counts.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
        pub struct OpStats {
            $( #[doc = $doc] pub $name: u64, )+
        }

        impl OpStats {
            /// Component-wise difference `self - earlier`, for interval
            /// accounting. Gauges report the current mark, not a difference.
            pub fn delta_since(&self, earlier: &OpStats) -> OpStats {
                OpStats {
                    $( $name: define_stats!(@delta $kind, self.$name, earlier.$name), )+
                }
            }

            /// Component-wise sum (counters) / max (gauges), used when
            /// aggregating per-connection counters.
            pub fn merge(&mut self, other: &OpStats) {
                $( define_stats!(@merge $kind, self.$name, other.$name); )+
            }

            /// Every `(field name, value)` pair, in declaration order. Backs
            /// the `rel_stats` virtual system table and generic invariant
            /// checks that must not be rewritten per field.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )+ ]
            }

            /// Whether the named field is a high-water-mark gauge (as opposed
            /// to a monotone counter). Unknown names return `false`.
            pub fn is_gauge(name: &str) -> bool {
                match name {
                    $( stringify!($name) => define_stats!(@isgauge $kind), )+
                    _ => false,
                }
            }
        }

        /// Lock-free cumulative counters shared by every session of a database.
        ///
        /// Statement execution accumulates its work into a stack-local
        /// [`OpStats`] and merges the delta here once at the end, so the read
        /// path never needs `&mut` access to shared engine state just to count
        /// rows. Counters use relaxed ordering: totals are exact (every delta
        /// lands), but a concurrent [`snapshot`](SharedStats::snapshot) may
        /// observe one statement's fields partially applied — fine for
        /// monitoring and the simulation cost model, which both read between
        /// statements.
        #[derive(Debug, Default)]
        pub struct SharedStats {
            $( $name: AtomicU64, )+
        }

        impl SharedStats {
            /// Merges a per-statement delta into the shared totals.
            pub fn record(&self, delta: &OpStats) {
                // Skip the RMW for fields the statement never touched (most
                // deltas are sparse: a point select bumps four of forty).
                $( define_stats!(@record $kind, self.$name, delta.$name); )+
            }

            /// Copies the current totals into a plain [`OpStats`] value.
            pub fn snapshot(&self) -> OpStats {
                OpStats {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }
        }
    };

    (@delta counter, $a:expr, $b:expr) => { $a - $b };
    (@delta gauge, $a:expr, $b:expr) => { $a };
    (@merge counter, $a:expr, $b:expr) => { $a += $b };
    (@merge gauge, $a:expr, $b:expr) => { $a = $a.max($b) };
    (@isgauge counter) => { false };
    (@isgauge gauge) => { true };
    (@record counter, $c:expr, $v:expr) => {
        if $v != 0 {
            $c.fetch_add($v, Ordering::Relaxed);
        }
    };
    (@record gauge, $c:expr, $v:expr) => {
        if $v != 0 {
            $c.fetch_max($v, Ordering::Relaxed);
        }
    };
}

define_stats! {
    counter rows_inserted: "Rows inserted into any table.",
    counter rows_deleted: "Rows deleted from any table.",
    counter rows_updated: "Rows updated in place.",
    counter rows_read: "Rows read (returned or examined by scans and lookups).",
    counter rows_scanned: "Rows examined by full-table scans specifically.",
    counter index_lookups: "Point/range lookups satisfied through an index.",
    counter index_maintenance:
        "Individual index maintenance operations (entry insert/remove).",
    counter statements_parsed: "SQL statements parsed.",
    counter cache_hits:
        "Statement-cache hits: executions that reused a cached parse.",
    counter cache_misses:
        "Statement-cache misses: SQL text that had to be parsed.",
    counter statements_executed: "Statements executed (parsed or programmatic).",
    counter commits: "Transactions committed.",
    counter aborts: "Transactions aborted.",
    counter wal_records: "Records appended to the write-ahead log.",
    counter wal_bytes: "Bytes appended to the write-ahead log.",
    counter checkpoints: "Checkpoints taken by the background maintenance task.",
    counter versions_created:
        "MVCC row versions created (one per INSERT row and one per UPDATE).",
    counter versions_vacuumed: "MVCC row versions pruned by vacuum.",
    counter snapshots_taken:
        "MVCC snapshots taken (one per transaction begin and one per \
         autocommit read statement/batch).",
    gauge max_version_chain:
        "High-water mark of the longest row version chain observed. Unlike \
         the other counters this is a gauge: `merge` takes the max and \
         `delta_since` reports the current mark, not a difference.",
    counter net_bytes_in:
        "Bytes received from network clients (wire-protocol frames, including \
         their length prefixes). Counted by the network server.",
    counter net_bytes_out:
        "Bytes sent to network clients (response frames and handshakes).",
    counter frames_decoded:
        "Wire-protocol frames decoded successfully by the network server.",
    gauge active_connections:
        "High-water mark of concurrently open network connections. A gauge \
         like [`OpStats::max_version_chain`]: `merge` takes the max and \
         `delta_since` reports the current mark, not a difference.",
    counter wal_fsyncs:
        "Fsyncs issued against the durable log device (commit syncs, explicit \
         flushes and checkpoint rotations). Always zero for in-memory logs.",
    counter wal_fsync_nanos:
        "Cumulative nanoseconds spent inside durable-log fsyncs (the device \
         sync during commit/flush and the atomic replace during checkpoint \
         rotation). Always zero for in-memory logs.",
    counter wal_segments_rotated:
        "Log segments rotated: checkpoints that replaced the on-disk segment \
         with a fresh one via write-then-atomic-rename.",
    counter recovery_truncated_bytes:
        "Bytes discarded from the tail of the log during recovery because a \
         crash left a partial (torn) record behind.",
    counter corruption_detected:
        "Checksum or decode failures detected in the non-tail region of a log \
         segment. Any non-zero value accompanied an [`crate::Error::Corruption`].",
    counter failpoints_hit:
        "Failpoints that fired in the durable-log IO path (test-only fault \
         injection; always zero in production use).",
    counter statements_timed_out:
        "Statements cancelled because their deadline expired mid-execution \
         (surfaced as a statement-deadline [`crate::Error::Timeout`]).",
    counter statements_over_budget:
        "Statements cancelled because a resource budget (max rows / max \
         result bytes) was exceeded ([`crate::Error::ResourceExhausted`]).",
    counter lock_waits:
        "Write statements that found their table lock held and entered a \
         bounded wait (whether or not the wait eventually succeeded).",
    counter lock_wait_nanos:
        "Cumulative nanoseconds write statements spent blocked in bounded \
         table-lock waits. Zero-cost when no statement ever waits.",
    counter lock_wait_timeouts:
        "Bounded lock waits that expired without the lock freeing (surfaced \
         as a retryable lock-wait [`crate::Error::Timeout`]).",
    counter txns_reaped:
        "Idle transactions aborted by the reaper (locks released, changes \
         undone, WAL Abort appended).",
    gauge horizon_lag:
        "High-water mark of the vacuum horizon lag: how many transaction ids \
         the oldest live snapshot trails the newest transaction. A gauge like \
         [`OpStats::max_version_chain`]: `merge` takes the max and \
         `delta_since` reports the current mark, not a difference.",
    counter pages_read:
        "Pages read from the page store (buffer-pool misses and recovery \
         scans). Always zero for purely in-memory databases.",
    counter pages_written:
        "Pages written to the page store (evictions and checkpoint flushes).",
    counter buffer_hits:
        "Buffer-pool hits: page accesses satisfied without touching the store.",
    counter buffer_evictions:
        "Buffer-pool evictions: frames recycled to make room for another page.",
    counter eviction_nanos:
        "Cumulative nanoseconds spent recycling buffer-pool frames (including \
         the write-back of dirty pages, whose WAL flush also lands in \
         [`OpStats::wal_fsync_nanos`] — the two overlap by design).",
    counter slow_queries:
        "Statements whose total duration met the armed slow-query threshold \
         and were captured in the slow-query ring (see `rel_slow_queries`). \
         Always zero while the slow-query log is disarmed.",
    gauge overflow_pages:
        "High-water mark of live overflow pages (rows larger than a page). A \
         gauge like [`OpStats::max_version_chain`]: `merge` takes the max and \
         `delta_since` reports the current mark, not a difference.",
    counter tables_analyzed:
        "Tables whose planner statistics were (re)collected by ANALYZE.",
    counter plans_built:
        "Select plans built by the cost-based planner (joined selects only; \
         the single-table path chooses its access path inline).",
    counter plan_cache_hits:
        "Joined-select executions that reused a prepared statement's cached \
         plan instead of replanning.",
    counter build_reuse_hits:
        "Hash-join build sides reused from a prepared statement's plan cache \
         instead of being rebuilt.",
    counter subqueries_executed:
        "Scalar and IN subqueries executed while rewriting WHERE clauses.",
}

impl OpStats {
    /// Total number of row mutations (insert + update + delete).
    pub fn total_mutations(&self) -> u64 {
        self.rows_inserted + self.rows_deleted + self.rows_updated
    }

    /// Statement-cache hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_componentwise() {
        let earlier = OpStats {
            rows_inserted: 5,
            rows_read: 10,
            ..Default::default()
        };
        let later = OpStats {
            rows_inserted: 8,
            rows_read: 25,
            commits: 2,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.rows_inserted, 3);
        assert_eq!(d.rows_read, 15);
        assert_eq!(d.commits, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpStats {
            rows_updated: 1,
            wal_bytes: 100,
            ..Default::default()
        };
        let b = OpStats {
            rows_updated: 2,
            wal_bytes: 50,
            aborts: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_updated, 3);
        assert_eq!(a.wal_bytes, 150);
        assert_eq!(a.aborts, 1);
    }

    #[test]
    fn cache_counters_flow_through_delta_and_merge() {
        let earlier = OpStats {
            cache_hits: 2,
            cache_misses: 1,
            ..Default::default()
        };
        let later = OpStats {
            cache_hits: 10,
            cache_misses: 3,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.cache_hits, 8);
        assert_eq!(d.cache_misses, 2);

        let mut merged = earlier;
        merged.merge(&later);
        assert_eq!(merged.cache_hits, 12);
        assert_eq!(merged.cache_misses, 4);
        assert_eq!(merged.cache_hit_rate(), Some(12.0 / 16.0));
        assert_eq!(OpStats::default().cache_hit_rate(), None);
    }

    #[test]
    fn shared_stats_record_and_snapshot() {
        let shared = SharedStats::default();
        shared.record(&OpStats {
            rows_read: 5,
            cache_hits: 1,
            ..Default::default()
        });
        shared.record(&OpStats {
            rows_read: 2,
            commits: 1,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.rows_read, 7);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.rows_inserted, 0);
    }

    #[test]
    fn shared_stats_merge_from_threads() {
        let shared = std::sync::Arc::new(SharedStats::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    for _ in 0..1000 {
                        shared.record(&OpStats {
                            rows_read: 1,
                            ..Default::default()
                        });
                    }
                });
            }
        });
        assert_eq!(shared.snapshot().rows_read, 4000);
    }

    #[test]
    fn mvcc_counters_and_the_chain_gauge() {
        let mut a = OpStats {
            versions_created: 3,
            max_version_chain: 4,
            ..Default::default()
        };
        let b = OpStats {
            versions_created: 2,
            versions_vacuumed: 5,
            snapshots_taken: 1,
            max_version_chain: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.versions_created, 5);
        assert_eq!(a.versions_vacuumed, 5);
        assert_eq!(a.snapshots_taken, 1);
        assert_eq!(a.max_version_chain, 4, "merge keeps the high-water mark");

        let shared = SharedStats::default();
        shared.record(&OpStats {
            max_version_chain: 3,
            ..Default::default()
        });
        shared.record(&OpStats {
            max_version_chain: 2,
            versions_vacuumed: 1,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.max_version_chain, 3, "record keeps the larger mark");
        assert_eq!(snap.versions_vacuumed, 1);
        let d = snap.delta_since(&OpStats {
            versions_vacuumed: 1,
            ..Default::default()
        });
        assert_eq!(d.versions_vacuumed, 0);
        assert_eq!(d.max_version_chain, 3, "delta reports the current mark");
    }

    #[test]
    fn network_counters_and_the_connection_gauge() {
        let mut a = OpStats {
            net_bytes_in: 100,
            frames_decoded: 2,
            active_connections: 4,
            ..Default::default()
        };
        let b = OpStats {
            net_bytes_in: 50,
            net_bytes_out: 80,
            frames_decoded: 1,
            active_connections: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.net_bytes_in, 150);
        assert_eq!(a.net_bytes_out, 80);
        assert_eq!(a.frames_decoded, 3);
        assert_eq!(a.active_connections, 4, "merge keeps the high-water mark");

        let shared = SharedStats::default();
        shared.record(&OpStats {
            net_bytes_in: 64,
            net_bytes_out: 32,
            frames_decoded: 1,
            active_connections: 3,
            ..Default::default()
        });
        shared.record(&OpStats {
            active_connections: 1,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.net_bytes_in, 64);
        assert_eq!(snap.net_bytes_out, 32);
        assert_eq!(snap.frames_decoded, 1);
        assert_eq!(snap.active_connections, 3, "record keeps the larger mark");
        let d = snap.delta_since(&OpStats {
            net_bytes_in: 14,
            ..Default::default()
        });
        assert_eq!(d.net_bytes_in, 50);
        assert_eq!(d.active_connections, 3, "delta reports the current mark");
    }

    #[test]
    fn durability_counters_flow_through_delta_merge_and_shared() {
        let mut a = OpStats {
            wal_fsyncs: 4,
            wal_segments_rotated: 1,
            ..Default::default()
        };
        let b = OpStats {
            wal_fsyncs: 2,
            recovery_truncated_bytes: 17,
            corruption_detected: 1,
            failpoints_hit: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.wal_fsyncs, 6);
        assert_eq!(a.wal_segments_rotated, 1);
        assert_eq!(a.recovery_truncated_bytes, 17);
        assert_eq!(a.corruption_detected, 1);
        assert_eq!(a.failpoints_hit, 3);

        let shared = SharedStats::default();
        shared.record(&a);
        shared.record(&OpStats {
            wal_fsyncs: 1,
            wal_segments_rotated: 2,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.wal_fsyncs, 7);
        assert_eq!(snap.wal_segments_rotated, 3);
        assert_eq!(snap.recovery_truncated_bytes, 17);

        let d = snap.delta_since(&OpStats {
            wal_fsyncs: 5,
            corruption_detected: 1,
            ..Default::default()
        });
        assert_eq!(d.wal_fsyncs, 2);
        assert_eq!(d.corruption_detected, 0);
        assert_eq!(d.failpoints_hit, 3);
    }

    #[test]
    fn governance_counters_and_the_horizon_gauge() {
        let mut a = OpStats {
            statements_timed_out: 1,
            lock_waits: 3,
            horizon_lag: 7,
            ..Default::default()
        };
        let b = OpStats {
            statements_over_budget: 2,
            lock_waits: 1,
            lock_wait_timeouts: 1,
            txns_reaped: 4,
            horizon_lag: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.statements_timed_out, 1);
        assert_eq!(a.statements_over_budget, 2);
        assert_eq!(a.lock_waits, 4);
        assert_eq!(a.lock_wait_timeouts, 1);
        assert_eq!(a.txns_reaped, 4);
        assert_eq!(a.horizon_lag, 7, "merge keeps the high-water mark");

        let shared = SharedStats::default();
        shared.record(&a);
        shared.record(&OpStats {
            txns_reaped: 1,
            horizon_lag: 2,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.txns_reaped, 5);
        assert_eq!(snap.horizon_lag, 7, "record keeps the larger mark");
        let d = snap.delta_since(&OpStats {
            txns_reaped: 2,
            ..Default::default()
        });
        assert_eq!(d.txns_reaped, 3);
        assert_eq!(d.horizon_lag, 7, "delta reports the current mark");
    }

    #[test]
    fn paging_counters_and_the_overflow_gauge() {
        let mut a = OpStats {
            pages_read: 10,
            buffer_hits: 50,
            overflow_pages: 3,
            ..Default::default()
        };
        let b = OpStats {
            pages_read: 5,
            pages_written: 7,
            buffer_evictions: 4,
            overflow_pages: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pages_read, 15);
        assert_eq!(a.pages_written, 7);
        assert_eq!(a.buffer_hits, 50);
        assert_eq!(a.buffer_evictions, 4);
        assert_eq!(a.overflow_pages, 3, "merge keeps the high-water mark");

        let shared = SharedStats::default();
        shared.record(&a);
        shared.record(&OpStats {
            pages_written: 1,
            overflow_pages: 9,
            ..Default::default()
        });
        let snap = shared.snapshot();
        assert_eq!(snap.pages_read, 15);
        assert_eq!(snap.pages_written, 8);
        assert_eq!(snap.overflow_pages, 9, "record keeps the larger mark");
        let d = snap.delta_since(&OpStats {
            pages_read: 10,
            ..Default::default()
        });
        assert_eq!(d.pages_read, 5);
        assert_eq!(d.overflow_pages, 9, "delta reports the current mark");
    }

    #[test]
    fn total_mutations_sums_writes() {
        let s = OpStats {
            rows_inserted: 2,
            rows_deleted: 3,
            rows_updated: 4,
            rows_read: 100,
            ..Default::default()
        };
        assert_eq!(s.total_mutations(), 9);
    }

    #[test]
    fn fields_enumerates_every_counter_in_declaration_order() {
        let s = OpStats {
            rows_inserted: 7,
            slow_queries: 2,
            subqueries_executed: 5,
            ..Default::default()
        };
        let fields = s.fields();
        assert_eq!(fields.first(), Some(&("rows_inserted", 7)));
        assert_eq!(fields.last(), Some(&("subqueries_executed", 5)));
        assert!(fields.contains(&("slow_queries", 2)));
        assert!(fields.contains(&("overflow_pages", 0)));
        assert!(fields.contains(&("wal_fsync_nanos", 0)));
        // One entry per struct field, no duplicates.
        let names: std::collections::BTreeSet<_> = fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), fields.len());
    }

    #[test]
    fn gauge_kind_is_introspectable() {
        for gauge in [
            "max_version_chain",
            "active_connections",
            "horizon_lag",
            "overflow_pages",
        ] {
            assert!(OpStats::is_gauge(gauge), "{gauge} should be a gauge");
        }
        for counter in [
            "rows_inserted",
            "statements_executed",
            "wal_fsync_nanos",
            "lock_wait_nanos",
            "eviction_nanos",
            "slow_queries",
        ] {
            assert!(!OpStats::is_gauge(counter), "{counter} should be a counter");
        }
        assert!(!OpStats::is_gauge("no_such_field"));
    }

    #[test]
    fn timing_counters_flow_through_delta_and_merge() {
        let mut a = OpStats {
            lock_wait_nanos: 1_000,
            wal_fsync_nanos: 2_000,
            ..Default::default()
        };
        let b = OpStats {
            lock_wait_nanos: 500,
            eviction_nanos: 300,
            slow_queries: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.lock_wait_nanos, 1_500);
        assert_eq!(a.wal_fsync_nanos, 2_000);
        assert_eq!(a.eviction_nanos, 300);
        assert_eq!(a.slow_queries, 1);

        let shared = SharedStats::default();
        shared.record(&a);
        let snap = shared.snapshot();
        let d = snap.delta_since(&OpStats {
            lock_wait_nanos: 1_000,
            ..Default::default()
        });
        assert_eq!(d.lock_wait_nanos, 500);
        assert_eq!(d.wal_fsync_nanos, 2_000);
    }
}
