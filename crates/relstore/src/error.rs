//! Error types for the relational store.

use std::fmt;

/// All errors surfaced by the relational engine.
///
/// The variants are deliberately coarse-grained: callers (the application
/// server, the CondorJ2 services) generally either retry, abort the enclosing
/// transaction, or surface the message to an administrator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table, column or index that was referenced does not exist.
    NotFound(String),
    /// An object with the same name already exists.
    AlreadyExists(String),
    /// A statement or expression failed type checking or evaluation.
    Type(String),
    /// The SQL text could not be tokenised or parsed.
    Parse(String),
    /// A constraint (primary key / not-null / uniqueness) was violated.
    Constraint(String),
    /// The requested lock could not be acquired (conflict with another
    /// in-flight transaction). The transaction should abort and retry.
    LockConflict(String),
    /// The transaction handle is no longer usable (already committed/aborted).
    TxnClosed(String),
    /// The write-ahead log or recovery machinery failed.
    Wal(String),
    /// Catch-all for internal invariant violations. Seeing this is a bug.
    Internal(String),
}

impl Error {
    /// Convenience constructor for [`Error::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        Error::NotFound(what.into())
    }

    /// Convenience constructor for [`Error::Type`].
    pub fn type_err(msg: impl Into<String>) -> Self {
        Error::Type(msg.into())
    }

    /// Convenience constructor for [`Error::Parse`].
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }

    /// Convenience constructor for [`Error::Constraint`].
    pub fn constraint(msg: impl Into<String>) -> Self {
        Error::Constraint(msg.into())
    }

    /// Convenience constructor for [`Error::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// True when the error indicates a transient conflict that a caller may
    /// safely retry after backing off.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::LockConflict(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(s) => write!(f, "not found: {s}"),
            Error::AlreadyExists(s) => write!(f, "already exists: {s}"),
            Error::Type(s) => write!(f, "type error: {s}"),
            Error::Parse(s) => write!(f, "parse error: {s}"),
            Error::Constraint(s) => write!(f, "constraint violation: {s}"),
            Error::LockConflict(s) => write!(f, "lock conflict: {s}"),
            Error::TxnClosed(s) => write!(f, "transaction closed: {s}"),
            Error::Wal(s) => write!(f, "wal error: {s}"),
            Error::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::not_found("table jobs");
        assert_eq!(e.to_string(), "not found: table jobs");
        let e = Error::parse("unexpected token");
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::LockConflict("row 5".into()).is_retryable());
        assert!(!Error::not_found("x").is_retryable());
        assert!(!Error::constraint("pk").is_retryable());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::not_found("x"), Error::not_found("x"));
        assert_ne!(Error::not_found("x"), Error::not_found("y"));
    }
}
