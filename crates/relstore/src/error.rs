//! Error types for the relational store.

use std::fmt;

/// All errors surfaced by the relational engine.
///
/// The variants are deliberately coarse-grained: callers (the application
/// server, the CondorJ2 services) generally either retry, abort the enclosing
/// transaction, or surface the message to an administrator. Service layers
/// should branch on [`Error::class`] / [`Error::is_retryable`] rather than on
/// variant names or message text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table, column or index that was referenced does not exist.
    NotFound(String),
    /// An object with the same name already exists.
    AlreadyExists(String),
    /// A statement or expression failed type checking or evaluation.
    Type(String),
    /// The SQL text could not be tokenised or parsed.
    Parse(String),
    /// A constraint (primary key / not-null / uniqueness) was violated.
    Constraint(String),
    /// The requested lock could not be acquired (conflict with another
    /// in-flight transaction). The transaction should abort and retry.
    LockConflict(String),
    /// The engine is temporarily unable to run a maintenance operation (e.g.
    /// a checkpoint requested while transactions are active). Retry later.
    Busy(String),
    /// The transaction handle is no longer usable (already committed/aborted).
    TxnClosed(String),
    /// The write-ahead log or recovery machinery failed.
    Wal(String),
    /// A network transport failure: the connection dropped, a frame could
    /// not be decoded, or the peer spoke a different protocol version.
    /// Surfaced by the wire-protocol client and server; the embedded engine
    /// never produces it. Not retryable on the same connection — callers
    /// holding a pool should discard the connection and take a fresh one.
    Net(String),
    /// A durable-log IO operation failed: a write or fsync against the log
    /// device errored, or the log writer is poisoned by an earlier such
    /// failure. A commit that surfaces this was **not** acknowledged as
    /// durable; the database stays readable but accepts no further commits
    /// until reopened.
    Io(String),
    /// The durable log is damaged: a record in the non-tail region of the
    /// segment failed its checksum or decoded to garbage. Recovery refuses to
    /// guess — it fails loudly rather than silently dropping committed data.
    Corruption(String),
    /// A deadline expired before the operation finished. The
    /// [`TimeoutKind`] decides the class: a statement that outran its own
    /// deadline is a **logic** error (retrying the same statement will time
    /// out again), while a bounded lock wait that expired is **retryable**
    /// (the holder will commit or abort and free the lock).
    Timeout {
        /// Which deadline expired.
        kind: TimeoutKind,
        /// Human-readable context.
        msg: String,
    },
    /// A per-statement resource budget (max rows materialized, max result
    /// bytes) was exceeded. The statement was cancelled before the engine
    /// built the oversized result; narrow the query or raise the budget.
    ResourceExhausted(String),
    /// Catch-all for internal invariant violations. Seeing this is a bug.
    Internal(String),
}

/// Which deadline an [`Error::Timeout`] reports, determining its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeoutKind {
    /// The statement's own deadline expired mid-execution. Class
    /// [`ErrorClass::Logic`]: the same statement will time out again.
    Statement,
    /// A bounded wait for a write lock expired without the lock freeing.
    /// Class [`ErrorClass::Retryable`]: the holding transaction will finish.
    LockWait,
}

/// The coarse taxonomy of engine errors, used by service layers to decide how
/// to react without matching on variant names or message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// A transient condition (lock conflict, checkpoint-busy). Retrying the
    /// same request after backing off is expected to succeed.
    Retryable,
    /// The request itself is wrong: unparseable SQL, a type/arity mismatch,
    /// an unknown or duplicate object, or a closed transaction handle.
    /// Retrying without changing the request will fail again.
    Logic,
    /// The request was well-formed but violated a data-integrity rule
    /// (primary key, uniqueness, NOT NULL). The data, not the code, decides.
    Constraint,
    /// The engine itself failed (WAL corruption, broken invariants).
    /// Not caller-correctable; surface to an operator.
    Internal,
}

impl Error {
    /// Convenience constructor for [`Error::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        Error::NotFound(what.into())
    }

    /// Convenience constructor for [`Error::Type`].
    pub fn type_err(msg: impl Into<String>) -> Self {
        Error::Type(msg.into())
    }

    /// Convenience constructor for [`Error::Parse`].
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }

    /// Convenience constructor for [`Error::Constraint`].
    pub fn constraint(msg: impl Into<String>) -> Self {
        Error::Constraint(msg.into())
    }

    /// Convenience constructor for [`Error::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Convenience constructor for [`Error::Busy`].
    pub fn busy(msg: impl Into<String>) -> Self {
        Error::Busy(msg.into())
    }

    /// Convenience constructor for [`Error::Net`].
    pub fn net(msg: impl Into<String>) -> Self {
        Error::Net(msg.into())
    }

    /// Convenience constructor for [`Error::Io`].
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io(msg.into())
    }

    /// Convenience constructor for [`Error::Corruption`].
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for a statement-deadline [`Error::Timeout`].
    pub fn statement_timeout(msg: impl Into<String>) -> Self {
        Error::Timeout {
            kind: TimeoutKind::Statement,
            msg: msg.into(),
        }
    }

    /// Convenience constructor for a lock-wait [`Error::Timeout`].
    pub fn lock_wait_timeout(msg: impl Into<String>) -> Self {
        Error::Timeout {
            kind: TimeoutKind::LockWait,
            msg: msg.into(),
        }
    }

    /// Convenience constructor for [`Error::ResourceExhausted`].
    pub fn resource_exhausted(msg: impl Into<String>) -> Self {
        Error::ResourceExhausted(msg.into())
    }

    /// Classifies the error into the coarse [`ErrorClass`] taxonomy.
    pub fn class(&self) -> ErrorClass {
        match self {
            Error::LockConflict(_) | Error::Busy(_) => ErrorClass::Retryable,
            Error::Timeout { kind, .. } => match kind {
                TimeoutKind::LockWait => ErrorClass::Retryable,
                TimeoutKind::Statement => ErrorClass::Logic,
            },
            Error::NotFound(_)
            | Error::AlreadyExists(_)
            | Error::Type(_)
            | Error::Parse(_)
            | Error::ResourceExhausted(_)
            | Error::TxnClosed(_) => ErrorClass::Logic,
            Error::Constraint(_) => ErrorClass::Constraint,
            Error::Wal(_)
            | Error::Net(_)
            | Error::Io(_)
            | Error::Corruption(_)
            | Error::Internal(_) => ErrorClass::Internal,
        }
    }

    /// True when the error indicates a transient conflict that a caller may
    /// safely retry after backing off (shorthand for
    /// `class() == ErrorClass::Retryable`).
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Retryable
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(s) => write!(f, "not found: {s}"),
            Error::AlreadyExists(s) => write!(f, "already exists: {s}"),
            Error::Type(s) => write!(f, "type error: {s}"),
            Error::Parse(s) => write!(f, "parse error: {s}"),
            Error::Constraint(s) => write!(f, "constraint violation: {s}"),
            Error::LockConflict(s) => write!(f, "lock conflict: {s}"),
            Error::Busy(s) => write!(f, "busy: {s}"),
            Error::TxnClosed(s) => write!(f, "transaction closed: {s}"),
            Error::Wal(s) => write!(f, "wal error: {s}"),
            Error::Net(s) => write!(f, "network error: {s}"),
            Error::Io(s) => write!(f, "io error: {s}"),
            Error::Corruption(s) => write!(f, "corruption detected: {s}"),
            Error::Timeout { kind, msg } => match kind {
                TimeoutKind::Statement => write!(f, "statement timeout: {msg}"),
                TimeoutKind::LockWait => write!(f, "lock wait timeout: {msg}"),
            },
            Error::ResourceExhausted(s) => write!(f, "resource budget exceeded: {s}"),
            Error::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::not_found("table jobs");
        assert_eq!(e.to_string(), "not found: table jobs");
        let e = Error::parse("unexpected token");
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::LockConflict("row 5".into()).is_retryable());
        assert!(Error::busy("checkpoint with 2 active txns").is_retryable());
        assert!(!Error::not_found("x").is_retryable());
        assert!(!Error::constraint("pk").is_retryable());
    }

    #[test]
    fn error_classes_cover_the_taxonomy() {
        assert_eq!(Error::LockConflict("t".into()).class(), ErrorClass::Retryable);
        assert_eq!(Error::busy("checkpoint").class(), ErrorClass::Retryable);
        assert_eq!(Error::parse("bad token").class(), ErrorClass::Logic);
        assert_eq!(Error::type_err("arity").class(), ErrorClass::Logic);
        assert_eq!(Error::not_found("jobs").class(), ErrorClass::Logic);
        assert_eq!(Error::AlreadyExists("jobs".into()).class(), ErrorClass::Logic);
        assert_eq!(Error::TxnClosed("txn9".into()).class(), ErrorClass::Logic);
        assert_eq!(Error::constraint("pk").class(), ErrorClass::Constraint);
        assert_eq!(Error::Wal("bad record".into()).class(), ErrorClass::Internal);
        assert_eq!(Error::net("connection reset").class(), ErrorClass::Internal);
        assert!(!Error::net("truncated frame").is_retryable());
        assert_eq!(Error::io("fsync failed").class(), ErrorClass::Internal);
        assert!(!Error::io("fsync failed").is_retryable());
        assert_eq!(Error::corruption("bad crc").class(), ErrorClass::Internal);
        assert!(!Error::corruption("bad crc").is_retryable());
        assert_eq!(Error::internal("bug").class(), ErrorClass::Internal);
        assert_eq!(
            Error::lock_wait_timeout("jobs").class(),
            ErrorClass::Retryable
        );
        assert!(Error::lock_wait_timeout("jobs").is_retryable());
        assert_eq!(Error::statement_timeout("scan").class(), ErrorClass::Logic);
        assert!(!Error::statement_timeout("scan").is_retryable());
        assert_eq!(
            Error::resource_exhausted("rows").class(),
            ErrorClass::Logic
        );
        assert!(!Error::resource_exhausted("rows").is_retryable());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::not_found("x"), Error::not_found("x"));
        assert_ne!(Error::not_found("x"), Error::not_found("y"));
    }
}
