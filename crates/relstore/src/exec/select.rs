//! SELECT execution: plan-driven access paths and joins, subquery
//! rewriting, filtering, sorting, projection; plus the shared row-matching
//! helper used by UPDATE/DELETE.
//!
//! Execution is driven by the planner in [`crate::plan`]: joins run in the
//! planned order (hash join for single-equality `ON` predicates, nested
//! loop otherwise) with single-table WHERE conjuncts pushed down to each
//! input, and the full filter re-applied afterwards as a correctness
//! backstop. Subqueries in WHERE are executed first and spliced back in as
//! literals / `IN` lists, so the rest of the pipeline never sees them.
//!
//! The single-table path (the vast majority of service-call queries) is
//! allocation-light: access paths stream borrowed [`StoredRowRef`]s out of
//! the heap, predicates are evaluated against the borrow, and only values
//! that survive projection are cloned. Output column names are `Arc<str>`s
//! interned from the schema, so a point select allocates the result rows and
//! nothing else — cost-based path choice borrows candidate columns from the
//! schema and allocates nothing.

use super::aggregate::execute_aggregate;
use super::QueryResult;
use crate::error::{Error, Result};
use crate::govern::{approx_row_bytes, Governor};
use crate::mvcc::Snapshot;
use crate::obs::Stopwatch;
use crate::plan::{
    choose_access_ref, plan_select, AccessPath, AccessPlan, CachedBuild, JoinStrategy, PathChoice,
    PlanProfile, SelectPlan, StepActuals,
};
use crate::predicate::Expr;
use crate::schema::{Column, Schema};
use crate::sql::ast::{SelectItem, SelectStmt, SortOrder};
use crate::stats::OpStats;
use crate::table::{RowIter, Table};
use crate::tuple::{Row, RowId, StoredRowRef};
use crate::value::Value;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// The catalog type the executor reads from.
pub type Catalog = BTreeMap<String, Table>;

fn get_table<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a Table> {
    // Catalog keys are lower-case; lower_name skips the per-lookup
    // allocation for the common case of an already-lower-case name.
    catalog
        .get(crate::schema::lower_name(name).as_ref())
        .ok_or_else(|| Error::not_found(format!("table {name}")))
}

/// Resolves a possibly-unqualified column name against a (possibly joined)
/// schema whose columns carry qualified `table.column` names.
///
/// Borrows the input when it is already the resolved spelling — the common
/// case for parser output, which lower-cases identifiers — so per-query
/// resolution does not allocate.
fn resolve_column<'a>(schema: &Schema, name: &'a str) -> Result<Cow<'a, str>> {
    let lname = crate::schema::lower_name(name);
    if schema.column_index(&lname).is_ok() {
        return Ok(lname);
    }
    if !lname.contains('.') {
        // A bare name against a joined schema with qualified column names.
        let mut found: Option<&Column> = None;
        for c in &schema.columns {
            if let Some((_, bare)) = c.name.split_once('.') {
                if bare == lname.as_ref() {
                    if found.is_some() {
                        return Err(Error::type_err(format!(
                            "ambiguous column {name} in {}",
                            schema.name
                        )));
                    }
                    found = Some(c);
                }
            }
        }
        if let Some(c) = found {
            return Ok(Cow::Owned(c.name.to_string()));
        }
    } else if let Some((_, bare)) = lname.split_once('.') {
        // A qualified name used against a single-table schema with bare names.
        if schema.column_index(bare).is_ok() {
            return Ok(match lname {
                Cow::Borrowed(s) => Cow::Borrowed(s.split_once('.').expect("contains '.'").1),
                Cow::Owned(s) => Cow::Owned(s.split_once('.').expect("contains '.'").1.to_string()),
            });
        }
    }
    Err(Error::not_found(format!(
        "column {name} in {}",
        schema.name
    )))
}

/// Rewrites every column reference in `expr` to its resolved name in
/// `schema`, borrowing the input expression when nothing needs rewriting
/// (no clone on the hot path).
fn resolve_expr<'a>(expr: &'a Expr, schema: &Schema) -> Result<Cow<'a, Expr>> {
    fn binary<'a>(
        expr: &'a Expr,
        l: &'a Expr,
        r: &'a Expr,
        schema: &Schema,
        rebuild: impl FnOnce(Box<Expr>, Box<Expr>) -> Expr,
    ) -> Result<Cow<'a, Expr>> {
        let lr = resolve_expr(l, schema)?;
        let rr = resolve_expr(r, schema)?;
        Ok(match (lr, rr) {
            (Cow::Borrowed(_), Cow::Borrowed(_)) => Cow::Borrowed(expr),
            (lr, rr) => Cow::Owned(rebuild(Box::new(lr.into_owned()), Box::new(rr.into_owned()))),
        })
    }
    fn unary<'a>(
        expr: &'a Expr,
        e: &'a Expr,
        schema: &Schema,
        rebuild: impl FnOnce(Box<Expr>) -> Expr,
    ) -> Result<Cow<'a, Expr>> {
        Ok(match resolve_expr(e, schema)? {
            Cow::Borrowed(_) => Cow::Borrowed(expr),
            Cow::Owned(inner) => Cow::Owned(rebuild(Box::new(inner))),
        })
    }
    Ok(match expr {
        Expr::Literal(_) | Expr::Param(_) => Cow::Borrowed(expr),
        Expr::Column(c) => {
            let resolved = resolve_column(schema, c)?;
            if resolved == *c {
                Cow::Borrowed(expr)
            } else {
                Cow::Owned(Expr::Column(resolved.into_owned()))
            }
        }
        Expr::Cmp(op, l, r) => binary(expr, l, r, schema, |l, r| Expr::Cmp(*op, l, r))?,
        Expr::Arith(op, l, r) => binary(expr, l, r, schema, |l, r| Expr::Arith(*op, l, r))?,
        Expr::And(l, r) => binary(expr, l, r, schema, Expr::And)?,
        Expr::Or(l, r) => binary(expr, l, r, schema, Expr::Or)?,
        Expr::Not(e) => unary(expr, e, schema, Expr::Not)?,
        Expr::IsNull(e) => unary(expr, e, schema, Expr::IsNull)?,
        Expr::IsNotNull(e) => unary(expr, e, schema, Expr::IsNotNull)?,
        Expr::InList(e, list) => match resolve_expr(e, schema)? {
            Cow::Borrowed(_) => Cow::Borrowed(expr),
            Cow::Owned(inner) => Cow::Owned(Expr::InList(Box::new(inner), list.clone())),
        },
        // Subqueries are rewritten into literals / IN lists before the
        // WHERE clause is resolved; reaching one here means it sits in a
        // position the engine does not support (projection, SET, ...).
        Expr::InSubquery(..) | Expr::ScalarSubquery(_) => {
            return Err(Error::type_err(
                "subqueries are only supported in the WHERE clause of a SELECT",
            ))
        }
    })
}

/// Builds the qualified schema describing `table` prefixed with its name.
fn qualified_schema(table: &Table) -> Schema {
    let columns = table
        .schema
        .columns
        .iter()
        .map(|c| Column {
            name: format!("{}.{}", table.schema.name, c.name).into(),
            ty: c.ty,
            not_null: c.not_null,
        })
        .collect();
    Schema::new(table.schema.name.clone(), columns)
}

/// Streams the base table through the cost-chosen access path (see
/// [`choose_access_ref`]): the most selective of the point lookups and
/// range scans the filter permits, or a full scan. Every path yields a
/// *superset* of the matching rows — the caller re-applies the filter — and
/// path choice borrows candidate columns from the schema, so planning and
/// row access allocate nothing beyond the id list of an index probe.
/// `force_scan` pins a full scan (bench baseline knob).
fn access_base_table<'a>(
    table: &'a Table,
    filter: Option<&Expr>,
    params: &[Value],
    vis: &'a Snapshot,
    stats: &mut OpStats,
    force_scan: bool,
) -> RowIter<'a> {
    if let (false, Some(filter)) = (force_scan, filter) {
        let name = &*table.schema.name;
        match choose_access_ref(table, Some(filter)).0 {
            PathChoice::Point(col, _) => {
                if let Some(key) = filter.equality_lookup_on(name, col, params) {
                    if let Some(rows) = table.lookup_indexed(col, &key, vis, stats) {
                        return rows;
                    }
                }
            }
            PathChoice::Range(col) => {
                if let Some((lo, hi)) = filter.range_bounds_on(name, col, params) {
                    if let Some(rows) = table.lookup_range(col, lo.as_ref(), hi.as_ref(), vis, stats)
                    {
                        return rows;
                    }
                }
            }
            PathChoice::Scan => {}
        }
    }
    table.scan(vis, stats)
}

/// Streams one join input through the access path its plan chose,
/// extracting point/range keys from the pushed-down predicate at execution
/// time (plans for prepared statements are built before `?` parameters are
/// bound). Falls back to a scan when the key cannot be extracted — the
/// pushdown predicate is still applied by the caller, so this is only a
/// cost difference.
fn access_planned<'a>(
    table: &'a Table,
    access: &AccessPlan,
    pred: Option<&Expr>,
    params: &[Value],
    vis: &'a Snapshot,
    stats: &mut OpStats,
) -> RowIter<'a> {
    let name = &*table.schema.name;
    match (&access.path, pred) {
        (AccessPath::Point { column, .. }, Some(pred)) => {
            if let Some(key) = pred.equality_lookup_on(name, column, params) {
                if let Some(rows) = table.lookup_indexed(column, &key, vis, stats) {
                    return rows;
                }
            }
            table.scan(vis, stats)
        }
        (AccessPath::Range { column }, Some(pred)) => {
            if let Some((lo, hi)) = pred.range_bounds_on(name, column, params) {
                if let Some(rows) = table.lookup_range(column, lo.as_ref(), hi.as_ref(), vis, stats)
                {
                    return rows;
                }
            }
            table.scan(vis, stats)
        }
        _ => table.scan(vis, stats),
    }
}

/// Executes every subquery in `expr` against the caller's snapshot and
/// splices the result back in: a scalar subquery becomes a literal (NULL
/// when it returns no row; more than one row is an error), `IN (SELECT …)`
/// becomes an `IN` value list. The list keeps NULLs, so SQL's three-valued
/// `IN` semantics fall out of [`Expr::InList`] evaluation: `x IN (…)` is
/// NULL — not FALSE — when nothing matched but a NULL could have.
///
/// Subqueries are executed exactly once per statement execution (they are
/// uncorrelated: a reference to an outer column surfaces as a
/// column-not-found error from the inner query), which makes an
/// `IN (SELECT …)` a degenerate semi-join: the inner side materializes
/// once, then every outer row probes the list.
fn rewrite_subqueries(
    catalog: &Catalog,
    expr: &Expr,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
) -> Result<Expr> {
    fn subquery_values(
        catalog: &Catalog,
        sel: &SelectStmt,
        params: &[Value],
        vis: &Snapshot,
        stats: &mut OpStats,
        gov: &mut Governor,
    ) -> Result<Vec<Value>> {
        stats.subqueries_executed += 1;
        let r = execute_select_opts(catalog, sel, params, vis, stats, gov, ExecOptions::default())?;
        if r.columns.len() != 1 {
            return Err(Error::type_err(format!(
                "subquery must return exactly one column, got {}",
                r.columns.len()
            )));
        }
        Ok(r.rows
            .into_iter()
            .map(|mut row| row.values.pop().expect("one column"))
            .collect())
    }
    let rw = |e: &Expr, stats: &mut OpStats, gov: &mut Governor| -> Result<Box<Expr>> {
        Ok(Box::new(rewrite_subqueries(catalog, e, params, vis, stats, gov)?))
    };
    Ok(match expr {
        Expr::ScalarSubquery(sel) => {
            let mut vals = subquery_values(catalog, sel, params, vis, stats, gov)?;
            if vals.len() > 1 {
                return Err(Error::type_err(format!(
                    "scalar subquery returned {} rows, expected at most one",
                    vals.len()
                )));
            }
            Expr::Literal(vals.pop().unwrap_or(Value::Null))
        }
        Expr::InSubquery(e, sel) => {
            let lhs = rw(e, stats, gov)?;
            let vals = subquery_values(catalog, sel, params, vis, stats, gov)?;
            Expr::InList(lhs, vals)
        }
        Expr::Cmp(op, l, r) => Expr::Cmp(*op, rw(l, stats, gov)?, rw(r, stats, gov)?),
        Expr::Arith(op, l, r) => Expr::Arith(*op, rw(l, stats, gov)?, rw(r, stats, gov)?),
        Expr::And(l, r) => Expr::And(rw(l, stats, gov)?, rw(r, stats, gov)?),
        Expr::Or(l, r) => Expr::Or(rw(l, stats, gov)?, rw(r, stats, gov)?),
        Expr::Not(e) => Expr::Not(rw(e, stats, gov)?),
        Expr::IsNull(e) => Expr::IsNull(rw(e, stats, gov)?),
        Expr::IsNotNull(e) => Expr::IsNotNull(rw(e, stats, gov)?),
        Expr::InList(e, list) => Expr::InList(rw(e, stats, gov)?, list.clone()),
        Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) => expr.clone(),
    })
}

/// Planner/executor knobs threaded from the database layer. `Default` is
/// the standalone behaviour: plan per execution, reorder joins, no build
/// cache, no profiling.
#[derive(Default)]
pub struct ExecOptions<'a> {
    /// Execute this pre-built plan instead of planning now (plan cache,
    /// EXPLAIN ANALYZE).
    pub plan: Option<&'a SelectPlan>,
    /// Cached hash-join build sides, parallel to the plan's steps: valid
    /// slots are reused, rebuilt ones are written back.
    pub builds: Option<&'a mut Vec<Option<Arc<CachedBuild>>>>,
    /// Collect per-operator actuals (EXPLAIN ANALYZE).
    pub profile: Option<&'a mut PlanProfile>,
    /// Keep joins in syntactic order (oracle / bench baseline). Only
    /// consulted when `plan` is `None`.
    pub no_reorder: bool,
    /// Force a full scan of the base table (bench baseline).
    pub force_scan: bool,
}

/// Executes a SELECT statement against the catalog with no bound parameters,
/// observing the latest physical state (no snapshot isolation). Used by
/// tests and programmatic helpers; statement execution goes through
/// [`execute_select_with`] with a real snapshot.
pub fn execute_select(
    catalog: &Catalog,
    stmt: &SelectStmt,
    stats: &mut OpStats,
) -> Result<QueryResult> {
    execute_select_with(
        catalog,
        stmt,
        &[],
        Snapshot::latest(),
        stats,
        &mut Governor::disarmed(),
    )
}

/// The projection plan: output names (interned from the schema where
/// possible) and, for each select item, the expression to evaluate (`None`
/// marks a wildcard slot that copies the whole input row).
type ProjectionSpec<'a> = (Vec<Arc<str>>, Vec<Option<Cow<'a, Expr>>>);

fn projection_spec<'a>(stmt: &'a SelectStmt, schema: &Schema) -> Result<ProjectionSpec<'a>> {
    let mut out_columns: Vec<Arc<str>> = Vec::with_capacity(stmt.items.len());
    let mut projections: Vec<Option<Cow<'a, Expr>>> = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                out_columns.extend(schema.columns.iter().map(|c| c.name.clone()));
                projections.push(None);
            }
            SelectItem::Expr { expr, alias } => {
                let resolved = resolve_expr(expr, schema)?;
                let name: Arc<str> = match (alias, &*resolved) {
                    (Some(a), _) => Arc::from(a.as_str()),
                    // A plain column reference reuses the schema's interned
                    // name instead of re-allocating it per query.
                    (None, Expr::Column(c)) => match schema.column_index(c) {
                        Ok(idx) => schema.columns[idx].name.clone(),
                        Err(_) => Arc::from(c.as_str()),
                    },
                    (None, other) => Arc::from(other.to_string()),
                };
                out_columns.push(name);
                projections.push(Some(resolved));
            }
            SelectItem::Aggregate { .. } => unreachable!("aggregates handled before projection"),
        }
    }
    Ok((out_columns, projections))
}

/// Evaluates a projection plan over an iterator of (borrowed or owned) rows,
/// charging each materialized output row against the governor's budgets.
fn project_rows<'r>(
    schema: &Schema,
    rows: impl ExactSizeIterator<Item = &'r Row>,
    out_width: usize,
    projections: &[Option<Cow<'_, Expr>>],
    params: &[Value],
    gov: &mut Governor,
) -> Result<Vec<Row>> {
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in rows {
        gov.tick()?;
        let mut values = Vec::with_capacity(out_width);
        for proj in projections {
            match proj {
                None => values.extend(row.values.iter().cloned()),
                Some(expr) => values.push(expr.eval_with(schema, row, params)?),
            }
        }
        let out = Row::new(values);
        gov.charge_row(|| approx_row_bytes(&out))?;
        out_rows.push(out);
    }
    Ok(out_rows)
}

/// Sorts rows by the ORDER BY keys of `stmt` resolved against `schema`.
/// `get` maps a sort element to the row it orders by.
fn sort_rows<T>(stmt: &SelectStmt, schema: &Schema, rows: &mut [T], get: impl Fn(&T) -> &Row) -> Result<()> {
    let keys: Vec<(usize, SortOrder)> = stmt
        .order_by
        .iter()
        .map(|k| {
            let col = resolve_column(schema, &k.column)?;
            Ok((schema.column_index(&col)?, k.order))
        })
        .collect::<Result<_>>()?;
    rows.sort_by(|a, b| {
        let (a, b) = (get(a), get(b));
        for (idx, order) in &keys {
            let cmp = a.get(*idx).total_cmp(b.get(*idx));
            let cmp = match order {
                SortOrder::Asc => cmp,
                SortOrder::Desc => cmp.reverse(),
            };
            if cmp != std::cmp::Ordering::Equal {
                return cmp;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

fn has_aggregates(stmt: &SelectStmt) -> bool {
    stmt.items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }))
        || !stmt.group_by.is_empty()
}

/// Executes a SELECT statement against the catalog, resolving `?`
/// placeholders from `params` during planning and evaluation (prepared
/// execution never clones the statement) and resolving row visibility
/// against `vis` — the caller's MVCC snapshot, or
/// [`Snapshot::latest`] for writer-side row matching.
pub fn execute_select_with(
    catalog: &Catalog,
    stmt: &SelectStmt,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
) -> Result<QueryResult> {
    execute_select_opts(catalog, stmt, params, vis, stats, gov, ExecOptions::default())
}

/// As [`execute_select_with`], with explicit planner/executor knobs — the
/// entry point the database layer uses for cached plans, EXPLAIN ANALYZE
/// profiling, and bench baselines.
pub fn execute_select_opts(
    catalog: &Catalog,
    stmt: &SelectStmt,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
    opts: ExecOptions<'_>,
) -> Result<QueryResult> {
    let base = get_table(catalog, &stmt.table)?;
    // Execute subqueries first, against the same snapshot; downstream the
    // filter is plain literals/lists. The `contains_subquery` probe keeps
    // the common case borrow-only.
    let filter: Option<Cow<'_, Expr>> = match &stmt.filter {
        Some(f) if f.contains_subquery() => Some(Cow::Owned(rewrite_subqueries(
            catalog, f, params, vis, stats, gov,
        )?)),
        Some(f) => Some(Cow::Borrowed(f)),
        None => None,
    };
    if stmt.joins.is_empty() {
        execute_single_table(
            base,
            stmt,
            filter.as_deref(),
            params,
            vis,
            stats,
            gov,
            opts.force_scan,
            opts.profile,
        )
    } else {
        let planned;
        let plan = match opts.plan {
            Some(p) => p,
            None => {
                planned = plan_select(catalog, stmt, !opts.no_reorder)?;
                stats.plans_built += 1;
                &planned
            }
        };
        execute_joined(
            catalog,
            base,
            stmt,
            filter.as_deref(),
            plan,
            params,
            vis,
            stats,
            gov,
            opts.builds,
            opts.profile,
        )
    }
}

/// Records the output-stage actuals for EXPLAIN ANALYZE.
fn note_output(profile: &mut Option<&mut PlanProfile>, sw: &Stopwatch, rows: usize) {
    if let Some(p) = profile.as_deref_mut() {
        p.output = StepActuals {
            rows: rows as u64,
            nanos: sw.elapsed_nanos(),
        };
    }
}

/// The no-join fast path: streams borrowed rows from the access path through
/// the filter, keeping references until projection decides what to clone.
#[allow(clippy::too_many_arguments)]
fn execute_single_table(
    table: &Table,
    stmt: &SelectStmt,
    filter: Option<&Expr>,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
    force_scan: bool,
    mut profile: Option<&mut PlanProfile>,
) -> Result<QueryResult> {
    let schema = &table.schema;
    let filter = match filter {
        Some(f) => Some(resolve_expr(f, schema)?),
        None => None,
    };

    // Streamed `SELECT *` fast path: with no ORDER BY and no aggregates,
    // survivors are cloned straight off the access path — no borrowed
    // staging vector, and the column header is the table's shared interned
    // list. This is the shape of the service-call point select, so it stays
    // allocation-minimal: the result rows and nothing else. (EXPLAIN
    // ANALYZE takes the staged path below so operators can be timed.)
    if matches!(stmt.items.as_slice(), [SelectItem::Wildcard])
        && stmt.order_by.is_empty()
        && !has_aggregates(stmt)
        && profile.is_none()
    {
        let limit = stmt.limit.unwrap_or(usize::MAX);
        let mut rows: Vec<Row> = Vec::new();
        if limit > 0 {
            for StoredRowRef { row, .. } in
                access_base_table(table, filter.as_deref(), params, vis, stats, force_scan)
            {
                gov.tick()?;
                let keep = match &filter {
                    Some(f) => f.matches_with(schema, row, params)?,
                    None => true,
                };
                if keep {
                    gov.charge_row(|| approx_row_bytes(row))?;
                    rows.push(row.clone());
                    if rows.len() >= limit {
                        break;
                    }
                }
            }
        }
        return Ok(QueryResult {
            columns: table.wildcard_columns(),
            rows,
        });
    }

    // Access path + predicate over borrowed rows; survivors stay borrowed.
    // Every scanned row is a cancellation point.
    let sw = Stopwatch::start();
    let mut yielded = 0u64;
    let mut matched: Vec<&Row> = Vec::new();
    for StoredRowRef { row, .. } in
        access_base_table(table, filter.as_deref(), params, vis, stats, force_scan)
    {
        gov.tick()?;
        yielded += 1;
        let keep = match &filter {
            Some(f) => f.matches_with(schema, row, params)?,
            None => true,
        };
        if keep {
            matched.push(row);
        }
    }
    if let Some(p) = profile.as_deref_mut() {
        let nanos = sw.elapsed_nanos();
        p.base = StepActuals { rows: yielded, nanos };
        p.filter = StepActuals {
            rows: matched.len() as u64,
            nanos: 0,
        };
    }

    let sw = Stopwatch::start();
    // Aggregation short-circuits the rest of the pipeline.
    if has_aggregates(stmt) {
        let result = execute_aggregate(stmt, schema, matched.iter().copied(), stats, gov)?;
        note_output(&mut profile, &sw, result.len());
        return Ok(result);
    }

    if !stmt.order_by.is_empty() {
        gov.check_now()?;
        sort_rows(stmt, schema, &mut matched, |r| *r)?;
    }
    if let Some(limit) = stmt.limit {
        matched.truncate(limit);
    }

    let (columns, projections) = projection_spec(stmt, schema)?;
    let rows = project_rows(
        schema,
        matched.into_iter(),
        columns.len(),
        &projections,
        params,
        gov,
    )?;
    note_output(&mut profile, &sw, rows.len());
    Ok(QueryResult {
        columns: columns.into(),
        rows,
    })
}

/// The join path, driven by the plan: joins run in planned order — hash
/// join on the single join equality, nested loop evaluating the full `ON`
/// otherwise — with single-table WHERE conjuncts pushed down to each input
/// and the full filter re-applied afterwards. Joined rows are owned
/// concatenations; build sides are owned maps so a prepared statement can
/// reuse them across executions. Every build, probe, and emitted row is a
/// governance cancellation/budget point, so a pathological cross-product
/// hits its deadline or budget *while* materializing, not after.
#[allow(clippy::too_many_arguments)]
fn execute_joined(
    catalog: &Catalog,
    base: &Table,
    stmt: &SelectStmt,
    filter: Option<&Expr>,
    plan: &SelectPlan,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
    mut builds: Option<&mut Vec<Option<Arc<CachedBuild>>>>,
    mut profile: Option<&mut PlanProfile>,
) -> Result<QueryResult> {
    // Joins use an owned schema with qualified names to avoid collisions.
    let mut schema = qualified_schema(base);

    // Base access: cost-chosen path plus pushed-down single-table conjuncts.
    let sw = Stopwatch::start();
    let base_pred = match &plan.base_pushdown {
        Some(pd) => Some(resolve_expr(pd, &base.schema)?),
        None => None,
    };
    let mut rows: Vec<Row> = Vec::new();
    for stored in access_planned(base, &plan.base, plan.base_pushdown.as_ref(), params, vis, stats) {
        gov.tick()?;
        let keep = match &base_pred {
            Some(f) => f.matches_with(&base.schema, stored.row, params)?,
            None => true,
        };
        if keep {
            gov.charge_row(|| approx_row_bytes(stored.row))?;
            rows.push(stored.row.clone());
        }
    }
    if let Some(p) = profile.as_deref_mut() {
        p.base = StepActuals {
            rows: rows.len() as u64,
            nanos: sw.elapsed_nanos(),
        };
    }

    for (si, step) in plan.steps.iter().enumerate() {
        let sw = Stopwatch::start();
        let right = get_table(catalog, &step.table)?;
        let right_schema = qualified_schema(right);
        let mut next_cols = schema.columns.clone();
        next_cols.extend(right_schema.columns.iter().cloned());
        let next_schema = Schema::new(schema.name.clone(), next_cols);
        let right_pred = match &step.pushdown {
            Some(pd) => Some(resolve_expr(pd, &right.schema)?),
            None => None,
        };

        match &step.strategy {
            JoinStrategy::Hash { probe, build } => {
                let probe_col = resolve_column(&schema, probe)?;
                let probe_idx = schema.column_index(&probe_col)?;
                let build_col = resolve_column(&right_schema, build)?;
                let build_idx = right_schema.column_index(&build_col)?;

                // Build side: reuse the prepared handle's cached build when
                // it still describes exactly the rows this snapshot sees,
                // else build an owned map (and cache it when the pushdown
                // does not depend on `?` parameters).
                let cached: Option<Arc<CachedBuild>> = builds
                    .as_ref()
                    .and_then(|b| b.get(si).cloned().flatten())
                    .filter(|c| step.cacheable && c.valid_for(right, vis));
                let reused = cached.is_some();
                let built: Arc<CachedBuild> = match cached {
                    Some(c) => c,
                    None => {
                        let mut map: HashMap<Value, Vec<Row>> = HashMap::new();
                        for stored in
                            access_planned(right, &step.access, step.pushdown.as_ref(), params, vis, stats)
                        {
                            gov.tick()?;
                            if let Some(f) = &right_pred {
                                if !f.matches_with(&right.schema, stored.row, params)? {
                                    continue;
                                }
                            }
                            let key = stored.row.get(build_idx);
                            if key.is_null() {
                                continue;
                            }
                            gov.charge_row(|| approx_row_bytes(stored.row))?;
                            map.entry(key.clone()).or_default().push(stored.row.clone());
                        }
                        let built = Arc::new(CachedBuild {
                            table_version: right.version(),
                            snapshot: vis.clone(),
                            map,
                        });
                        if step.cacheable {
                            if let Some(b) = builds.as_deref_mut() {
                                if let Some(slot) = b.get_mut(si) {
                                    *slot = Some(Arc::clone(&built));
                                }
                            }
                        }
                        built
                    }
                };
                if reused {
                    stats.build_reuse_hits += 1;
                }

                let mut joined = Vec::new();
                for left_row in &rows {
                    gov.tick()?;
                    let key = left_row.get(probe_idx);
                    if key.is_null() {
                        continue;
                    }
                    if let Some(matches) = built.map.get(key) {
                        for right_row in matches {
                            gov.tick()?;
                            let out = left_row.concat(right_row);
                            gov.charge_row(|| approx_row_bytes(&out))?;
                            stats.rows_read += 1;
                            joined.push(out);
                        }
                    }
                }
                rows = joined;
            }
            JoinStrategy::NestedLoop => {
                // Materialize the (pushdown-filtered) right side once, then
                // evaluate the ON predicate over every row pair.
                let mut right_rows: Vec<Row> = Vec::new();
                for stored in
                    access_planned(right, &step.access, step.pushdown.as_ref(), params, vis, stats)
                {
                    gov.tick()?;
                    if let Some(f) = &right_pred {
                        if !f.matches_with(&right.schema, stored.row, params)? {
                            continue;
                        }
                    }
                    gov.charge_row(|| approx_row_bytes(stored.row))?;
                    right_rows.push(stored.row.clone());
                }
                let on = &stmt.joins[step.clause].on;
                let on_rewritten: Cow<'_, Expr> = if on.contains_subquery() {
                    Cow::Owned(rewrite_subqueries(catalog, on, params, vis, stats, gov)?)
                } else {
                    Cow::Borrowed(on)
                };
                let on_resolved = resolve_expr(&on_rewritten, &next_schema)?;
                let mut joined = Vec::new();
                for left_row in &rows {
                    gov.tick()?;
                    for right_row in &right_rows {
                        gov.tick()?;
                        let cand = left_row.concat(right_row);
                        if on_resolved.matches_with(&next_schema, &cand, params)? {
                            gov.charge_row(|| approx_row_bytes(&cand))?;
                            stats.rows_read += 1;
                            joined.push(cand);
                        }
                    }
                }
                rows = joined;
            }
        }

        schema = next_schema;
        if let Some(p) = profile.as_deref_mut() {
            while p.joins.len() <= si {
                p.joins.push(StepActuals::default());
            }
            p.joins[si] = StepActuals {
                rows: rows.len() as u64,
                nanos: sw.elapsed_nanos(),
            };
        }
    }

    // When the planner reordered the joins, restore the syntactic column
    // layout `[base][join 0][join 1]…` so `SELECT *` and positional
    // consumers are oblivious to the execution order.
    if plan.reordered {
        let mut offsets = Vec::with_capacity(plan.steps.len());
        let mut off = base.schema.arity();
        for step in &plan.steps {
            offsets.push(off);
            off += get_table(catalog, &step.table)?.schema.arity();
        }
        let mut perm: Vec<usize> = (0..base.schema.arity()).collect();
        for clause_idx in 0..plan.steps.len() {
            let pos = plan
                .steps
                .iter()
                .position(|s| s.clause == clause_idx)
                .expect("every join clause is planned exactly once");
            let arity = get_table(catalog, &plan.steps[pos].table)?.schema.arity();
            perm.extend(offsets[pos]..offsets[pos] + arity);
        }
        let columns: Vec<Column> = perm.iter().map(|&i| schema.columns[i].clone()).collect();
        schema = Schema::new(schema.name.clone(), columns);
        rows = rows
            .into_iter()
            .map(|r| {
                let mut vals = r.values;
                Row::new(
                    perm.iter()
                        .map(|&i| std::mem::replace(&mut vals[i], Value::Null))
                        .collect(),
                )
            })
            .collect();
    }

    // Residual filter: the full (subquery-rewritten) predicate over the
    // joined schema. Pushed-down conjuncts are re-checked here — harmless
    // for a conjunction, and it keeps pushdown a pure optimization.
    let sw = Stopwatch::start();
    if let Some(filter) = filter {
        let filter = resolve_expr(filter, &schema)?;
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            gov.tick()?;
            if filter.matches_with(&schema, &row, params)? {
                kept.push(row);
            }
        }
        rows = kept;
    }
    if let Some(p) = profile.as_deref_mut() {
        p.filter = StepActuals {
            rows: rows.len() as u64,
            nanos: sw.elapsed_nanos(),
        };
    }

    let sw = Stopwatch::start();
    if has_aggregates(stmt) {
        let result = execute_aggregate(stmt, &schema, rows.iter(), stats, gov)?;
        note_output(&mut profile, &sw, result.len());
        return Ok(result);
    }

    if !stmt.order_by.is_empty() {
        gov.check_now()?;
        sort_rows(stmt, &schema, &mut rows, |r| r)?;
    }
    if let Some(limit) = stmt.limit {
        rows.truncate(limit);
    }

    // A bare `SELECT *` moves the joined rows through unchanged.
    if matches!(stmt.items.as_slice(), [SelectItem::Wildcard]) {
        if gov.armed() {
            for row in &rows {
                gov.charge_row(|| approx_row_bytes(row))?;
            }
        }
        note_output(&mut profile, &sw, rows.len());
        return Ok(QueryResult {
            columns: schema.columns.iter().map(|c| c.name.clone()).collect(),
            rows,
        });
    }
    let (columns, projections) = projection_spec(stmt, &schema)?;
    let out_rows = project_rows(&schema, rows.iter(), columns.len(), &projections, params, gov)?;
    note_output(&mut profile, &sw, out_rows.len());
    Ok(QueryResult {
        columns: columns.into(),
        rows: out_rows,
    })
}

/// Returns the ids of the current rows of `table` matched by `filter` (all
/// rows when `filter` is `None`). Shared by UPDATE and DELETE execution,
/// which operate on the latest state: under the table's exclusive lock the
/// only uncommitted versions are the writer's own, so
/// [`Snapshot::latest`] *is* the writer's view.
pub fn matching_row_ids(
    table: &Table,
    filter: Option<&Expr>,
    stats: &mut OpStats,
) -> Result<Vec<RowId>> {
    matching_row_ids_with(
        table,
        filter,
        &[],
        Snapshot::latest(),
        stats,
        &mut Governor::disarmed(),
    )
}

/// As [`matching_row_ids`], resolving `?` placeholders from `params` and row
/// visibility against `vis`. Candidate rows are streamed by reference;
/// nothing is cloned. Each candidate row is a cancellation point.
pub fn matching_row_ids_with(
    table: &Table,
    filter: Option<&Expr>,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
) -> Result<Vec<RowId>> {
    let resolved = match filter {
        Some(f) => Some(resolve_expr(f, &table.schema)?),
        None => None,
    };
    let mut out = Vec::new();
    for stored in access_base_table(table, resolved.as_deref(), params, vis, stats, false) {
        gov.tick()?;
        let keep = match &resolved {
            Some(f) => f.matches_with(&table.schema, stored.row, params)?,
            None => true,
        };
        if keep {
            out.push(stored.id);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::Column;
    use crate::sql::parser::parse;
    use crate::sql::ast::Statement;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut stats = OpStats::default();
        let mut jobs = Table::new(
            Schema::new(
                "jobs",
                vec![
                    Column::not_null("job_id", DataType::Int),
                    Column::not_null("owner", DataType::Text),
                    Column::new("state", DataType::Text),
                    Column::new("runtime", DataType::Double),
                ],
            )
            .with_primary_key("job_id")
            .with_index("state"),
        )
        .unwrap();
        for (id, owner, state, rt) in [
            (1, "alice", "idle", 60.0),
            (2, "alice", "running", 360.0),
            (3, "bob", "idle", 60.0),
            (4, "carol", "held", 10.0),
        ] {
            jobs.insert(
                vec![
                    Value::Int(id),
                    Value::Text(owner.into()),
                    Value::Text(state.into()),
                    Value::Double(rt),
                ],
                crate::mvcc::COMMITTED_TXN,
                &mut stats,
            )
            .unwrap();
        }

        let mut machines = Table::new(
            Schema::new(
                "machines",
                vec![
                    Column::not_null("machine_id", DataType::Int),
                    Column::new("state", DataType::Text),
                ],
            )
            .with_primary_key("machine_id"),
        )
        .unwrap();
        for (id, state) in [(10, "idle"), (11, "busy")] {
            machines
                .insert(
                    vec![Value::Int(id), Value::Text(state.into())],
                    crate::mvcc::COMMITTED_TXN,
                    &mut stats,
                )
                .unwrap();
        }

        let mut matches = Table::new(
            Schema::new(
                "matches",
                vec![
                    Column::not_null("job_id", DataType::Int),
                    Column::not_null("machine_id", DataType::Int),
                ],
            )
            .with_index("job_id"),
        )
        .unwrap();
        matches
            .insert(vec![Value::Int(2), Value::Int(11)], crate::mvcc::COMMITTED_TXN, &mut stats)
            .unwrap();

        let mut cat = Catalog::new();
        cat.insert("jobs".into(), jobs);
        cat.insert("machines".into(), machines);
        cat.insert("matches".into(), matches);
        cat
    }

    fn select(cat: &Catalog, sql: &str) -> QueryResult {
        let Statement::Select(stmt) = parse(sql).unwrap() else {
            panic!("not a select: {sql}");
        };
        execute_select(cat, &stmt, &mut OpStats::default()).unwrap()
    }

    #[test]
    fn simple_filter_and_projection() {
        let cat = catalog();
        let r = select(&cat, "SELECT job_id, owner FROM jobs WHERE state = 'idle' ORDER BY job_id");
        assert_eq!(r.column_names(), vec!["job_id", "owner"]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(1)));
        assert_eq!(r.value(1, "owner"), Some(&Value::Text("bob".into())));
    }

    #[test]
    fn projected_column_names_are_interned_from_the_schema() {
        let cat = catalog();
        let jobs_schema = &cat.get("jobs").unwrap().schema;
        let r = select(&cat, "SELECT job_id, owner FROM jobs LIMIT 1");
        // The output names share the schema's allocation (pointer equality),
        // proving projection clones an Arc rather than the string.
        assert!(Arc::ptr_eq(&r.columns[0], &jobs_schema.columns[0].name));
        assert!(Arc::ptr_eq(&r.columns[1], &jobs_schema.columns[1].name));
        let r = select(&cat, "SELECT * FROM jobs LIMIT 1");
        assert!(Arc::ptr_eq(&r.columns[2], &jobs_schema.columns[2].name));
    }

    #[test]
    fn wildcard_and_limit() {
        let cat = catalog();
        let r = select(&cat, "SELECT * FROM jobs ORDER BY job_id DESC LIMIT 2");
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(4)));
        assert_eq!(r.columns.len(), 4);
    }

    #[test]
    fn pk_point_lookup_uses_index() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) = parse("SELECT * FROM jobs WHERE job_id = 3").unwrap() else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 1);
        assert!(stats.index_lookups >= 1);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn secondary_index_lookup() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) =
            parse("SELECT job_id FROM jobs WHERE state = 'idle' AND runtime < 100").unwrap()
        else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 2);
        assert!(stats.index_lookups >= 1);
    }

    #[test]
    fn range_predicate_uses_index_without_scanning() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) =
            parse("SELECT job_id FROM jobs WHERE job_id >= 2 AND job_id < 4 ORDER BY job_id")
                .unwrap()
        else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 2, "strict upper bound re-checked by the filter");
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(2)));
        assert_eq!(r.value(1, "job_id"), Some(&Value::Int(3)));
        assert!(stats.index_lookups >= 1);
        assert_eq!(stats.rows_scanned, 0, "no full scan for a bounded range");
    }

    #[test]
    fn between_predicate_uses_index() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) =
            parse("SELECT job_id FROM jobs WHERE job_id BETWEEN 2 AND 3 ORDER BY job_id").unwrap()
        else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 2);
        assert!(stats.index_lookups >= 1);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn half_open_and_contradictory_ranges() {
        let cat = catalog();
        let r = select(&cat, "SELECT job_id FROM jobs WHERE job_id > 2 ORDER BY job_id");
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(3)));
        let r = select(&cat, "SELECT job_id FROM jobs WHERE job_id <= 1");
        assert_eq!(r.len(), 1);
        let r = select(&cat, "SELECT job_id FROM jobs WHERE job_id > 3 AND job_id < 2");
        assert!(r.is_empty());
    }

    #[test]
    fn range_on_text_secondary_index() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) =
            parse("SELECT job_id FROM jobs WHERE state >= 'idle' AND state <= 'idle'").unwrap()
        else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 2);
        assert!(stats.index_lookups >= 1);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn range_under_or_falls_back_to_scan_correctly() {
        let cat = catalog();
        // The range sits under an OR, so it must NOT restrict the access path.
        let r = select(
            &cat,
            "SELECT job_id FROM jobs WHERE job_id >= 4 OR state = 'idle' ORDER BY job_id",
        );
        assert_eq!(r.len(), 3);
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(1)));
        assert_eq!(r.value(2, "job_id"), Some(&Value::Int(4)));
    }

    #[test]
    fn join_produces_qualified_columns() {
        let cat = catalog();
        let r = select(
            &cat,
            "SELECT jobs.job_id, machines.machine_id FROM jobs \
             JOIN matches ON jobs.job_id = matches.job_id \
             JOIN machines ON matches.machine_id = machines.machine_id",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "jobs.job_id"), Some(&Value::Int(2)));
        assert_eq!(r.value(0, "machines.machine_id"), Some(&Value::Int(11)));
    }

    #[test]
    fn join_filter_on_right_table() {
        let cat = catalog();
        let r = select(
            &cat,
            "SELECT jobs.owner FROM jobs JOIN matches ON jobs.job_id = matches.job_id \
             WHERE matches.machine_id = 11",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "jobs.owner"), Some(&Value::Text("alice".into())));
    }

    #[test]
    fn arithmetic_projection_with_alias() {
        let cat = catalog();
        let r = select(&cat, "SELECT runtime / 60 AS minutes FROM jobs WHERE job_id = 2");
        assert_eq!(r.column_names(), vec!["minutes"]);
        assert_eq!(r.value(0, "minutes"), Some(&Value::Double(6.0)));
    }

    #[test]
    fn matching_row_ids_with_and_without_filter() {
        let cat = catalog();
        let jobs = cat.get("jobs").unwrap();
        let mut stats = OpStats::default();
        let all = matching_row_ids(jobs, None, &mut stats).unwrap();
        assert_eq!(all.len(), 4);
        let idle = matching_row_ids(
            jobs,
            Some(&Expr::col_eq("state", "idle")),
            &mut stats,
        )
        .unwrap();
        assert_eq!(idle.len(), 2);
        let none = matching_row_ids(
            jobs,
            Some(&Expr::col_cmp("job_id", CmpOp::Gt, 100)),
            &mut stats,
        )
        .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let cat = catalog();
        let Statement::Select(stmt) = parse("SELECT * FROM nope").unwrap() else {
            unreachable!()
        };
        assert!(execute_select(&cat, &stmt, &mut OpStats::default()).is_err());
        let Statement::Select(stmt) = parse("SELECT missing FROM jobs").unwrap() else {
            unreachable!()
        };
        assert!(execute_select(&cat, &stmt, &mut OpStats::default()).is_err());
    }
}
