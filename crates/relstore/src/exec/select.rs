//! SELECT execution: access-path selection, joins, filtering, sorting,
//! projection; plus the shared row-matching helper used by UPDATE/DELETE.
//!
//! The single-table path (the vast majority of service-call queries) is
//! allocation-light: access paths stream borrowed [`StoredRowRef`]s out of
//! the heap, predicates are evaluated against the borrow, and only values
//! that survive projection are cloned. Output column names are `Arc<str>`s
//! interned from the schema, so a point select allocates the result rows and
//! nothing else.

use super::aggregate::execute_aggregate;
use super::QueryResult;
use crate::error::{Error, Result};
use crate::govern::{approx_row_bytes, Governor};
use crate::mvcc::Snapshot;
use crate::predicate::Expr;
use crate::schema::{Column, Schema};
use crate::sql::ast::{SelectItem, SelectStmt, SortOrder};
use crate::stats::OpStats;
use crate::table::{RowIter, Table};
use crate::tuple::{Row, RowId, StoredRowRef};
use crate::value::Value;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// The catalog type the executor reads from.
pub type Catalog = BTreeMap<String, Table>;

fn get_table<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a Table> {
    // Catalog keys are lower-case; lower_name skips the per-lookup
    // allocation for the common case of an already-lower-case name.
    catalog
        .get(crate::schema::lower_name(name).as_ref())
        .ok_or_else(|| Error::not_found(format!("table {name}")))
}

/// Resolves a possibly-unqualified column name against a (possibly joined)
/// schema whose columns carry qualified `table.column` names.
///
/// Borrows the input when it is already the resolved spelling — the common
/// case for parser output, which lower-cases identifiers — so per-query
/// resolution does not allocate.
fn resolve_column<'a>(schema: &Schema, name: &'a str) -> Result<Cow<'a, str>> {
    let lname = crate::schema::lower_name(name);
    if schema.column_index(&lname).is_ok() {
        return Ok(lname);
    }
    if !lname.contains('.') {
        // A bare name against a joined schema with qualified column names.
        let mut found: Option<&Column> = None;
        for c in &schema.columns {
            if let Some((_, bare)) = c.name.split_once('.') {
                if bare == lname.as_ref() {
                    if found.is_some() {
                        return Err(Error::type_err(format!(
                            "ambiguous column {name} in {}",
                            schema.name
                        )));
                    }
                    found = Some(c);
                }
            }
        }
        if let Some(c) = found {
            return Ok(Cow::Owned(c.name.to_string()));
        }
    } else if let Some((_, bare)) = lname.split_once('.') {
        // A qualified name used against a single-table schema with bare names.
        if schema.column_index(bare).is_ok() {
            return Ok(match lname {
                Cow::Borrowed(s) => Cow::Borrowed(s.split_once('.').expect("contains '.'").1),
                Cow::Owned(s) => Cow::Owned(s.split_once('.').expect("contains '.'").1.to_string()),
            });
        }
    }
    Err(Error::not_found(format!(
        "column {name} in {}",
        schema.name
    )))
}

/// Rewrites every column reference in `expr` to its resolved name in
/// `schema`, borrowing the input expression when nothing needs rewriting
/// (no clone on the hot path).
fn resolve_expr<'a>(expr: &'a Expr, schema: &Schema) -> Result<Cow<'a, Expr>> {
    fn binary<'a>(
        expr: &'a Expr,
        l: &'a Expr,
        r: &'a Expr,
        schema: &Schema,
        rebuild: impl FnOnce(Box<Expr>, Box<Expr>) -> Expr,
    ) -> Result<Cow<'a, Expr>> {
        let lr = resolve_expr(l, schema)?;
        let rr = resolve_expr(r, schema)?;
        Ok(match (lr, rr) {
            (Cow::Borrowed(_), Cow::Borrowed(_)) => Cow::Borrowed(expr),
            (lr, rr) => Cow::Owned(rebuild(Box::new(lr.into_owned()), Box::new(rr.into_owned()))),
        })
    }
    fn unary<'a>(
        expr: &'a Expr,
        e: &'a Expr,
        schema: &Schema,
        rebuild: impl FnOnce(Box<Expr>) -> Expr,
    ) -> Result<Cow<'a, Expr>> {
        Ok(match resolve_expr(e, schema)? {
            Cow::Borrowed(_) => Cow::Borrowed(expr),
            Cow::Owned(inner) => Cow::Owned(rebuild(Box::new(inner))),
        })
    }
    Ok(match expr {
        Expr::Literal(_) | Expr::Param(_) => Cow::Borrowed(expr),
        Expr::Column(c) => {
            let resolved = resolve_column(schema, c)?;
            if resolved == *c {
                Cow::Borrowed(expr)
            } else {
                Cow::Owned(Expr::Column(resolved.into_owned()))
            }
        }
        Expr::Cmp(op, l, r) => binary(expr, l, r, schema, |l, r| Expr::Cmp(*op, l, r))?,
        Expr::Arith(op, l, r) => binary(expr, l, r, schema, |l, r| Expr::Arith(*op, l, r))?,
        Expr::And(l, r) => binary(expr, l, r, schema, Expr::And)?,
        Expr::Or(l, r) => binary(expr, l, r, schema, Expr::Or)?,
        Expr::Not(e) => unary(expr, e, schema, Expr::Not)?,
        Expr::IsNull(e) => unary(expr, e, schema, Expr::IsNull)?,
        Expr::IsNotNull(e) => unary(expr, e, schema, Expr::IsNotNull)?,
        Expr::InList(e, list) => match resolve_expr(e, schema)? {
            Cow::Borrowed(_) => Cow::Borrowed(expr),
            Cow::Owned(inner) => Cow::Owned(Expr::InList(Box::new(inner), list.clone())),
        },
    })
}

/// Builds the qualified schema describing `table` prefixed with its name.
fn qualified_schema(table: &Table) -> Schema {
    let columns = table
        .schema
        .columns
        .iter()
        .map(|c| Column {
            name: format!("{}.{}", table.schema.name, c.name).into(),
            ty: c.ty,
            not_null: c.not_null,
        })
        .collect();
    Schema::new(table.schema.name.clone(), columns)
}

/// Chooses the cheapest access path into the base table that still yields a
/// superset of the matching rows (the caller re-applies the filter):
///
/// 1. an index **point lookup** when the filter pins an indexed column to a
///    literal with equality in a top-level conjunction,
/// 2. an index **range scan** when the filter bounds an indexed column with
///    `<`/`<=`/`>`/`>=`/`BETWEEN`,
/// 3. a full table scan otherwise.
///
/// Candidate columns are iterated by reference and the returned [`RowIter`]
/// streams borrowed rows — planning and row access allocate nothing beyond
/// the id list of an index probe.
fn access_base_table<'a>(
    table: &'a Table,
    filter: Option<&Expr>,
    params: &[Value],
    vis: &'a Snapshot,
    stats: &mut OpStats,
) -> RowIter<'a> {
    if let Some(filter) = filter {
        let name = &*table.schema.name;
        // Equality point lookups first: tightest result set.
        for col in table.indexed_columns() {
            if let Some(key) = filter.equality_lookup_on(name, col, params) {
                if let Some(rows) = table.lookup_indexed(col, &key, vis, stats) {
                    return rows;
                }
            }
        }
        // Then bounded range scans over an ordered index.
        for col in table.indexed_columns() {
            if let Some((lo, hi)) = filter.range_bounds_on(name, col, params) {
                if let Some(rows) = table.lookup_range(col, lo.as_ref(), hi.as_ref(), vis, stats) {
                    return rows;
                }
            }
        }
    }
    table.scan(vis, stats)
}

/// Executes a SELECT statement against the catalog with no bound parameters,
/// observing the latest physical state (no snapshot isolation). Used by
/// tests and programmatic helpers; statement execution goes through
/// [`execute_select_with`] with a real snapshot.
pub fn execute_select(
    catalog: &Catalog,
    stmt: &SelectStmt,
    stats: &mut OpStats,
) -> Result<QueryResult> {
    execute_select_with(
        catalog,
        stmt,
        &[],
        Snapshot::latest(),
        stats,
        &mut Governor::disarmed(),
    )
}

/// The projection plan: output names (interned from the schema where
/// possible) and, for each select item, the expression to evaluate (`None`
/// marks a wildcard slot that copies the whole input row).
type ProjectionSpec<'a> = (Vec<Arc<str>>, Vec<Option<Cow<'a, Expr>>>);

fn projection_spec<'a>(stmt: &'a SelectStmt, schema: &Schema) -> Result<ProjectionSpec<'a>> {
    let mut out_columns: Vec<Arc<str>> = Vec::with_capacity(stmt.items.len());
    let mut projections: Vec<Option<Cow<'a, Expr>>> = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                out_columns.extend(schema.columns.iter().map(|c| c.name.clone()));
                projections.push(None);
            }
            SelectItem::Expr { expr, alias } => {
                let resolved = resolve_expr(expr, schema)?;
                let name: Arc<str> = match (alias, &*resolved) {
                    (Some(a), _) => Arc::from(a.as_str()),
                    // A plain column reference reuses the schema's interned
                    // name instead of re-allocating it per query.
                    (None, Expr::Column(c)) => match schema.column_index(c) {
                        Ok(idx) => schema.columns[idx].name.clone(),
                        Err(_) => Arc::from(c.as_str()),
                    },
                    (None, other) => Arc::from(other.to_string()),
                };
                out_columns.push(name);
                projections.push(Some(resolved));
            }
            SelectItem::Aggregate { .. } => unreachable!("aggregates handled before projection"),
        }
    }
    Ok((out_columns, projections))
}

/// Evaluates a projection plan over an iterator of (borrowed or owned) rows,
/// charging each materialized output row against the governor's budgets.
fn project_rows<'r>(
    schema: &Schema,
    rows: impl ExactSizeIterator<Item = &'r Row>,
    out_width: usize,
    projections: &[Option<Cow<'_, Expr>>],
    params: &[Value],
    gov: &mut Governor,
) -> Result<Vec<Row>> {
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in rows {
        gov.tick()?;
        let mut values = Vec::with_capacity(out_width);
        for proj in projections {
            match proj {
                None => values.extend(row.values.iter().cloned()),
                Some(expr) => values.push(expr.eval_with(schema, row, params)?),
            }
        }
        let out = Row::new(values);
        gov.charge_row(|| approx_row_bytes(&out))?;
        out_rows.push(out);
    }
    Ok(out_rows)
}

/// Sorts rows by the ORDER BY keys of `stmt` resolved against `schema`.
/// `get` maps a sort element to the row it orders by.
fn sort_rows<T>(stmt: &SelectStmt, schema: &Schema, rows: &mut [T], get: impl Fn(&T) -> &Row) -> Result<()> {
    let keys: Vec<(usize, SortOrder)> = stmt
        .order_by
        .iter()
        .map(|k| {
            let col = resolve_column(schema, &k.column)?;
            Ok((schema.column_index(&col)?, k.order))
        })
        .collect::<Result<_>>()?;
    rows.sort_by(|a, b| {
        let (a, b) = (get(a), get(b));
        for (idx, order) in &keys {
            let cmp = a.get(*idx).total_cmp(b.get(*idx));
            let cmp = match order {
                SortOrder::Asc => cmp,
                SortOrder::Desc => cmp.reverse(),
            };
            if cmp != std::cmp::Ordering::Equal {
                return cmp;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

fn has_aggregates(stmt: &SelectStmt) -> bool {
    stmt.items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }))
        || !stmt.group_by.is_empty()
}

/// Executes a SELECT statement against the catalog, resolving `?`
/// placeholders from `params` during planning and evaluation (prepared
/// execution never clones the statement) and resolving row visibility
/// against `vis` — the caller's MVCC snapshot, or
/// [`Snapshot::latest`] for writer-side row matching.
pub fn execute_select_with(
    catalog: &Catalog,
    stmt: &SelectStmt,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
) -> Result<QueryResult> {
    let base = get_table(catalog, &stmt.table)?;
    if stmt.joins.is_empty() {
        execute_single_table(base, stmt, params, vis, stats, gov)
    } else {
        execute_joined(catalog, base, stmt, params, vis, stats, gov)
    }
}

/// The no-join fast path: streams borrowed rows from the access path through
/// the filter, keeping references until projection decides what to clone.
fn execute_single_table(
    table: &Table,
    stmt: &SelectStmt,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
) -> Result<QueryResult> {
    let schema = &table.schema;
    let filter = match &stmt.filter {
        Some(f) => Some(resolve_expr(f, schema)?),
        None => None,
    };

    // Streamed `SELECT *` fast path: with no ORDER BY and no aggregates,
    // survivors are cloned straight off the access path — no borrowed
    // staging vector, and the column header is the table's shared interned
    // list. This is the shape of the service-call point select, so it stays
    // allocation-minimal: the result rows and nothing else.
    if matches!(stmt.items.as_slice(), [SelectItem::Wildcard])
        && stmt.order_by.is_empty()
        && !has_aggregates(stmt)
    {
        let limit = stmt.limit.unwrap_or(usize::MAX);
        let mut rows: Vec<Row> = Vec::new();
        if limit > 0 {
            for StoredRowRef { row, .. } in
                access_base_table(table, filter.as_deref(), params, vis, stats)
            {
                gov.tick()?;
                let keep = match &filter {
                    Some(f) => f.matches_with(schema, row, params)?,
                    None => true,
                };
                if keep {
                    gov.charge_row(|| approx_row_bytes(row))?;
                    rows.push(row.clone());
                    if rows.len() >= limit {
                        break;
                    }
                }
            }
        }
        return Ok(QueryResult {
            columns: table.wildcard_columns(),
            rows,
        });
    }

    // Access path + predicate over borrowed rows; survivors stay borrowed.
    // Every scanned row is a cancellation point.
    let mut matched: Vec<&Row> = Vec::new();
    for StoredRowRef { row, .. } in access_base_table(table, filter.as_deref(), params, vis, stats) {
        gov.tick()?;
        let keep = match &filter {
            Some(f) => f.matches_with(schema, row, params)?,
            None => true,
        };
        if keep {
            matched.push(row);
        }
    }

    // Aggregation short-circuits the rest of the pipeline.
    if has_aggregates(stmt) {
        return execute_aggregate(stmt, schema, matched.iter().copied(), stats, gov);
    }

    if !stmt.order_by.is_empty() {
        gov.check_now()?;
        sort_rows(stmt, schema, &mut matched, |r| *r)?;
    }
    if let Some(limit) = stmt.limit {
        matched.truncate(limit);
    }

    let (columns, projections) = projection_spec(stmt, schema)?;
    let rows = project_rows(
        schema,
        matched.into_iter(),
        columns.len(),
        &projections,
        params,
        gov,
    )?;
    Ok(QueryResult {
        columns: columns.into(),
        rows,
    })
}

/// The join path: inner joins applied left to right with a hash join on the
/// join key. Joined rows are owned (they are concatenations), but build sides
/// are borrowed straight from the tables.
fn execute_joined(
    catalog: &Catalog,
    base: &Table,
    stmt: &SelectStmt,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
) -> Result<QueryResult> {
    // Joins use an owned schema with qualified names to avoid collisions.
    let mut schema = qualified_schema(base);
    let mut rows: Vec<Row> = Vec::new();
    for stored in base.scan(vis, stats) {
        gov.tick()?;
        rows.push(stored.row.clone());
    }

    for join in &stmt.joins {
        let right = get_table(catalog, &join.table)?;
        let right_schema = qualified_schema(right);

        let left_col = resolve_column(&schema, &join.left_column)?;
        let left_idx = schema.column_index(&left_col)?;
        let right_col = resolve_column(&right_schema, &join.right_column)?;
        let right_idx = right_schema.column_index(&right_col)?;

        // Build hash table over the right side, borrowing its heap rows.
        let mut hash: HashMap<&Value, Vec<&Row>> = HashMap::new();
        for stored in right.scan(vis, stats) {
            gov.tick()?;
            let key = stored.row.get(right_idx);
            if !key.is_null() {
                hash.entry(key).or_default().push(stored.row);
            }
        }

        let mut joined = Vec::new();
        for left_row in &rows {
            gov.tick()?;
            let key = left_row.get(left_idx);
            if key.is_null() {
                continue;
            }
            if let Some(matches) = hash.get(key) {
                for right_row in matches {
                    gov.tick()?;
                    joined.push(left_row.concat(right_row));
                    stats.rows_read += 1;
                }
            }
        }
        rows = joined;

        // Extend the schema with the right-hand columns.
        let mut columns = schema.columns.clone();
        columns.extend(right_schema.columns);
        schema = Schema::new(schema.name.clone(), columns);
    }

    // Filter (now that the full joined schema is known).
    if let Some(filter) = &stmt.filter {
        let filter = resolve_expr(filter, &schema)?;
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            gov.tick()?;
            if filter.matches_with(&schema, &row, params)? {
                kept.push(row);
            }
        }
        rows = kept;
    }

    if has_aggregates(stmt) {
        return execute_aggregate(stmt, &schema, rows.iter(), stats, gov);
    }

    if !stmt.order_by.is_empty() {
        gov.check_now()?;
        sort_rows(stmt, &schema, &mut rows, |r| r)?;
    }
    if let Some(limit) = stmt.limit {
        rows.truncate(limit);
    }

    // A bare `SELECT *` moves the joined rows through unchanged.
    if matches!(stmt.items.as_slice(), [SelectItem::Wildcard]) {
        if gov.armed() {
            for row in &rows {
                gov.charge_row(|| approx_row_bytes(row))?;
            }
        }
        return Ok(QueryResult {
            columns: schema.columns.iter().map(|c| c.name.clone()).collect(),
            rows,
        });
    }
    let (columns, projections) = projection_spec(stmt, &schema)?;
    let out_rows = project_rows(&schema, rows.iter(), columns.len(), &projections, params, gov)?;
    Ok(QueryResult {
        columns: columns.into(),
        rows: out_rows,
    })
}

/// Returns the ids of the current rows of `table` matched by `filter` (all
/// rows when `filter` is `None`). Shared by UPDATE and DELETE execution,
/// which operate on the latest state: under the table's exclusive lock the
/// only uncommitted versions are the writer's own, so
/// [`Snapshot::latest`] *is* the writer's view.
pub fn matching_row_ids(
    table: &Table,
    filter: Option<&Expr>,
    stats: &mut OpStats,
) -> Result<Vec<RowId>> {
    matching_row_ids_with(
        table,
        filter,
        &[],
        Snapshot::latest(),
        stats,
        &mut Governor::disarmed(),
    )
}

/// As [`matching_row_ids`], resolving `?` placeholders from `params` and row
/// visibility against `vis`. Candidate rows are streamed by reference;
/// nothing is cloned. Each candidate row is a cancellation point.
pub fn matching_row_ids_with(
    table: &Table,
    filter: Option<&Expr>,
    params: &[Value],
    vis: &Snapshot,
    stats: &mut OpStats,
    gov: &mut Governor,
) -> Result<Vec<RowId>> {
    let resolved = match filter {
        Some(f) => Some(resolve_expr(f, &table.schema)?),
        None => None,
    };
    let mut out = Vec::new();
    for stored in access_base_table(table, resolved.as_deref(), params, vis, stats) {
        gov.tick()?;
        let keep = match &resolved {
            Some(f) => f.matches_with(&table.schema, stored.row, params)?,
            None => true,
        };
        if keep {
            out.push(stored.id);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::Column;
    use crate::sql::parser::parse;
    use crate::sql::ast::Statement;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut stats = OpStats::default();
        let mut jobs = Table::new(
            Schema::new(
                "jobs",
                vec![
                    Column::not_null("job_id", DataType::Int),
                    Column::not_null("owner", DataType::Text),
                    Column::new("state", DataType::Text),
                    Column::new("runtime", DataType::Double),
                ],
            )
            .with_primary_key("job_id")
            .with_index("state"),
        )
        .unwrap();
        for (id, owner, state, rt) in [
            (1, "alice", "idle", 60.0),
            (2, "alice", "running", 360.0),
            (3, "bob", "idle", 60.0),
            (4, "carol", "held", 10.0),
        ] {
            jobs.insert(
                vec![
                    Value::Int(id),
                    Value::Text(owner.into()),
                    Value::Text(state.into()),
                    Value::Double(rt),
                ],
                crate::mvcc::COMMITTED_TXN,
                &mut stats,
            )
            .unwrap();
        }

        let mut machines = Table::new(
            Schema::new(
                "machines",
                vec![
                    Column::not_null("machine_id", DataType::Int),
                    Column::new("state", DataType::Text),
                ],
            )
            .with_primary_key("machine_id"),
        )
        .unwrap();
        for (id, state) in [(10, "idle"), (11, "busy")] {
            machines
                .insert(
                    vec![Value::Int(id), Value::Text(state.into())],
                    crate::mvcc::COMMITTED_TXN,
                    &mut stats,
                )
                .unwrap();
        }

        let mut matches = Table::new(
            Schema::new(
                "matches",
                vec![
                    Column::not_null("job_id", DataType::Int),
                    Column::not_null("machine_id", DataType::Int),
                ],
            )
            .with_index("job_id"),
        )
        .unwrap();
        matches
            .insert(vec![Value::Int(2), Value::Int(11)], crate::mvcc::COMMITTED_TXN, &mut stats)
            .unwrap();

        let mut cat = Catalog::new();
        cat.insert("jobs".into(), jobs);
        cat.insert("machines".into(), machines);
        cat.insert("matches".into(), matches);
        cat
    }

    fn select(cat: &Catalog, sql: &str) -> QueryResult {
        let Statement::Select(stmt) = parse(sql).unwrap() else {
            panic!("not a select: {sql}");
        };
        execute_select(cat, &stmt, &mut OpStats::default()).unwrap()
    }

    #[test]
    fn simple_filter_and_projection() {
        let cat = catalog();
        let r = select(&cat, "SELECT job_id, owner FROM jobs WHERE state = 'idle' ORDER BY job_id");
        assert_eq!(r.column_names(), vec!["job_id", "owner"]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(1)));
        assert_eq!(r.value(1, "owner"), Some(&Value::Text("bob".into())));
    }

    #[test]
    fn projected_column_names_are_interned_from_the_schema() {
        let cat = catalog();
        let jobs_schema = &cat.get("jobs").unwrap().schema;
        let r = select(&cat, "SELECT job_id, owner FROM jobs LIMIT 1");
        // The output names share the schema's allocation (pointer equality),
        // proving projection clones an Arc rather than the string.
        assert!(Arc::ptr_eq(&r.columns[0], &jobs_schema.columns[0].name));
        assert!(Arc::ptr_eq(&r.columns[1], &jobs_schema.columns[1].name));
        let r = select(&cat, "SELECT * FROM jobs LIMIT 1");
        assert!(Arc::ptr_eq(&r.columns[2], &jobs_schema.columns[2].name));
    }

    #[test]
    fn wildcard_and_limit() {
        let cat = catalog();
        let r = select(&cat, "SELECT * FROM jobs ORDER BY job_id DESC LIMIT 2");
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(4)));
        assert_eq!(r.columns.len(), 4);
    }

    #[test]
    fn pk_point_lookup_uses_index() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) = parse("SELECT * FROM jobs WHERE job_id = 3").unwrap() else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 1);
        assert!(stats.index_lookups >= 1);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn secondary_index_lookup() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) =
            parse("SELECT job_id FROM jobs WHERE state = 'idle' AND runtime < 100").unwrap()
        else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 2);
        assert!(stats.index_lookups >= 1);
    }

    #[test]
    fn range_predicate_uses_index_without_scanning() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) =
            parse("SELECT job_id FROM jobs WHERE job_id >= 2 AND job_id < 4 ORDER BY job_id")
                .unwrap()
        else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 2, "strict upper bound re-checked by the filter");
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(2)));
        assert_eq!(r.value(1, "job_id"), Some(&Value::Int(3)));
        assert!(stats.index_lookups >= 1);
        assert_eq!(stats.rows_scanned, 0, "no full scan for a bounded range");
    }

    #[test]
    fn between_predicate_uses_index() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) =
            parse("SELECT job_id FROM jobs WHERE job_id BETWEEN 2 AND 3 ORDER BY job_id").unwrap()
        else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 2);
        assert!(stats.index_lookups >= 1);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn half_open_and_contradictory_ranges() {
        let cat = catalog();
        let r = select(&cat, "SELECT job_id FROM jobs WHERE job_id > 2 ORDER BY job_id");
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(3)));
        let r = select(&cat, "SELECT job_id FROM jobs WHERE job_id <= 1");
        assert_eq!(r.len(), 1);
        let r = select(&cat, "SELECT job_id FROM jobs WHERE job_id > 3 AND job_id < 2");
        assert!(r.is_empty());
    }

    #[test]
    fn range_on_text_secondary_index() {
        let cat = catalog();
        let mut stats = OpStats::default();
        let Statement::Select(stmt) =
            parse("SELECT job_id FROM jobs WHERE state >= 'idle' AND state <= 'idle'").unwrap()
        else {
            unreachable!()
        };
        let r = execute_select(&cat, &stmt, &mut stats).unwrap();
        assert_eq!(r.len(), 2);
        assert!(stats.index_lookups >= 1);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn range_under_or_falls_back_to_scan_correctly() {
        let cat = catalog();
        // The range sits under an OR, so it must NOT restrict the access path.
        let r = select(
            &cat,
            "SELECT job_id FROM jobs WHERE job_id >= 4 OR state = 'idle' ORDER BY job_id",
        );
        assert_eq!(r.len(), 3);
        assert_eq!(r.value(0, "job_id"), Some(&Value::Int(1)));
        assert_eq!(r.value(2, "job_id"), Some(&Value::Int(4)));
    }

    #[test]
    fn join_produces_qualified_columns() {
        let cat = catalog();
        let r = select(
            &cat,
            "SELECT jobs.job_id, machines.machine_id FROM jobs \
             JOIN matches ON jobs.job_id = matches.job_id \
             JOIN machines ON matches.machine_id = machines.machine_id",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "jobs.job_id"), Some(&Value::Int(2)));
        assert_eq!(r.value(0, "machines.machine_id"), Some(&Value::Int(11)));
    }

    #[test]
    fn join_filter_on_right_table() {
        let cat = catalog();
        let r = select(
            &cat,
            "SELECT jobs.owner FROM jobs JOIN matches ON jobs.job_id = matches.job_id \
             WHERE matches.machine_id = 11",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "jobs.owner"), Some(&Value::Text("alice".into())));
    }

    #[test]
    fn arithmetic_projection_with_alias() {
        let cat = catalog();
        let r = select(&cat, "SELECT runtime / 60 AS minutes FROM jobs WHERE job_id = 2");
        assert_eq!(r.column_names(), vec!["minutes"]);
        assert_eq!(r.value(0, "minutes"), Some(&Value::Double(6.0)));
    }

    #[test]
    fn matching_row_ids_with_and_without_filter() {
        let cat = catalog();
        let jobs = cat.get("jobs").unwrap();
        let mut stats = OpStats::default();
        let all = matching_row_ids(jobs, None, &mut stats).unwrap();
        assert_eq!(all.len(), 4);
        let idle = matching_row_ids(
            jobs,
            Some(&Expr::col_eq("state", "idle")),
            &mut stats,
        )
        .unwrap();
        assert_eq!(idle.len(), 2);
        let none = matching_row_ids(
            jobs,
            Some(&Expr::col_cmp("job_id", CmpOp::Gt, 100)),
            &mut stats,
        )
        .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let cat = catalog();
        let Statement::Select(stmt) = parse("SELECT * FROM nope").unwrap() else {
            unreachable!()
        };
        assert!(execute_select(&cat, &stmt, &mut OpStats::default()).is_err());
        let Statement::Select(stmt) = parse("SELECT missing FROM jobs").unwrap() else {
            unreachable!()
        };
        assert!(execute_select(&cat, &stmt, &mut OpStats::default()).is_err());
    }
}
