//! Query execution: SELECT evaluation, joins, aggregation, sorting.
//!
//! The executor is pure with respect to the catalog: it reads tables and
//! produces a [`QueryResult`], charging its work to the
//! [`OpStats`](crate::OpStats) passed in.
//! Mutating statements are executed by [`crate::db::Database`], which owns the
//! write-ahead log and transaction machinery.

mod aggregate;
mod select;

pub use select::{
    execute_select, execute_select_opts, execute_select_with, matching_row_ids,
    matching_row_ids_with, Catalog, ExecOptions,
};

use crate::convert::{resolve_column, FromRow, RowView};
use crate::error::Result;
use crate::tuple::Row;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The result of a query: named output columns and the result rows.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryResult {
    /// Output column names, in projection order. Names are `Arc<str>`s
    /// interned from the table schema at definition time, and the list
    /// itself is shared: a wildcard select clones the table's interned
    /// header (one refcount bump), not a fresh vector of names.
    pub columns: Arc<[Arc<str>]>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// The output column names as plain string slices, in projection order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| &**c).collect()
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the value in the first row at `column`, if present.
    pub fn first_value(&self, column: &str) -> Option<&Value> {
        let idx = self.column_index(column)?;
        self.rows.first().map(|r| r.get(idx))
    }

    /// Returns the ordinal of an output column by name (case-insensitive,
    /// accepting either the qualified or unqualified form).
    pub fn column_index(&self, column: &str) -> Option<usize> {
        resolve_column(&self.columns, column)
    }

    /// A [`RowView`] over row `row` — by-name, typed access to its values.
    pub fn view(&self, row: usize) -> Option<RowView<'_>> {
        self.rows.get(row).map(|r| RowView::new(&self.columns, r))
    }

    /// Iterates [`RowView`]s over every result row.
    pub fn views(&self) -> impl Iterator<Item = RowView<'_>> {
        self.rows.iter().map(|r| RowView::new(&self.columns, r))
    }

    /// Decodes every result row into `T` via its [`FromRow`] impl.
    pub fn decode<T: FromRow>(&self) -> Result<Vec<T>> {
        self.views().map(|v| T::from_row(&v)).collect()
    }

    /// Decodes the first result row, if any.
    pub fn decode_first<T: FromRow>(&self) -> Result<Option<T>> {
        self.view(0).map(|v| T::from_row(&v)).transpose()
    }

    /// Returns the value at (`row`, `column`), if present.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.column_index(column)?;
        self.rows.get(row).map(|r| r.get(idx))
    }

    /// Convenience: the single integer produced by an aggregate query such as
    /// `SELECT COUNT(*) FROM ...`.
    pub fn scalar_int(&self) -> Option<i64> {
        if self.rows.len() == 1 && self.rows[0].arity() == 1 {
            self.rows[0].get(0).as_int().ok()
        } else {
            None
        }
    }

    /// Renders the result as a simple aligned text table (for examples and
    /// the SQL console).
    pub fn to_text_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in rendered {
            for (i, v) in row.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(v.len());
                out.push_str(&format!("{v:w$}  "));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> QueryResult {
        QueryResult {
            columns: vec!["jobs.job_id".into(), "state".into()].into(),
            rows: vec![
                Row::new(vec![Value::Int(1), Value::Text("idle".into())]),
                Row::new(vec![Value::Int(2), Value::Text("running".into())]),
            ],
        }
    }

    #[test]
    fn column_index_handles_qualified_names() {
        let r = result();
        assert_eq!(r.column_index("state"), Some(1));
        assert_eq!(r.column_index("job_id"), Some(0));
        assert_eq!(r.column_index("jobs.job_id"), Some(0));
        assert_eq!(r.column_index("missing"), None);
    }

    #[test]
    fn value_accessors() {
        let r = result();
        assert_eq!(r.first_value("job_id"), Some(&Value::Int(1)));
        assert_eq!(r.value(1, "state"), Some(&Value::Text("running".into())));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.scalar_int(), None);
    }

    #[test]
    fn scalar_int_for_single_cell() {
        let r = QueryResult {
            columns: vec!["count".into()].into(),
            rows: vec![Row::new(vec![Value::Int(42)])],
        };
        assert_eq!(r.scalar_int(), Some(42));
    }

    #[test]
    fn text_table_contains_all_cells() {
        let text = result().to_text_table();
        assert!(text.contains("jobs.job_id"));
        assert!(text.contains("'running'"));
    }
}
