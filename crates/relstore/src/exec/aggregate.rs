//! GROUP BY and aggregate-function evaluation.

use super::QueryResult;
use crate::error::{Error, Result};
use crate::govern::Governor;
use crate::predicate::Expr;
use crate::schema::Schema;
use crate::sql::ast::{AggFunc, SelectItem, SelectStmt, SortOrder};
use crate::stats::OpStats;
use crate::tuple::Row;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Incremental state for one aggregate over one group.
#[derive(Debug, Clone)]
struct AggState {
    func: AggFunc,
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
    all_int: bool,
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        AggState {
            func,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
            all_int: true,
        }
    }

    fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self.func {
            AggFunc::Count => {
                // COUNT(*) counts rows; COUNT(col) counts non-null values.
                match value {
                    None => self.count += 1,
                    Some(v) if !v.is_null() => self.count += 1,
                    Some(_) => {}
                }
            }
            AggFunc::Sum | AggFunc::Avg => {
                if let Some(v) = value {
                    if !v.is_null() {
                        if !matches!(v, Value::Int(_) | Value::Timestamp(_)) {
                            self.all_int = false;
                        }
                        self.sum += v.as_double()?;
                        self.count += 1;
                    }
                }
            }
            AggFunc::Min => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match &self.min {
                            None => true,
                            Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Less,
                        };
                        if replace {
                            self.min = Some(v.clone());
                        }
                        self.count += 1;
                    }
                }
            }
            AggFunc::Max => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match &self.max {
                            None => true,
                            Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            self.max = Some(v.clone());
                        }
                        self.count += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Double(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

fn resolve(schema: &Schema, name: &str) -> Result<usize> {
    // Accept both bare and qualified names against the flattened schema.
    if let Ok(i) = schema.column_index(name) {
        return Ok(i);
    }
    let lname = name.to_ascii_lowercase();
    if !lname.contains('.') {
        let suffix = format!(".{lname}");
        let hits: Vec<usize> = schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.name.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        if hits.len() == 1 {
            return Ok(hits[0]);
        }
    } else if let Some((_, bare)) = lname.split_once('.') {
        if let Ok(i) = schema.column_index(bare) {
            return Ok(i);
        }
    }
    Err(Error::not_found(format!("column {name}")))
}

/// Executes the aggregation/grouping phase of a SELECT over pre-filtered
/// rows. The input is consumed as an iterator of borrowed rows, so the
/// single-table path can stream heap rows straight into the accumulators
/// without materialising owned copies.
pub fn execute_aggregate<'a>(
    stmt: &SelectStmt,
    schema: &Schema,
    rows: impl IntoIterator<Item = &'a Row>,
    _stats: &mut OpStats,
    gov: &mut Governor,
) -> Result<QueryResult> {
    // Resolve grouping columns.
    let group_idx: Vec<usize> = stmt
        .group_by
        .iter()
        .map(|c| resolve(schema, c))
        .collect::<Result<_>>()?;

    // Describe the output columns and how to compute each.
    enum OutCol {
        Group(usize),
        Agg { func: AggFunc, col: Option<usize> },
    }
    let mut out_cols: Vec<(Arc<str>, OutCol)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                return Err(Error::type_err(
                    "SELECT * cannot be combined with aggregates",
                ))
            }
            SelectItem::Expr { expr, alias } => {
                // Plain expressions in an aggregate query must be grouping columns.
                let Expr::Column(name) = expr else {
                    return Err(Error::type_err(format!(
                        "non-aggregate expression {expr} requires GROUP BY column"
                    )));
                };
                let idx = resolve(schema, name)?;
                if !group_idx.contains(&idx) {
                    return Err(Error::type_err(format!(
                        "column {name} must appear in GROUP BY"
                    )));
                }
                // Grouping columns reuse the schema's interned name.
                let out_name: Arc<str> = match alias {
                    Some(a) => Arc::from(a.as_str()),
                    None => schema.columns[idx].name.clone(),
                };
                out_cols.push((out_name, OutCol::Group(idx)));
            }
            SelectItem::Aggregate {
                func,
                column,
                alias,
            } => {
                let col = match column {
                    Some(c) => Some(resolve(schema, c)?),
                    None => None,
                };
                let out_name: Arc<str> = match alias {
                    Some(a) => Arc::from(a.as_str()),
                    None => match column {
                        Some(c) => {
                            format!("{}({})", func.name().to_ascii_lowercase(), c).into()
                        }
                        None => format!("{}(*)", func.name().to_ascii_lowercase()).into(),
                    },
                };
                out_cols.push((out_name, OutCol::Agg { func: *func, col }));
            }
        }
    }

    // Group rows. With no GROUP BY the whole input forms one group (even when
    // empty, which yields one row of zero/NULL aggregates).
    let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
    let make_states = || -> Vec<AggState> {
        out_cols
            .iter()
            .filter_map(|(_, c)| match c {
                OutCol::Agg { func, .. } => Some(AggState::new(*func)),
                OutCol::Group(_) => None,
            })
            .collect()
    };
    if group_idx.is_empty() {
        groups.insert(Vec::new(), make_states());
    }
    for row in rows {
        gov.tick()?;
        let key: Vec<Value> = group_idx.iter().map(|i| row.get(*i).clone()).collect();
        let states = groups.entry(key).or_insert_with(make_states);
        let mut agg_i = 0usize;
        for (_, col) in &out_cols {
            if let OutCol::Agg { col, .. } = col {
                let value = col.map(|i| row.get(i));
                states[agg_i].update(value)?;
                agg_i += 1;
            }
        }
    }

    // Produce output rows.
    let columns: Vec<Arc<str>> = out_cols.iter().map(|(n, _)| n.clone()).collect();
    let mut out_rows = Vec::with_capacity(groups.len());
    for (key, states) in &groups {
        let mut values = Vec::with_capacity(out_cols.len());
        let mut agg_i = 0usize;
        for (_, col) in &out_cols {
            match col {
                OutCol::Group(idx) => {
                    let pos = group_idx.iter().position(|g| g == idx).ok_or_else(|| {
                        Error::internal("grouping column missing from key")
                    })?;
                    values.push(key[pos].clone());
                }
                OutCol::Agg { .. } => {
                    values.push(states[agg_i].finish());
                    agg_i += 1;
                }
            }
        }
        out_rows.push(Row::new(values));
    }

    // ORDER BY over the aggregate output (by output column name).
    if !stmt.order_by.is_empty() {
        let result_schema = Schema::new(
            "agg",
            columns
                .iter()
                .map(|c| crate::schema::Column::new(c.clone(), crate::value::DataType::Text))
                .collect(),
        );
        let keys: Vec<(usize, SortOrder)> = stmt
            .order_by
            .iter()
            .map(|k| Ok((resolve(&result_schema, &k.column)?, k.order)))
            .collect::<Result<_>>()?;
        out_rows.sort_by(|a, b| {
            for (idx, order) in &keys {
                let cmp = a.get(*idx).total_cmp(b.get(*idx));
                let cmp = match order {
                    SortOrder::Asc => cmp,
                    SortOrder::Desc => cmp.reverse(),
                };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(limit) = stmt.limit {
        out_rows.truncate(limit);
    }

    Ok(QueryResult {
        columns: columns.into(),
        rows: out_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(
            "jobs",
            vec![
                Column::new("owner", DataType::Text),
                Column::new("runtime", DataType::Double),
                Column::new("priority", DataType::Int),
            ],
        )
    }

    fn rows() -> Vec<Row> {
        vec![
            Row::new(vec![Value::Text("alice".into()), Value::Double(60.0), Value::Int(1)]),
            Row::new(vec![Value::Text("alice".into()), Value::Double(120.0), Value::Int(2)]),
            Row::new(vec![Value::Text("bob".into()), Value::Double(30.0), Value::Int(3)]),
            Row::new(vec![Value::Text("bob".into()), Value::Null, Value::Int(4)]),
        ]
    }

    fn run(sql: &str, rows: Vec<Row>) -> QueryResult {
        let Statement::Select(stmt) = parse(sql).unwrap() else {
            panic!()
        };
        execute_aggregate(
            &stmt,
            &schema(),
            &rows,
            &mut OpStats::default(),
            &mut Governor::disarmed(),
        )
        .unwrap()
    }

    #[test]
    fn global_aggregates() {
        let r = run(
            "SELECT COUNT(*), COUNT(runtime), SUM(runtime), AVG(runtime), MIN(priority), MAX(priority) FROM jobs",
            rows(),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "count(*)"), Some(&Value::Int(4)));
        assert_eq!(r.value(0, "count(runtime)"), Some(&Value::Int(3)));
        assert_eq!(r.value(0, "sum(runtime)"), Some(&Value::Double(210.0)));
        assert_eq!(r.value(0, "avg(runtime)"), Some(&Value::Double(70.0)));
        assert_eq!(r.value(0, "min(priority)"), Some(&Value::Int(1)));
        assert_eq!(r.value(0, "max(priority)"), Some(&Value::Int(4)));
    }

    #[test]
    fn empty_input_yields_zero_count_and_null_aggs() {
        let r = run("SELECT COUNT(*), SUM(runtime), AVG(runtime) FROM jobs", vec![]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "count(*)"), Some(&Value::Int(0)));
        assert_eq!(r.value(0, "sum(runtime)"), Some(&Value::Null));
        assert_eq!(r.value(0, "avg(runtime)"), Some(&Value::Null));
    }

    #[test]
    fn group_by_with_aliases_and_order() {
        let r = run(
            "SELECT owner, COUNT(*) AS n, SUM(runtime) AS total FROM jobs GROUP BY owner ORDER BY owner",
            rows(),
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "owner"), Some(&Value::Text("alice".into())));
        assert_eq!(r.value(0, "n"), Some(&Value::Int(2)));
        assert_eq!(r.value(0, "total"), Some(&Value::Double(180.0)));
        assert_eq!(r.value(1, "owner"), Some(&Value::Text("bob".into())));
        assert_eq!(r.value(1, "total"), Some(&Value::Double(30.0)));
    }

    #[test]
    fn integer_sum_stays_integer() {
        let r = run("SELECT SUM(priority) FROM jobs", rows());
        assert_eq!(r.value(0, "sum(priority)"), Some(&Value::Int(10)));
    }

    #[test]
    fn non_grouped_column_is_rejected() {
        let Statement::Select(stmt) = parse("SELECT owner, COUNT(*) FROM jobs").unwrap() else {
            panic!()
        };
        assert!(execute_aggregate(
            &stmt,
            &schema(),
            &rows(),
            &mut OpStats::default(),
            &mut Governor::disarmed()
        )
        .is_err());
        let Statement::Select(stmt) = parse("SELECT *, COUNT(*) FROM jobs").unwrap() else {
            panic!()
        };
        assert!(execute_aggregate(
            &stmt,
            &schema(),
            &rows(),
            &mut OpStats::default(),
            &mut Governor::disarmed()
        )
        .is_err());
    }

    #[test]
    fn group_limit_applies_after_sort() {
        let r = run(
            "SELECT owner, COUNT(*) AS n FROM jobs GROUP BY owner ORDER BY owner DESC LIMIT 1",
            rows(),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "owner"), Some(&Value::Text("bob".into())));
    }
}
