//! Write-ahead logging, checkpointing and recovery.
//!
//! The log is logical: each record describes one row-level change plus the
//! transaction boundaries around it. Recovery rebuilds the catalog by
//! restoring the most recent checkpoint snapshot and replaying the changes of
//! every transaction that committed after it. The schedd in Condor keeps a
//! persistent job-queue log for exactly the same reason (the paper notes it is
//! "used only for recovery"); here the log covers *all* operational state, not
//! just the job queue.

use crate::error::{Error, Result};
use crate::io::record::{encode_record, encode_segment, segment_header};
use crate::io::{decode_segment, points, DurabilityPolicy, FailAction, Failpoints, LogDevice};
use crate::obs::clock::Stopwatch;
use crate::obs::Observability;
use crate::schema::Schema;
use crate::stats::OpStats;
use crate::table::Table;
use crate::tuple::{Row, RowId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Log sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lsn(pub u64);

/// A snapshot of one table taken at checkpoint time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSnapshot {
    /// The table schema.
    pub schema: Schema,
    /// All live rows at checkpoint time.
    pub rows: Vec<(RowId, Row)>,
}

/// A single write-ahead log record.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum LogRecord {
    /// A transaction started.
    Begin { txn: TxnId },
    /// A transaction committed; its effects are durable.
    Commit { txn: TxnId },
    /// A transaction aborted; its effects must be discarded on recovery.
    Abort { txn: TxnId },
    /// A table was created.
    CreateTable { txn: TxnId, schema: Schema },
    /// A table was dropped.
    DropTable { txn: TxnId, table: String },
    /// A row was inserted.
    Insert {
        txn: TxnId,
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// A row was deleted.
    Delete {
        txn: TxnId,
        table: String,
        row_id: RowId,
        before: Row,
    },
    /// A row was updated in place.
    Update {
        txn: TxnId,
        table: String,
        row_id: RowId,
        before: Row,
        after: Row,
    },
    /// Several row-level changes produced by one batched statement execution
    /// ([`crate::Database::execute_batch`]): one log append covers every
    /// binding of the batch instead of one append per row.
    Batch {
        txn: TxnId,
        changes: Vec<LogRecord>,
    },
    /// A checkpoint: a consistent snapshot of every table.
    Checkpoint { snapshot: Vec<TableSnapshot> },
}

impl LogRecord {
    /// Approximate serialized size in bytes (used for IO cost accounting).
    pub fn approx_size(&self) -> usize {
        match self {
            LogRecord::Begin { .. } | LogRecord::Commit { .. } | LogRecord::Abort { .. } => 16,
            LogRecord::CreateTable { schema, .. } => 64 + schema.columns.len() * 24,
            LogRecord::DropTable { table, .. } => 16 + table.len(),
            LogRecord::Insert { row, table, .. } => 24 + table.len() + row.approx_size(),
            LogRecord::Delete { before, table, .. } => 24 + table.len() + before.approx_size(),
            LogRecord::Update {
                before,
                after,
                table,
                ..
            } => 24 + table.len() + before.approx_size() + after.approx_size(),
            LogRecord::Batch { changes, .. } => {
                16 + changes.iter().map(LogRecord::approx_size).sum::<usize>()
            }
            LogRecord::Checkpoint { snapshot } => {
                64 + snapshot
                    .iter()
                    .map(|t| t.rows.iter().map(|(_, r)| r.approx_size()).sum::<usize>() + 64)
                    .sum::<usize>()
            }
        }
    }

    /// The transaction that wrote this record, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::CreateTable { txn, .. }
            | LogRecord::DropTable { txn, .. }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Batch { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }
}

/// The durable sink behind a [`Wal`], present only for databases opened
/// through [`crate::Database::open_durable`] and friends.
///
/// Device failures do not surface from [`Wal::append`] (whose ~30 call sites
/// treat appending as infallible); instead the first failure **poisons** the
/// sink, and every later [`Wal::commit_sync`] / [`Wal::flush`] /
/// [`Wal::checkpoint`] returns that error. The net effect is the guarantee
/// that matters: once a write or fsync has failed, no commit is ever again
/// acknowledged, even though the in-memory engine stays readable.
#[derive(Debug)]
struct DurableLog {
    device: Box<dyn LogDevice>,
    policy: DurabilityPolicy,
    failpoints: Arc<Failpoints>,
    /// The first device error, replayed to every subsequent durability call.
    poisoned: Option<Error>,
    /// Commits acknowledged since the last successful sync.
    unsynced_commits: usize,
    /// True when record bytes have been appended since the last successful
    /// sync or rotation — the paged engine's WAL-before-data gate
    /// ([`Wal::is_synced`]) flushes before any page write-back while this
    /// is set.
    unsynced: bool,
    /// The owning database's observability state, attached after open so
    /// every successful device sync lands one sample in the `wal.fsync`
    /// latency histogram.
    obs: Option<Arc<Observability>>,
}

impl DurableLog {
    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(e) => Err(Error::io(format!("log writer poisoned by earlier failure: {e}"))),
            None => Ok(()),
        }
    }

    /// Mirrors one record onto the device. Errors poison the sink instead of
    /// propagating; `commit_sync` surfaces them before any acknowledgement.
    fn append_record(&mut self, record: &LogRecord, stats: &mut OpStats) {
        if self.poisoned.is_some() {
            return;
        }
        let bytes = encode_record(record);
        self.unsynced = true;
        let result = match self.failpoints.check(points::WAL_APPEND) {
            Some(action) => {
                stats.failpoints_hit += 1;
                self.injected_append(action, &bytes)
            }
            None => self.device.append(&bytes),
        };
        if let Err(e) = result {
            self.poisoned = Some(e);
        }
    }

    fn injected_append(&mut self, action: FailAction, bytes: &[u8]) -> Result<()> {
        match action {
            FailAction::ShortWrite(k) => {
                // A partial write(2) then an IO error: k bytes sit in the
                // device's volatile buffer, nothing is durable.
                let k = k.min(bytes.len());
                self.device.append(&bytes[..k])?;
                Err(Error::io(format!(
                    "injected short write: {k} of {} byte(s)",
                    bytes.len()
                )))
            }
            FailAction::TornWrite(k) => {
                // Power loss mid-append with the prefix already persisted:
                // the canonical torn tail recovery must repair.
                let k = k.min(bytes.len());
                self.device.append(&bytes[..k])?;
                self.device.sync()?;
                self.device.crash();
                Err(Error::io(format!(
                    "injected torn write: {k} of {} byte(s) persisted",
                    bytes.len()
                )))
            }
            FailAction::Err => Err(Error::io("injected append error")),
            FailAction::Crash => {
                // The write lands in the volatile buffer, then the machine
                // dies before any sync: recovery must not see the record.
                self.device.append(bytes)?;
                self.device.crash();
                Err(Error::io("injected crash after write, before sync"))
            }
        }
    }

    /// Durability barrier. Success resets the unsynced-commit window;
    /// failure poisons the sink.
    fn sync(&mut self, stats: &mut OpStats) -> Result<()> {
        self.check_poisoned()?;
        let sw = Stopwatch::start();
        let result = match self.failpoints.check(points::WAL_SYNC) {
            Some(FailAction::Crash) => {
                stats.failpoints_hit += 1;
                self.device.crash();
                Err(Error::io("injected crash before fsync"))
            }
            Some(_) => {
                stats.failpoints_hit += 1;
                Err(Error::io("injected fsync failure"))
            }
            None => self.device.sync(),
        };
        match result {
            Ok(()) => {
                self.note_fsync(sw, stats);
                self.unsynced_commits = 0;
                self.unsynced = false;
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Accounts one successful durability barrier: the `wal_fsyncs` counter,
    /// the time spent, and (once attached) the `wal.fsync` histogram.
    fn note_fsync(&self, sw: Stopwatch, stats: &mut OpStats) {
        let nanos = sw.elapsed_nanos();
        stats.wal_fsyncs += 1;
        stats.wal_fsync_nanos += nanos;
        if let Some(obs) = &self.obs {
            obs.histograms.wal_fsync.record(nanos);
        }
    }

    /// Called once per commit: surfaces any poisoning, then syncs if the
    /// policy's window is full.
    fn note_commit(&mut self, stats: &mut OpStats) -> Result<()> {
        self.check_poisoned()?;
        self.unsynced_commits += 1;
        match self.policy.commits_per_sync() {
            Some(n) if self.unsynced_commits >= n => self.sync(stats),
            _ => Ok(()),
        }
    }

    /// Checkpoint rotation: writes a fresh segment holding only `record`
    /// (the checkpoint) and atomically swaps it over the old one.
    fn rotate(&mut self, record: &LogRecord, stats: &mut OpStats) -> Result<()> {
        self.check_poisoned()?;
        let bytes = encode_segment(std::iter::once(record));
        let sw = Stopwatch::start();
        let result = match self.failpoints.check(points::WAL_ROTATE) {
            Some(FailAction::Crash) | Some(FailAction::TornWrite(_)) => {
                stats.failpoints_hit += 1;
                self.device.crash();
                Err(Error::io("injected crash during segment rotation"))
            }
            Some(_) => {
                stats.failpoints_hit += 1;
                Err(Error::io("injected segment rotation failure"))
            }
            None => self.device.replace(&bytes),
        };
        match result {
            Ok(()) => {
                // replace() is durable by contract (sync + rename + dir sync).
                self.note_fsync(sw, stats);
                stats.wal_segments_rotated += 1;
                self.unsynced_commits = 0;
                self.unsynced = false;
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }
}

/// The write-ahead log.
///
/// By default the log is in-memory only — the simulated deployment models
/// durability by the IO cycle cost the application-server cost model charges
/// per appended byte. A database opened through
/// [`crate::Database::open_durable`] additionally mirrors every record onto a
/// [`LogDevice`] as a checksummed binary segment (see [`crate::io`]), from
/// which [`Wal::open_device`] rebuilds the log after a crash.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<(Lsn, LogRecord)>,
    next_lsn: u64,
    total_bytes: u64,
    durable: Option<DurableLog>,
}

impl Clone for Wal {
    /// Clones the retained records only: the clone is a mem-only snapshot of
    /// the log (used by [`crate::Database::snapshot_wal`]) and never owns
    /// the durable device.
    fn clone(&self) -> Self {
        Wal {
            records: self.records.clone(),
            next_lsn: self.next_lsn,
            total_bytes: self.total_bytes,
            durable: None,
        }
    }
}

impl Wal {
    /// Creates an empty in-memory log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Opens a durable log over `device`, recovering its retained records.
    ///
    /// The device's durable contents are scanned with
    /// [`decode_segment`]: a torn tail is truncated off the device (counted
    /// in `stats.recovery_truncated_bytes`), mid-log corruption surfaces as
    /// [`Error::Corruption`]. A fresh device gets a segment header written.
    pub fn open_device(
        mut device: Box<dyn LogDevice>,
        policy: DurabilityPolicy,
        failpoints: Arc<Failpoints>,
        stats: &mut OpStats,
    ) -> Result<Wal> {
        let bytes = device.durable_contents()?;
        let decoded = decode_segment(&bytes, stats)?;
        if decoded.valid_len < device.len() {
            device.truncate(decoded.valid_len)?;
        }
        if decoded.valid_len == 0 {
            device.append(&segment_header())?;
        }
        let mut wal = Wal {
            records: Vec::new(),
            next_lsn: 0,
            total_bytes: 0,
            durable: Some(DurableLog {
                device,
                policy,
                failpoints,
                poisoned: None,
                unsynced_commits: 0,
                unsynced: false,
                obs: None,
            }),
        };
        // Replaying into the in-memory view is not new appended work; keep
        // it out of the caller-visible wal_records/wal_bytes counters.
        let mut scratch = OpStats::default();
        for record in decoded.records {
            wal.push_mem(record, &mut scratch);
        }
        Ok(wal)
    }

    /// True when this log mirrors appends onto a durable device.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Attaches the owning database's observability state so device syncs
    /// record `wal.fsync` histogram samples. A no-op for in-memory logs,
    /// which never fsync.
    pub(crate) fn set_obs(&mut self, obs: Arc<Observability>) {
        if let Some(d) = &mut self.durable {
            d.obs = Some(obs);
        }
    }

    /// The bytes a crash right now would leave on the durable device, or
    /// [`Error::Wal`] for an in-memory log. Works even after the device has
    /// died (it is the post-mortem view used by crash tests).
    pub fn durable_contents(&self) -> Result<Vec<u8>> {
        match &self.durable {
            Some(d) => d.device.durable_contents(),
            None => Err(Error::Wal("log has no durable device".into())),
        }
    }

    /// The largest transaction id mentioned anywhere in the retained
    /// records. After recovery the transaction manager must allocate past
    /// this, or a new transaction could collide with a logged one and make
    /// its uncommitted changes look committed.
    pub fn max_txn_id(&self) -> u64 {
        fn walk(rec: &LogRecord) -> u64 {
            let own = rec.txn().map(|t| t.0).unwrap_or(0);
            match rec {
                LogRecord::Batch { changes, .. } => {
                    changes.iter().map(walk).fold(own, u64::max)
                }
                _ => own,
            }
        }
        self.records.iter().map(|(_, r)| walk(r)).max().unwrap_or(0)
    }

    fn push_mem(&mut self, record: LogRecord, stats: &mut OpStats) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        let size = record.approx_size() as u64;
        self.total_bytes += size;
        stats.wal_records += 1;
        stats.wal_bytes += size;
        self.records.push((lsn, record));
        lsn
    }

    /// Appends a record, returning its LSN.
    ///
    /// For a durable log the record is also framed and written to the
    /// device. A device failure does **not** surface here — it poisons the
    /// writer, and [`Wal::commit_sync`] reports it before the enclosing
    /// commit can be acknowledged.
    pub fn append(&mut self, record: LogRecord, stats: &mut OpStats) -> Lsn {
        if let Some(d) = &mut self.durable {
            d.append_record(&record, stats);
        }
        self.push_mem(record, stats)
    }

    /// Called by the database once per commit, after the Commit record is
    /// appended: surfaces any poisoning and applies the
    /// [`DurabilityPolicy`]'s fsync schedule. An `Err` here means the commit
    /// was **not** acknowledged as durable.
    pub fn commit_sync(&mut self, stats: &mut OpStats) -> Result<()> {
        match &mut self.durable {
            Some(d) => d.note_commit(stats),
            None => Ok(()),
        }
    }

    /// Forces everything appended so far onto stable storage (no-op for an
    /// in-memory log).
    pub fn flush(&mut self, stats: &mut OpStats) -> Result<()> {
        match &mut self.durable {
            Some(d) => d.sync(stats),
            None => Ok(()),
        }
    }

    /// True when every appended record is already durable (always true for
    /// an in-memory log). The paged engine's WAL-before-data gate: page
    /// write-back calls [`Wal::flush`] first whenever this is false.
    pub fn is_synced(&self) -> bool {
        match &self.durable {
            Some(d) => !d.unsynced,
            None => true,
        }
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes ever appended (not reduced by truncation).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Iterates over retained records in LSN order.
    pub fn records(&self) -> impl Iterator<Item = &(Lsn, LogRecord)> {
        self.records.iter()
    }

    /// Writes a checkpoint record containing `snapshot` and discards all
    /// earlier records. Returns the LSN of the checkpoint.
    ///
    /// On a durable log this is a **segment rotation**: the new segment
    /// (holding just the checkpoint record) is written beside the old one,
    /// fsynced, and atomically renamed over it *before* the retained records
    /// are discarded — a crash at any instant finds either the old complete
    /// log or the new complete snapshot, never neither.
    pub fn checkpoint(
        &mut self,
        snapshot: Vec<TableSnapshot>,
        stats: &mut OpStats,
    ) -> Result<Lsn> {
        let record = LogRecord::Checkpoint { snapshot };
        if let Some(d) = &mut self.durable {
            d.rotate(&record, stats)?;
        }
        // Only now, with the new segment durable (or trivially, in memory),
        // is it safe to drop the old records.
        self.records.clear();
        stats.checkpoints += 1;
        // The rotation already wrote the record to the device; mirror it
        // into the in-memory view only.
        Ok(self.push_mem(record, stats))
    }

    /// Rebuilds the full set of tables implied by the retained log records:
    /// the latest checkpoint (if any) plus all *committed* transactions after
    /// it. Changes from unfinished or aborted transactions are discarded.
    ///
    /// Recovery replays through the tables' **physical** operations, so the
    /// rebuilt catalog holds exactly one committed version per live row
    /// (stamped [`crate::mvcc::COMMITTED_TXN`], visible to every snapshot of
    /// the recovered database) — uncommitted versions, tombstones and
    /// version chains never survive a crash.
    pub fn recover(&self) -> Result<BTreeMap<String, Table>> {
        // Pass 1: find committed transactions.
        let mut committed = std::collections::HashSet::new();
        for (_, rec) in &self.records {
            if let LogRecord::Commit { txn } = rec {
                committed.insert(*txn);
            }
        }

        // Pass 2: start from the latest checkpoint.
        let mut tables: BTreeMap<String, Table> = BTreeMap::new();
        let mut start = 0usize;
        for (i, (_, rec)) in self.records.iter().enumerate() {
            if let LogRecord::Checkpoint { snapshot } = rec {
                tables.clear();
                for snap in snapshot {
                    let mut table = Table::new(snap.schema.clone())?;
                    let mut scratch = OpStats::default();
                    for (id, row) in &snap.rows {
                        table.insert_with_id(*id, row.clone(), &mut scratch)?;
                    }
                    tables.insert(snap.schema.name.clone(), table);
                }
                start = i + 1;
            }
        }

        // Pass 3: redo committed work after the checkpoint.
        let mut scratch = OpStats::default();
        for (_, rec) in &self.records[start..] {
            let Some(txn) = rec.txn() else { continue };
            if !committed.contains(&txn) {
                continue;
            }
            Self::redo(rec, &mut tables, &mut scratch)?;
        }
        Ok(tables)
    }

    /// Replays one committed record into `tables`, recursing into batches.
    fn redo(
        rec: &LogRecord,
        tables: &mut BTreeMap<String, Table>,
        scratch: &mut OpStats,
    ) -> Result<()> {
        match rec {
            LogRecord::CreateTable { schema, .. } => {
                tables.insert(schema.name.clone(), Table::new(schema.clone())?);
            }
            LogRecord::DropTable { table, .. } => {
                tables.remove(table);
            }
            LogRecord::Insert {
                table, row_id, row, ..
            } => {
                let t = tables
                    .get_mut(table)
                    .ok_or_else(|| Error::Wal(format!("insert into unknown table {table}")))?;
                t.insert_with_id(*row_id, row.clone(), scratch)?;
            }
            LogRecord::Delete { table, row_id, .. } => {
                let t = tables
                    .get_mut(table)
                    .ok_or_else(|| Error::Wal(format!("delete from unknown table {table}")))?;
                t.remove_physical(*row_id, scratch)?;
            }
            LogRecord::Update {
                table,
                row_id,
                after,
                ..
            } => {
                let t = tables
                    .get_mut(table)
                    .ok_or_else(|| Error::Wal(format!("update of unknown table {table}")))?;
                t.restore(*row_id, after.clone())?;
            }
            LogRecord::Batch { changes, .. } => {
                for change in changes {
                    Self::redo(change, tables, scratch)?;
                }
            }
            LogRecord::Begin { .. }
            | LogRecord::Commit { .. }
            | LogRecord::Abort { .. }
            | LogRecord::Checkpoint { .. } => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(
            "jobs",
            vec![
                Column::not_null("job_id", DataType::Int),
                Column::new("state", DataType::Text),
            ],
        )
        .with_primary_key("job_id")
    }

    fn insert_rec(txn: u64, id: u64, job: i64, state: &str) -> LogRecord {
        LogRecord::Insert {
            txn: TxnId(txn),
            table: "jobs".into(),
            row_id: RowId(id),
            row: Row::new(vec![Value::Int(job), Value::Text(state.into())]),
        }
    }

    #[test]
    fn recovery_replays_only_committed_transactions() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);

        // Txn 2 inserts but never commits; txn 3 inserts and aborts.
        wal.append(LogRecord::Begin { txn: TxnId(2) }, &mut stats);
        wal.append(insert_rec(2, 2, 200, "idle"), &mut stats);
        wal.append(LogRecord::Begin { txn: TxnId(3) }, &mut stats);
        wal.append(insert_rec(3, 3, 300, "idle"), &mut stats);
        wal.append(LogRecord::Abort { txn: TxnId(3) }, &mut stats);

        let tables = wal.recover().unwrap();
        let jobs = tables.get("jobs").unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(jobs.get(RowId(1)).is_some());
        assert!(jobs.get(RowId(2)).is_none());
        assert!(jobs.get(RowId(3)).is_none());
    }

    #[test]
    fn recovery_applies_updates_and_deletes() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        wal.append(insert_rec(1, 2, 200, "idle"), &mut stats);
        wal.append(
            LogRecord::Update {
                txn: TxnId(1),
                table: "jobs".into(),
                row_id: RowId(1),
                before: Row::new(vec![Value::Int(100), Value::Text("idle".into())]),
                after: Row::new(vec![Value::Int(100), Value::Text("running".into())]),
            },
            &mut stats,
        );
        wal.append(
            LogRecord::Delete {
                txn: TxnId(1),
                table: "jobs".into(),
                row_id: RowId(2),
                before: Row::new(vec![Value::Int(200), Value::Text("idle".into())]),
            },
            &mut stats,
        );
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);

        let tables = wal.recover().unwrap();
        let jobs = tables.get("jobs").unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(
            jobs.get(RowId(1)).unwrap().get(1),
            &Value::Text("running".into())
        );
    }

    #[test]
    fn recovery_rejects_duplicate_committed_keys() {
        // A duplicated/corrupt log (two committed inserts sharing a primary
        // key) must fail recovery loudly, not rebuild a catalog that
        // violates its unique constraints.
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        wal.append(insert_rec(1, 2, 100, "held"), &mut stats);
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);
        assert!(matches!(wal.recover(), Err(Error::Constraint(_))));
    }

    #[test]
    fn checkpoint_truncates_and_recovery_uses_it() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);
        let before_len = wal.len();

        // Build the snapshot the checkpoint would capture.
        let recovered = wal.recover().unwrap();
        let snapshot: Vec<TableSnapshot> = recovered
            .values()
            .map(|t| TableSnapshot {
                schema: t.schema.clone(),
                rows: {
                    let mut s = OpStats::default();
                    t.scan(crate::mvcc::Snapshot::latest(), &mut s)
                        .map(|r| (r.id, r.row.clone()))
                        .collect()
                },
            })
            .collect();
        wal.checkpoint(snapshot, &mut stats).unwrap();
        assert!(wal.len() < before_len);
        assert_eq!(stats.checkpoints, 1);

        // Post-checkpoint committed work still replays.
        wal.append(LogRecord::Begin { txn: TxnId(2) }, &mut stats);
        wal.append(insert_rec(2, 2, 200, "held"), &mut stats);
        wal.append(LogRecord::Commit { txn: TxnId(2) }, &mut stats);

        let tables = wal.recover().unwrap();
        let jobs = tables.get("jobs").unwrap();
        assert_eq!(jobs.len(), 2);
    }

    #[test]
    fn recovery_replays_batch_records() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        // One append carries three inserts; a later nested batch updates one.
        wal.append(
            LogRecord::Batch {
                txn: TxnId(1),
                changes: vec![
                    insert_rec(1, 1, 100, "idle"),
                    insert_rec(1, 2, 200, "idle"),
                    insert_rec(1, 3, 300, "idle"),
                ],
            },
            &mut stats,
        );
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);
        // An uncommitted batch must not replay.
        wal.append(LogRecord::Begin { txn: TxnId(2) }, &mut stats);
        wal.append(
            LogRecord::Batch {
                txn: TxnId(2),
                changes: vec![insert_rec(2, 4, 400, "idle")],
            },
            &mut stats,
        );

        let tables = wal.recover().unwrap();
        let jobs = tables.get("jobs").unwrap();
        assert_eq!(jobs.len(), 3);
        assert!(jobs.get(RowId(4)).is_none());
        // The batch counted as a single WAL record.
        assert_eq!(wal.len(), 6);
        let batch = LogRecord::Batch {
            txn: TxnId(1),
            changes: vec![insert_rec(1, 1, 100, "idle")],
        };
        assert!(batch.approx_size() > insert_rec(1, 1, 100, "idle").approx_size());
        assert_eq!(batch.txn(), Some(TxnId(1)));
    }

    #[test]
    fn wal_counts_bytes() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        assert!(wal.total_bytes() > 0);
        assert_eq!(stats.wal_records, 2);
        assert_eq!(stats.wal_bytes, wal.total_bytes());
    }
}
