//! Write-ahead logging, checkpointing and recovery.
//!
//! The log is logical: each record describes one row-level change plus the
//! transaction boundaries around it. Recovery rebuilds the catalog by
//! restoring the most recent checkpoint snapshot and replaying the changes of
//! every transaction that committed after it. The schedd in Condor keeps a
//! persistent job-queue log for exactly the same reason (the paper notes it is
//! "used only for recovery"); here the log covers *all* operational state, not
//! just the job queue.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::stats::OpStats;
use crate::table::Table;
use crate::tuple::{Row, RowId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Log sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lsn(pub u64);

/// A snapshot of one table taken at checkpoint time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSnapshot {
    /// The table schema.
    pub schema: Schema,
    /// All live rows at checkpoint time.
    pub rows: Vec<(RowId, Row)>,
}

/// A single write-ahead log record.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum LogRecord {
    /// A transaction started.
    Begin { txn: TxnId },
    /// A transaction committed; its effects are durable.
    Commit { txn: TxnId },
    /// A transaction aborted; its effects must be discarded on recovery.
    Abort { txn: TxnId },
    /// A table was created.
    CreateTable { txn: TxnId, schema: Schema },
    /// A table was dropped.
    DropTable { txn: TxnId, table: String },
    /// A row was inserted.
    Insert {
        txn: TxnId,
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// A row was deleted.
    Delete {
        txn: TxnId,
        table: String,
        row_id: RowId,
        before: Row,
    },
    /// A row was updated in place.
    Update {
        txn: TxnId,
        table: String,
        row_id: RowId,
        before: Row,
        after: Row,
    },
    /// Several row-level changes produced by one batched statement execution
    /// ([`crate::Database::execute_batch`]): one log append covers every
    /// binding of the batch instead of one append per row.
    Batch {
        txn: TxnId,
        changes: Vec<LogRecord>,
    },
    /// A checkpoint: a consistent snapshot of every table.
    Checkpoint { snapshot: Vec<TableSnapshot> },
}

impl LogRecord {
    /// Approximate serialized size in bytes (used for IO cost accounting).
    pub fn approx_size(&self) -> usize {
        match self {
            LogRecord::Begin { .. } | LogRecord::Commit { .. } | LogRecord::Abort { .. } => 16,
            LogRecord::CreateTable { schema, .. } => 64 + schema.columns.len() * 24,
            LogRecord::DropTable { table, .. } => 16 + table.len(),
            LogRecord::Insert { row, table, .. } => 24 + table.len() + row.approx_size(),
            LogRecord::Delete { before, table, .. } => 24 + table.len() + before.approx_size(),
            LogRecord::Update {
                before,
                after,
                table,
                ..
            } => 24 + table.len() + before.approx_size() + after.approx_size(),
            LogRecord::Batch { changes, .. } => {
                16 + changes.iter().map(LogRecord::approx_size).sum::<usize>()
            }
            LogRecord::Checkpoint { snapshot } => {
                64 + snapshot
                    .iter()
                    .map(|t| t.rows.iter().map(|(_, r)| r.approx_size()).sum::<usize>() + 64)
                    .sum::<usize>()
            }
        }
    }

    /// The transaction that wrote this record, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::CreateTable { txn, .. }
            | LogRecord::DropTable { txn, .. }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Batch { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }
}

/// The in-memory write-ahead log.
///
/// The simulated deployment never touches a real disk; durability is modelled
/// by the IO cycle cost the application-server cost model charges per appended
/// byte, and recovery correctness is exercised by rebuilding the database from
/// the log in tests and failure-injection experiments.
#[derive(Debug, Default, Clone)]
pub struct Wal {
    records: Vec<(Lsn, LogRecord)>,
    next_lsn: u64,
    total_bytes: u64,
}

impl Wal {
    /// Creates an empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Appends a record, returning its LSN.
    pub fn append(&mut self, record: LogRecord, stats: &mut OpStats) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        let size = record.approx_size() as u64;
        self.total_bytes += size;
        stats.wal_records += 1;
        stats.wal_bytes += size;
        self.records.push((lsn, record));
        lsn
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes ever appended (not reduced by truncation).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Iterates over retained records in LSN order.
    pub fn records(&self) -> impl Iterator<Item = &(Lsn, LogRecord)> {
        self.records.iter()
    }

    /// Writes a checkpoint record containing `snapshot` and discards all
    /// earlier records. Returns the LSN of the checkpoint.
    pub fn checkpoint(&mut self, snapshot: Vec<TableSnapshot>, stats: &mut OpStats) -> Lsn {
        self.records.clear();
        stats.checkpoints += 1;
        self.append(LogRecord::Checkpoint { snapshot }, stats)
    }

    /// Rebuilds the full set of tables implied by the retained log records:
    /// the latest checkpoint (if any) plus all *committed* transactions after
    /// it. Changes from unfinished or aborted transactions are discarded.
    ///
    /// Recovery replays through the tables' **physical** operations, so the
    /// rebuilt catalog holds exactly one committed version per live row
    /// (stamped [`crate::mvcc::COMMITTED_TXN`], visible to every snapshot of
    /// the recovered database) — uncommitted versions, tombstones and
    /// version chains never survive a crash.
    pub fn recover(&self) -> Result<BTreeMap<String, Table>> {
        // Pass 1: find committed transactions.
        let mut committed = std::collections::HashSet::new();
        for (_, rec) in &self.records {
            if let LogRecord::Commit { txn } = rec {
                committed.insert(*txn);
            }
        }

        // Pass 2: start from the latest checkpoint.
        let mut tables: BTreeMap<String, Table> = BTreeMap::new();
        let mut start = 0usize;
        for (i, (_, rec)) in self.records.iter().enumerate() {
            if let LogRecord::Checkpoint { snapshot } = rec {
                tables.clear();
                for snap in snapshot {
                    let mut table = Table::new(snap.schema.clone())?;
                    let mut scratch = OpStats::default();
                    for (id, row) in &snap.rows {
                        table.insert_with_id(*id, row.clone(), &mut scratch)?;
                    }
                    tables.insert(snap.schema.name.clone(), table);
                }
                start = i + 1;
            }
        }

        // Pass 3: redo committed work after the checkpoint.
        let mut scratch = OpStats::default();
        for (_, rec) in &self.records[start..] {
            let Some(txn) = rec.txn() else { continue };
            if !committed.contains(&txn) {
                continue;
            }
            Self::redo(rec, &mut tables, &mut scratch)?;
        }
        Ok(tables)
    }

    /// Replays one committed record into `tables`, recursing into batches.
    fn redo(
        rec: &LogRecord,
        tables: &mut BTreeMap<String, Table>,
        scratch: &mut OpStats,
    ) -> Result<()> {
        match rec {
            LogRecord::CreateTable { schema, .. } => {
                tables.insert(schema.name.clone(), Table::new(schema.clone())?);
            }
            LogRecord::DropTable { table, .. } => {
                tables.remove(table);
            }
            LogRecord::Insert {
                table, row_id, row, ..
            } => {
                let t = tables
                    .get_mut(table)
                    .ok_or_else(|| Error::Wal(format!("insert into unknown table {table}")))?;
                t.insert_with_id(*row_id, row.clone(), scratch)?;
            }
            LogRecord::Delete { table, row_id, .. } => {
                let t = tables
                    .get_mut(table)
                    .ok_or_else(|| Error::Wal(format!("delete from unknown table {table}")))?;
                t.remove_physical(*row_id, scratch)?;
            }
            LogRecord::Update {
                table,
                row_id,
                after,
                ..
            } => {
                let t = tables
                    .get_mut(table)
                    .ok_or_else(|| Error::Wal(format!("update of unknown table {table}")))?;
                t.restore(*row_id, after.clone())?;
            }
            LogRecord::Batch { changes, .. } => {
                for change in changes {
                    Self::redo(change, tables, scratch)?;
                }
            }
            LogRecord::Begin { .. }
            | LogRecord::Commit { .. }
            | LogRecord::Abort { .. }
            | LogRecord::Checkpoint { .. } => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(
            "jobs",
            vec![
                Column::not_null("job_id", DataType::Int),
                Column::new("state", DataType::Text),
            ],
        )
        .with_primary_key("job_id")
    }

    fn insert_rec(txn: u64, id: u64, job: i64, state: &str) -> LogRecord {
        LogRecord::Insert {
            txn: TxnId(txn),
            table: "jobs".into(),
            row_id: RowId(id),
            row: Row::new(vec![Value::Int(job), Value::Text(state.into())]),
        }
    }

    #[test]
    fn recovery_replays_only_committed_transactions() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);

        // Txn 2 inserts but never commits; txn 3 inserts and aborts.
        wal.append(LogRecord::Begin { txn: TxnId(2) }, &mut stats);
        wal.append(insert_rec(2, 2, 200, "idle"), &mut stats);
        wal.append(LogRecord::Begin { txn: TxnId(3) }, &mut stats);
        wal.append(insert_rec(3, 3, 300, "idle"), &mut stats);
        wal.append(LogRecord::Abort { txn: TxnId(3) }, &mut stats);

        let tables = wal.recover().unwrap();
        let jobs = tables.get("jobs").unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(jobs.get(RowId(1)).is_some());
        assert!(jobs.get(RowId(2)).is_none());
        assert!(jobs.get(RowId(3)).is_none());
    }

    #[test]
    fn recovery_applies_updates_and_deletes() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        wal.append(insert_rec(1, 2, 200, "idle"), &mut stats);
        wal.append(
            LogRecord::Update {
                txn: TxnId(1),
                table: "jobs".into(),
                row_id: RowId(1),
                before: Row::new(vec![Value::Int(100), Value::Text("idle".into())]),
                after: Row::new(vec![Value::Int(100), Value::Text("running".into())]),
            },
            &mut stats,
        );
        wal.append(
            LogRecord::Delete {
                txn: TxnId(1),
                table: "jobs".into(),
                row_id: RowId(2),
                before: Row::new(vec![Value::Int(200), Value::Text("idle".into())]),
            },
            &mut stats,
        );
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);

        let tables = wal.recover().unwrap();
        let jobs = tables.get("jobs").unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(
            jobs.get(RowId(1)).unwrap().get(1),
            &Value::Text("running".into())
        );
    }

    #[test]
    fn recovery_rejects_duplicate_committed_keys() {
        // A duplicated/corrupt log (two committed inserts sharing a primary
        // key) must fail recovery loudly, not rebuild a catalog that
        // violates its unique constraints.
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        wal.append(insert_rec(1, 2, 100, "held"), &mut stats);
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);
        assert!(matches!(wal.recover(), Err(Error::Constraint(_))));
    }

    #[test]
    fn checkpoint_truncates_and_recovery_uses_it() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);
        let before_len = wal.len();

        // Build the snapshot the checkpoint would capture.
        let recovered = wal.recover().unwrap();
        let snapshot: Vec<TableSnapshot> = recovered
            .values()
            .map(|t| TableSnapshot {
                schema: t.schema.clone(),
                rows: {
                    let mut s = OpStats::default();
                    t.scan(crate::mvcc::Snapshot::latest(), &mut s)
                        .map(|r| (r.id, r.row.clone()))
                        .collect()
                },
            })
            .collect();
        wal.checkpoint(snapshot, &mut stats);
        assert!(wal.len() < before_len);
        assert_eq!(stats.checkpoints, 1);

        // Post-checkpoint committed work still replays.
        wal.append(LogRecord::Begin { txn: TxnId(2) }, &mut stats);
        wal.append(insert_rec(2, 2, 200, "held"), &mut stats);
        wal.append(LogRecord::Commit { txn: TxnId(2) }, &mut stats);

        let tables = wal.recover().unwrap();
        let jobs = tables.get("jobs").unwrap();
        assert_eq!(jobs.len(), 2);
    }

    #[test]
    fn recovery_replays_batch_records() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(
            LogRecord::CreateTable {
                txn: TxnId(1),
                schema: schema(),
            },
            &mut stats,
        );
        // One append carries three inserts; a later nested batch updates one.
        wal.append(
            LogRecord::Batch {
                txn: TxnId(1),
                changes: vec![
                    insert_rec(1, 1, 100, "idle"),
                    insert_rec(1, 2, 200, "idle"),
                    insert_rec(1, 3, 300, "idle"),
                ],
            },
            &mut stats,
        );
        wal.append(LogRecord::Commit { txn: TxnId(1) }, &mut stats);
        // An uncommitted batch must not replay.
        wal.append(LogRecord::Begin { txn: TxnId(2) }, &mut stats);
        wal.append(
            LogRecord::Batch {
                txn: TxnId(2),
                changes: vec![insert_rec(2, 4, 400, "idle")],
            },
            &mut stats,
        );

        let tables = wal.recover().unwrap();
        let jobs = tables.get("jobs").unwrap();
        assert_eq!(jobs.len(), 3);
        assert!(jobs.get(RowId(4)).is_none());
        // The batch counted as a single WAL record.
        assert_eq!(wal.len(), 6);
        let batch = LogRecord::Batch {
            txn: TxnId(1),
            changes: vec![insert_rec(1, 1, 100, "idle")],
        };
        assert!(batch.approx_size() > insert_rec(1, 1, 100, "idle").approx_size());
        assert_eq!(batch.txn(), Some(TxnId(1)));
    }

    #[test]
    fn wal_counts_bytes() {
        let mut wal = Wal::new();
        let mut stats = OpStats::default();
        wal.append(LogRecord::Begin { txn: TxnId(1) }, &mut stats);
        wal.append(insert_rec(1, 1, 100, "idle"), &mut stats);
        assert!(wal.total_bytes() > 0);
        assert_eq!(stats.wal_records, 2);
        assert_eq!(stats.wal_bytes, wal.total_bytes());
    }
}
