//! Per-statement resource governance: deadlines, cooperative cancellation
//! and row/byte budgets.
//!
//! The paper's engine must stay up and fair while serving thousands of
//! machines: a runaway `SELECT` may not pin a catalog guard or a worker
//! thread indefinitely, and a huge result set may not exhaust server memory.
//! [`Governance`] declares the limits a caller wants for its statements;
//! [`Governor`] is the armed, per-statement state the executor consults:
//!
//! * **Deadline / cancellation** — scan, filter, join, aggregate and batch
//!   loops call [`Governor::tick`] once per row processed. Every
//!   `check_interval` rows (default [`DEFAULT_CHECK_INTERVAL`]) the governor
//!   consults the clock and the optional cancellation token and bails with a
//!   statement-deadline [`Error::Timeout`] (class `Logic`) — so a statement
//!   never exceeds its deadline by more than one check interval of work.
//! * **Budgets** — [`Governor::charge_row`] is called once per *materialized*
//!   result row, before any response page is built. Exceeding `max_rows` or
//!   `max_bytes` cancels the statement with [`Error::ResourceExhausted`].
//! * **Disarmed cost** — when no limit is set the governor is disarmed and
//!   both entry points reduce to a single predictable branch, keeping the
//!   prepared-point-select hot path unaffected (proven by the
//!   `governance_overhead` bench).
//!
//! Lock waiting is governed here too: [`Governance::lock_wait`] bounds how
//! long a write statement waits for a conflicted table lock before giving up
//! with a retryable lock-wait [`Error::Timeout`] (see
//! [`Database`](crate::db::Database)).

use crate::error::{Error, Result};
use crate::tuple::Row;
use crate::value::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default number of rows processed between deadline/cancellation checks.
///
/// The interval bounds both the disarmed overhead (one branch per row) and
/// the cancellation latency (one clock read per interval; a statement can
/// overshoot its deadline by at most one interval of row work).
pub const DEFAULT_CHECK_INTERVAL: u32 = 1024;

/// Declarative per-statement limits. `Default` (and [`Governance::NONE`])
/// sets no limit at all — the zero-overhead configuration.
///
/// A `Governance` belongs to a [`Session`](crate::Session), a wire
/// connection, or is passed explicitly to the governed `Database` entry
/// points; a fresh [`Governor`] is armed from it for every statement.
#[derive(Debug, Clone, Default)]
pub struct Governance {
    /// Wall-clock budget for one statement. Expiry surfaces a
    /// statement-deadline [`Error::Timeout`] (class `Logic`).
    pub deadline: Option<Duration>,
    /// Maximum result rows materialized by one statement.
    pub max_rows: Option<u64>,
    /// Maximum approximate result bytes materialized by one statement.
    pub max_bytes: Option<u64>,
    /// Bound on how long a write statement waits for a conflicted table
    /// lock before failing with a retryable lock-wait [`Error::Timeout`].
    /// `None` uses the database default
    /// ([`Database::set_lock_wait_timeout`](crate::db::Database::set_lock_wait_timeout)).
    pub lock_wait: Option<Duration>,
    /// Cooperative cancellation token: set it from any thread and the
    /// statement bails at its next row-check boundary.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Rows between deadline/cancellation checks; `None` means
    /// [`DEFAULT_CHECK_INTERVAL`]. Tests use small intervals to exercise
    /// every check boundary.
    pub check_interval: Option<u32>,
}

impl Governance {
    /// The no-limits configuration used by the ungoverned public API.
    pub const NONE: Governance = Governance {
        deadline: None,
        max_rows: None,
        max_bytes: None,
        lock_wait: None,
        cancel: None,
        check_interval: None,
    };

    /// True when no statement-scoped limit is set (lock-wait bounds are
    /// enforced at the lock table, not by the armed governor).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_rows.is_none()
            && self.max_bytes.is_none()
            && self.cancel.is_none()
    }
}

/// Armed, running cancellation/budget state for a single statement.
///
/// Obtained from [`Governor::arm`]; threaded by the database through every
/// executor loop for the statement's duration.
#[derive(Debug)]
pub struct Governor {
    armed: bool,
    countdown: u32,
    interval: u32,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    max_rows: u64,
    max_bytes: u64,
    rows: u64,
    bytes: u64,
}

impl Governor {
    /// A disarmed governor: every check is a single false branch.
    pub fn disarmed() -> Governor {
        Governor {
            armed: false,
            countdown: u32::MAX,
            interval: u32::MAX,
            deadline: None,
            cancel: None,
            max_rows: u64::MAX,
            max_bytes: u64::MAX,
            rows: 0,
            bytes: 0,
        }
    }

    /// Arms a governor for one statement: the deadline clock starts now.
    pub fn arm(gov: &Governance) -> Governor {
        if gov.is_unlimited() {
            return Governor::disarmed();
        }
        let interval = gov.check_interval.unwrap_or(DEFAULT_CHECK_INTERVAL).max(1);
        Governor {
            armed: true,
            countdown: interval,
            interval,
            deadline: gov.deadline.map(|d| Instant::now() + d),
            cancel: gov.cancel.clone(),
            max_rows: gov.max_rows.unwrap_or(u64::MAX),
            max_bytes: gov.max_bytes.unwrap_or(u64::MAX),
            rows: 0,
            bytes: 0,
        }
    }

    /// True when some limit is armed (lets callers skip work — e.g. row
    /// sizing — that only matters to an armed governor).
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// The cancellation point: called once per row processed by scan,
    /// filter, join, aggregate and batch loops. Consults the clock and the
    /// cancellation token every `check_interval` calls; disarmed it is one
    /// branch.
    #[inline]
    pub fn tick(&mut self) -> Result<()> {
        if !self.armed {
            return Ok(());
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.interval;
            self.check_now()
        } else {
            Ok(())
        }
    }

    /// Forces a deadline/cancellation check regardless of the countdown —
    /// used at phase boundaries (before a sort, between batch items).
    pub fn check_now(&mut self) -> Result<()> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(Error::statement_timeout("statement cancelled by caller"));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Error::statement_timeout(
                    "statement deadline expired mid-execution",
                ));
            }
        }
        Ok(())
    }

    /// Charges one materialized result row against the budgets. `size` is
    /// only evaluated when armed, so the disarmed path never sizes rows.
    #[inline]
    pub fn charge_row(&mut self, size: impl FnOnce() -> u64) -> Result<()> {
        if !self.armed {
            return Ok(());
        }
        self.rows += 1;
        if self.rows > self.max_rows {
            // A statement that is over-budget and past its deadline reports
            // the deadline — budget errors must not mask an expired clock
            // just because a streaming path charges rows as it scans.
            self.check_now()?;
            return Err(Error::resource_exhausted(format!(
                "statement materialized more than {} rows",
                self.max_rows
            )));
        }
        self.bytes = self.bytes.saturating_add(size());
        if self.bytes > self.max_bytes {
            self.check_now()?;
            return Err(Error::resource_exhausted(format!(
                "statement result exceeds {} bytes",
                self.max_bytes
            )));
        }
        Ok(())
    }

    /// The remaining time before this governor's deadline, if one is armed.
    /// `Some(Duration::ZERO)` when already past due.
    pub fn time_left(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Approximate in-memory size of a result row, used for `max_bytes`
/// accounting: the per-row overhead plus each value's payload.
pub fn approx_row_bytes(row: &Row) -> u64 {
    let mut bytes = std::mem::size_of::<Row>() as u64;
    for value in &row.values {
        bytes += std::mem::size_of::<Value>() as u64;
        if let Value::Text(s) = value {
            bytes += s.len() as u64;
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorClass;

    #[test]
    fn disarmed_governor_never_trips() {
        let mut g = Governor::arm(&Governance::NONE);
        assert!(!g.armed());
        for _ in 0..100_000 {
            g.tick().unwrap();
        }
        g.charge_row(|| u64::MAX).unwrap();
        assert_eq!(g.time_left(), None);
    }

    #[test]
    fn expired_deadline_trips_at_the_check_boundary() {
        let mut g = Governor::arm(&Governance {
            deadline: Some(Duration::ZERO),
            check_interval: Some(4),
            ..Governance::default()
        });
        // The first three ticks are between check boundaries and succeed.
        for _ in 0..3 {
            g.tick().unwrap();
        }
        let err = g.tick().unwrap_err();
        assert!(matches!(err, Error::Timeout { .. }), "{err}");
        assert_eq!(err.class(), ErrorClass::Logic);
    }

    #[test]
    fn cancellation_token_trips_cooperatively() {
        let cancel = Arc::new(AtomicBool::new(false));
        let mut g = Governor::arm(&Governance {
            cancel: Some(Arc::clone(&cancel)),
            check_interval: Some(1),
            ..Governance::default()
        });
        g.tick().unwrap();
        cancel.store(true, Ordering::Relaxed);
        assert!(g.tick().is_err());
    }

    #[test]
    fn row_budget_trips_exactly_past_the_cap() {
        let mut g = Governor::arm(&Governance {
            max_rows: Some(3),
            ..Governance::default()
        });
        for _ in 0..3 {
            g.charge_row(|| 1).unwrap();
        }
        let err = g.charge_row(|| 1).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
        assert_eq!(err.class(), ErrorClass::Logic);
    }

    #[test]
    fn byte_budget_counts_approximate_row_sizes() {
        let row = Row::new(vec![Value::Int(1), Value::Text("hello".into())]);
        let size = approx_row_bytes(&row);
        assert!(size > 5, "payload plus overhead: {size}");
        let mut g = Governor::arm(&Governance {
            max_bytes: Some(size),
            ..Governance::default()
        });
        g.charge_row(|| size).unwrap();
        assert!(g.charge_row(|| size).is_err());
    }

    #[test]
    fn time_left_saturates_at_zero() {
        let g = Governor::arm(&Governance {
            deadline: Some(Duration::ZERO),
            ..Governance::default()
        });
        assert_eq!(g.time_left(), Some(Duration::ZERO));
        let g = Governor::arm(&Governance {
            deadline: Some(Duration::from_secs(3600)),
            ..Governance::default()
        });
        assert!(g.time_left().unwrap() > Duration::from_secs(3000));
    }
}
