//! Virtual system tables: the observability state rendered as relational data.
//!
//! Nothing here is stored. When a `SELECT` names a `rel_*` table that no
//! real table shadows, the statement dispatcher synthesizes a throwaway
//! [`Table`] from the current observability state and runs the ordinary
//! select executor against it — filters, projections, joins between system
//! tables, `ORDER BY`, aggregates and `LIMIT` all work unchanged, and the
//! wire protocol needs no new message kinds. Synthesis cost is proportional
//! to the table's size (a few dozen rows), paid only by monitoring queries.
//!
//! All durations are reported in microseconds as `DOUBLE` columns: big
//! enough to never overflow, small enough to read at a glance.

use crate::schema::{Column, Schema};
use crate::stats::OpStats;
use crate::table::Table;
use crate::value::{DataType, Value};
use std::sync::Arc;

use super::profile::StmtProfileSnapshot;
use super::ring::{Event, SlowQueryEntry};
use super::Histograms;

/// Rows-per-table ceiling nothing here approaches; inserts into a synthesized
/// table cannot fail on capacity, so builders can `expect` them.
const BUILD_MSG: &str = "system table synthesis cannot fail";

fn nanos_to_us(nanos: u64) -> Value {
    Value::Double(nanos as f64 / 1_000.0)
}

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn make_table(name: &str, columns: Vec<Column>, rows: Vec<Vec<Value>>) -> Table {
    let mut table = Table::new(Schema::new(name, columns)).expect(BUILD_MSG);
    let mut scratch = OpStats::default();
    for row in rows {
        table
            .insert(row, crate::mvcc::COMMITTED_TXN, &mut scratch)
            .expect(BUILD_MSG);
    }
    table
}

/// `rel_stats(name TEXT, kind TEXT, value INT)` — every engine counter and
/// gauge from [`OpStats`], one row each, in declaration order.
pub fn stats_table(stats: &OpStats) -> Table {
    let rows = stats
        .fields()
        .into_iter()
        .map(|(name, value)| {
            let kind = if OpStats::is_gauge(name) { "gauge" } else { "counter" };
            vec![
                Value::Text(Arc::from(name)),
                Value::Text(Arc::from(kind)),
                int(value),
            ]
        })
        .collect();
    make_table(
        "rel_stats",
        vec![
            Column::not_null("name", DataType::Text),
            Column::not_null("kind", DataType::Text),
            Column::not_null("value", DataType::Int),
        ],
        rows,
    )
}

/// `rel_histograms(name TEXT, count INT, p50_us, p95_us, p99_us, max_us,
/// mean_us DOUBLE)` — one row per engine latency histogram. Quantile columns
/// are NULL while a histogram is empty.
pub fn histograms_table(histograms: &Histograms) -> Table {
    let rows = histograms
        .named()
        .into_iter()
        .map(|(name, hist)| {
            let snap = hist.snapshot();
            let quant = |q: f64| match snap.quantile(q) {
                Some(nanos) => nanos_to_us(nanos),
                None => Value::Null,
            };
            vec![
                Value::Text(Arc::from(name)),
                int(snap.count()),
                quant(0.50),
                quant(0.95),
                quant(0.99),
                if snap.count() == 0 { Value::Null } else { nanos_to_us(snap.max_nanos()) },
                match snap.mean_nanos() {
                    Some(mean) => Value::Double(mean / 1_000.0),
                    None => Value::Null,
                },
            ]
        })
        .collect();
    make_table(
        "rel_histograms",
        vec![
            Column::not_null("name", DataType::Text),
            Column::not_null("count", DataType::Int),
            Column::new("p50_us", DataType::Double),
            Column::new("p95_us", DataType::Double),
            Column::new("p99_us", DataType::Double),
            Column::new("max_us", DataType::Double),
            Column::new("mean_us", DataType::Double),
        ],
        rows,
    )
}

/// `rel_table_stats(table_name TEXT, column_name TEXT, row_count INT,
/// distinct_count INT, null_count INT, min_value TEXT, max_value TEXT,
/// analyzed_version INT, stale INT)` — one row per column of every
/// `ANALYZE`d table, in catalog order. `stale` is 1 when the table has been
/// physically modified since collection. Unanalyzed tables have no rows
/// here.
pub fn table_stats_table<'a>(
    tables: impl Iterator<Item = (&'a str, &'a Table)>,
) -> Table {
    let mut rows = Vec::new();
    for (name, table) in tables {
        let Some(stats) = table.table_stats() else { continue };
        let stale = stats.version != table.version();
        for cs in &stats.columns {
            let render = |v: &Value| match v {
                Value::Null => Value::Null,
                other => Value::Text(Arc::from(other.to_string())),
            };
            rows.push(vec![
                Value::Text(Arc::from(name)),
                Value::Text(Arc::from(cs.name.as_str())),
                int(stats.rows as u64),
                int(cs.distinct as u64),
                int(cs.null_count as u64),
                render(&cs.min),
                render(&cs.max),
                int(stats.version),
                Value::Int(i64::from(stale)),
            ]);
        }
    }
    make_table(
        "rel_table_stats",
        vec![
            Column::not_null("table_name", DataType::Text),
            Column::not_null("column_name", DataType::Text),
            Column::not_null("row_count", DataType::Int),
            Column::not_null("distinct_count", DataType::Int),
            Column::not_null("null_count", DataType::Int),
            Column::new("min_value", DataType::Text),
            Column::new("max_value", DataType::Text),
            Column::not_null("analyzed_version", DataType::Int),
            Column::not_null("stale", DataType::Int),
        ],
        rows,
    )
}

/// `rel_statements(sql TEXT, kind TEXT, calls INT, total_rows INT, total_us,
/// mean_us, max_us DOUBLE)` — one row per live statement-cache entry,
/// slowest cumulative time first. Bounded by the statement-cache LRU.
pub fn statements_table(mut profiles: Vec<StmtProfileSnapshot>) -> Table {
    profiles.sort_by(|a, b| {
        b.total_nanos
            .cmp(&a.total_nanos)
            .then_with(|| a.sql.cmp(&b.sql))
    });
    let rows = profiles
        .into_iter()
        .map(|p| {
            vec![
                Value::Text(Arc::clone(&p.sql)),
                Value::Text(Arc::from(p.kind.name())),
                int(p.calls),
                int(p.rows),
                nanos_to_us(p.total_nanos),
                Value::Double(p.mean_nanos() / 1_000.0),
                nanos_to_us(p.max_nanos),
            ]
        })
        .collect();
    make_table(
        "rel_statements",
        vec![
            Column::not_null("sql", DataType::Text),
            Column::not_null("kind", DataType::Text),
            Column::not_null("calls", DataType::Int),
            Column::not_null("total_rows", DataType::Int),
            Column::not_null("total_us", DataType::Double),
            Column::not_null("mean_us", DataType::Double),
            Column::not_null("max_us", DataType::Double),
        ],
        rows,
    )
}

/// `rel_slow_queries(seq INT, sql TEXT, kind TEXT, duration_us DOUBLE,
/// rows INT, lock_wait_us, fsync_us, eviction_us DOUBLE)` — the slow-query
/// ring, oldest first. `sql` is NULL for programmatic (AST) execution.
pub fn slow_queries_table(entries: Vec<SlowQueryEntry>) -> Table {
    let rows = entries
        .into_iter()
        .map(|e| {
            vec![
                int(e.seq),
                match e.sql {
                    Some(sql) => Value::Text(sql),
                    None => Value::Null,
                },
                Value::Text(Arc::from(e.kind.name())),
                nanos_to_us(e.duration_nanos),
                int(e.rows),
                nanos_to_us(e.lock_wait_nanos),
                nanos_to_us(e.fsync_nanos),
                nanos_to_us(e.eviction_nanos),
            ]
        })
        .collect();
    make_table(
        "rel_slow_queries",
        vec![
            Column::not_null("seq", DataType::Int),
            Column::new("sql", DataType::Text),
            Column::not_null("kind", DataType::Text),
            Column::not_null("duration_us", DataType::Double),
            Column::not_null("rows", DataType::Int),
            Column::not_null("lock_wait_us", DataType::Double),
            Column::not_null("fsync_us", DataType::Double),
            Column::not_null("eviction_us", DataType::Double),
        ],
        rows,
    )
}

/// `rel_events(seq INT, kind TEXT, detail TEXT, duration_us DOUBLE)` — the
/// coarse-span event ring, oldest first.
pub fn events_table(events: Vec<Event>) -> Table {
    let rows = events
        .into_iter()
        .map(|e| {
            vec![
                int(e.seq),
                Value::Text(Arc::from(e.kind)),
                Value::Text(Arc::from(e.detail)),
                nanos_to_us(e.duration_nanos),
            ]
        })
        .collect();
    make_table(
        "rel_events",
        vec![
            Column::not_null("seq", DataType::Int),
            Column::not_null("kind", DataType::Text),
            Column::not_null("detail", DataType::Text),
            Column::not_null("duration_us", DataType::Double),
        ],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::super::{Observability, StmtKind};
    use super::*;
    use std::sync::Arc;

    #[test]
    fn stats_table_has_one_row_per_field() {
        let stats = OpStats {
            rows_read: 42,
            ..Default::default()
        };
        let table = stats_table(&stats);
        assert_eq!(table.schema.name, "rel_stats");
        let expected = stats.fields().len();
        assert_eq!(table.len(), expected);
    }

    #[test]
    fn histograms_table_renders_quantiles() {
        let obs = Observability::default();
        for _ in 0..10 {
            obs.histograms.statement(StmtKind::Select).record(1_000);
        }
        let table = histograms_table(&obs.histograms);
        assert_eq!(table.len(), StmtKind::COUNT + 5);
    }

    #[test]
    fn statements_table_sorts_by_cumulative_time() {
        let fast = super::super::StmtProfile::new(Arc::from("fast"), StmtKind::Select);
        fast.record(10, 1);
        let slow = super::super::StmtProfile::new(Arc::from("slow"), StmtKind::Select);
        slow.record(10_000, 1);
        let table = statements_table(vec![fast.snapshot(), slow.snapshot()]);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn empty_rings_make_empty_tables() {
        assert_eq!(slow_queries_table(Vec::new()).len(), 0);
        assert_eq!(events_table(Vec::new()).len(), 0);
    }
}
