//! A cheap monotonic stopwatch for hot-path latency measurement.
//!
//! The source is `Instant` against a process-wide epoch: on Linux that is a
//! vDSO `clock_gettime(CLOCK_MONOTONIC)`, ~20–25 ns per read and stable
//! across cores and migrations.
//!
//! A raw `rdtsc` was measured as an alternative and rejected: on bare metal
//! it wins (~8 ns), but under the virtualised hosts this engine actually
//! runs on the TSC read can be trapped by the hypervisor, costing ~50 ns —
//! twice the vDSO path it was meant to beat — and silently, since nothing
//! distinguishes a fast TSC from a trapped one at compile time. The vDSO
//! clock is the faster choice everywhere it matters and never the
//! pathological one. This is a measurement clock, not a correctness clock;
//! its cost, not its precision, is the design constraint.

use std::time::Instant;

/// A started stopwatch. `Copy` so it can be captured before a fallible block
/// and read on every exit path.
///
/// The start point is the raw `Instant`, not a nanosecond offset from some
/// epoch: converting through an epoch would cost an extra shared-static load
/// and a full `Duration` subtraction on *both* ends of every measurement.
/// Storing the `Instant` keeps each end at exactly one clock read, and the
/// subtraction happens once, at stop time.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stopwatch_tracks_wall_time_within_tolerance() {
        let sw = Stopwatch::start();
        let wall = Instant::now();
        std::thread::sleep(Duration::from_millis(20));
        let measured = sw.elapsed_nanos();
        let actual = wall.elapsed().as_nanos() as u64;
        // Within 25% of wall time over a 20 ms sleep — loose enough for CI
        // jitter, tight enough to catch a broken epoch or unit mix-up.
        let lo = actual - actual / 4;
        let hi = actual + actual / 4;
        assert!(
            (lo..=hi).contains(&measured),
            "measured {measured} ns, wall {actual} ns"
        );
    }

    #[test]
    fn elapsed_is_monotone_and_cheap_to_start() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a, "elapsed must not go backwards: {a} then {b}");
    }
}
