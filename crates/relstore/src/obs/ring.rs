//! Fixed-capacity rings: the slow-query log and the coarse event log.
//!
//! Both are bounded `VecDeque`s behind a plain mutex — they are written on
//! the *slow* path by construction (a statement only reaches the slow log
//! after blowing a millisecond-scale threshold; events fire per checkpoint
//! or vacuum, not per statement), so a leaf mutex held for a push is cheap
//! and keeps the reader side trivial. The hot-path cost of a *disarmed*
//! slow-query log is one relaxed load and one compare.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use super::clock::Stopwatch;
use super::StmtKind;

/// Entries kept by the slow-query ring before the oldest is dropped.
pub const SLOW_LOG_CAPACITY: usize = 256;

/// Entries kept by the event ring before the oldest is dropped.
pub const EVENT_RING_CAPACITY: usize = 128;

/// One captured slow statement, with a breakdown of where the time went.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// Monotonic capture sequence number (gaps mean dropped entries — the
    /// ring only keeps the most recent [`SLOW_LOG_CAPACITY`]).
    pub seq: u64,
    /// The statement text, when the statement came in as SQL. Programmatic
    /// AST execution has no text and reports `None`.
    pub sql: Option<Arc<str>>,
    /// The statement kind.
    pub kind: StmtKind,
    /// Total execution time in nanoseconds (for autocommit writes this spans
    /// begin through commit, fsync included).
    pub duration_nanos: u64,
    /// Rows returned or affected.
    pub rows: u64,
    /// Nanoseconds of the duration spent waiting on table locks.
    pub lock_wait_nanos: u64,
    /// Nanoseconds of the duration spent in durable-log fsyncs.
    pub fsync_nanos: u64,
    /// Nanoseconds of the duration spent recycling buffer-pool frames.
    pub eviction_nanos: u64,
}

/// A bounded ring of the most recent statements that crossed the armed
/// threshold. Disarmed (the default) it costs one relaxed load per statement.
#[derive(Debug)]
pub struct SlowQueryLog {
    /// Threshold in nanoseconds; `u64::MAX` means disarmed, so the hot path
    /// is a single unconditional `duration >= threshold` compare.
    threshold_nanos: AtomicU64,
    entries: Mutex<VecDeque<SlowQueryEntry>>,
    next_seq: AtomicU64,
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        SlowQueryLog {
            threshold_nanos: AtomicU64::new(u64::MAX),
            entries: Mutex::new(VecDeque::new()),
            next_seq: AtomicU64::new(0),
        }
    }
}

impl SlowQueryLog {
    /// Arms the log at a threshold (`Some(Duration::ZERO)` captures every
    /// statement) or disarms it (`None`), dropping nothing already captured.
    pub fn set_threshold(&self, threshold: Option<Duration>) {
        let nanos = match threshold {
            // Saturate just under the disarmed sentinel.
            Some(d) => u64::try_from(d.as_nanos()).unwrap_or(u64::MAX - 1).min(u64::MAX - 1),
            None => u64::MAX,
        };
        self.threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The armed threshold, or `None` while disarmed.
    pub fn threshold(&self) -> Option<Duration> {
        match self.threshold_nanos.load(Ordering::Relaxed) {
            u64::MAX => None,
            nanos => Some(Duration::from_nanos(nanos)),
        }
    }

    /// Whether a statement of this duration should be captured. This is the
    /// entire hot-path cost of the slow-query log.
    #[inline]
    pub(crate) fn should_capture(&self, duration_nanos: u64) -> bool {
        duration_nanos >= self.threshold_nanos.load(Ordering::Relaxed)
    }

    /// Captures an entry, evicting the oldest beyond capacity.
    pub(crate) fn capture(&self, mut entry: SlowQueryEntry) {
        entry.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        if entries.len() == SLOW_LOG_CAPACITY {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// Copies the captured entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.entries.lock().iter().cloned().collect()
    }

    /// Drops all captured entries (the sequence keeps counting, so a monitor
    /// can still detect captures across a clear).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

/// One coarse engine event — a checkpoint, vacuum sweep, recovery, or
/// eviction storm — with its duration and a human-readable detail line.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic capture sequence number.
    pub seq: u64,
    /// Event kind tag, e.g. `"checkpoint"`, `"vacuum"`, `"recovery"`,
    /// `"eviction_storm"`.
    pub kind: &'static str,
    /// Human-readable phase/size breakdown.
    pub detail: String,
    /// Event duration in nanoseconds (0 for instantaneous marks).
    pub duration_nanos: u64,
}

/// A bounded ring of recent coarse engine spans.
#[derive(Debug, Default)]
pub struct EventRing {
    entries: Mutex<VecDeque<Event>>,
    next_seq: AtomicU64,
}

impl EventRing {
    /// Records an event with an explicit duration.
    pub(crate) fn record(&self, kind: &'static str, detail: String, duration_nanos: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        if entries.len() == EVENT_RING_CAPACITY {
            entries.pop_front();
        }
        entries.push_back(Event {
            seq,
            kind,
            detail,
            duration_nanos,
        });
    }

    /// Records an event whose duration is a running stopwatch.
    pub(crate) fn record_span(&self, kind: &'static str, detail: String, span: Stopwatch) {
        self.record(kind, detail, span.elapsed_nanos());
    }

    /// Copies the captured events, oldest first.
    pub fn entries(&self) -> Vec<Event> {
        self.entries.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(duration: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            seq: 0,
            sql: Some(Arc::from("SELECT 1")),
            kind: StmtKind::Select,
            duration_nanos: duration,
            rows: 1,
            lock_wait_nanos: 0,
            fsync_nanos: 0,
            eviction_nanos: 0,
        }
    }

    #[test]
    fn disarmed_log_captures_nothing() {
        let log = SlowQueryLog::default();
        assert_eq!(log.threshold(), None);
        assert!(!log.should_capture(u64::MAX - 1));
    }

    #[test]
    fn threshold_gates_capture() {
        let log = SlowQueryLog::default();
        log.set_threshold(Some(Duration::from_micros(10)));
        assert!(!log.should_capture(9_999));
        assert!(log.should_capture(10_000));
        log.set_threshold(Some(Duration::ZERO));
        assert!(log.should_capture(0), "zero threshold captures everything");
        log.set_threshold(None);
        assert!(!log.should_capture(u64::MAX - 1));
    }

    #[test]
    fn ring_keeps_the_most_recent_entries() {
        let log = SlowQueryLog::default();
        for i in 0..SLOW_LOG_CAPACITY as u64 + 10 {
            log.capture(entry(i));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), SLOW_LOG_CAPACITY);
        assert_eq!(entries.first().unwrap().seq, 10, "oldest were evicted");
        assert_eq!(
            entries.last().unwrap().seq,
            SLOW_LOG_CAPACITY as u64 + 9,
            "newest survives"
        );
        log.clear();
        assert!(log.entries().is_empty());
        log.capture(entry(1));
        assert_eq!(
            log.entries()[0].seq,
            SLOW_LOG_CAPACITY as u64 + 10,
            "sequence numbering continues across clear"
        );
    }

    #[test]
    fn event_ring_bounds_and_orders() {
        let ring = EventRing::default();
        for _ in 0..EVENT_RING_CAPACITY + 5 {
            ring.record("vacuum", "pruned 0 version(s)".to_string(), 123);
        }
        let events = ring.entries();
        assert_eq!(events.len(), EVENT_RING_CAPACITY);
        assert_eq!(events.first().unwrap().seq, 5);
        assert_eq!(events.last().unwrap().kind, "vacuum");
    }
}
