//! Pay-for-what-you-arm engine observability.
//!
//! The paper's thesis is that middleware state belongs in a relational engine
//! *because a relational engine can be inspected with queries*. This module
//! turns that lens on the engine itself: every statement's latency lands in a
//! lock-free [log-bucketed histogram](hist::LatencyHistogram), every prepared
//! statement carries a [cumulative profile](profile::StmtProfile), statements
//! that cross an armed threshold are captured in a [slow-query
//! ring](ring::SlowQueryLog) with a wait breakdown, and coarse engine spans
//! (checkpoints, vacuum sweeps, recovery, eviction storms) land in an [event
//! ring](ring::EventRing). All of it is served back through the normal SELECT
//! path as [virtual system tables](systables) — `rel_stats`,
//! `rel_histograms`, `rel_statements`, `rel_slow_queries`, `rel_events` — so
//! the embedded API, the wire protocol, and the SQL console monitor the
//! engine with plain SQL and zero new protocol surface.
//!
//! The cost discipline: always-on instrumentation is one [stopwatch
//! pair](clock::Stopwatch) (one vDSO `clock_gettime` per end) plus a handful of
//! relaxed atomic adds per statement; everything more expensive — the slow
//! log mutex, event formatting — only runs once a threshold armed by the
//! operator has already been blown. The `obs_overhead` bench in the `bench`
//! crate holds the fully-instrumented prepared point select inside its
//! acceptance band to keep this honest.

pub mod clock;
pub mod hist;
pub mod profile;
pub mod ring;
pub mod systables;

pub use clock::Stopwatch;
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use profile::{StmtProfile, StmtProfileSnapshot};
pub use ring::{Event, EventRing, SlowQueryEntry, SlowQueryLog};

use crate::sql::ast::Statement;
use crate::stats::OpStats;
use std::sync::Arc;

/// Classification of a statement for per-kind latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// `SELECT` (including system-table reads).
    Select = 0,
    /// `INSERT`.
    Insert = 1,
    /// `UPDATE`.
    Update = 2,
    /// `DELETE`.
    Delete = 3,
    /// Schema changes: `CREATE TABLE` / `CREATE INDEX` / `DROP TABLE`.
    Ddl = 4,
}

impl StmtKind {
    /// Number of kinds (and per-kind histograms).
    pub const COUNT: usize = 5;

    /// Classifies a parsed statement. Transaction control (`BEGIN` /
    /// `COMMIT` / `ROLLBACK`) classifies as DDL for profile bookkeeping but
    /// is never executed through the statement path, so it records nothing.
    pub fn of(stmt: &Statement) -> StmtKind {
        match stmt {
            // EXPLAIN is a read: even EXPLAIN ANALYZE only executes a SELECT.
            Statement::Select(_) | Statement::Explain { .. } => StmtKind::Select,
            Statement::Insert(_) => StmtKind::Insert,
            Statement::Update(_) => StmtKind::Update,
            Statement::Delete(_) => StmtKind::Delete,
            _ => StmtKind::Ddl,
        }
    }

    /// Lower-case kind name, e.g. `"select"`.
    pub fn name(self) -> &'static str {
        match self {
            StmtKind::Select => "select",
            StmtKind::Insert => "insert",
            StmtKind::Update => "update",
            StmtKind::Delete => "delete",
            StmtKind::Ddl => "ddl",
        }
    }

    /// Histogram row name in `rel_histograms`, e.g. `"stmt.select"`.
    pub fn hist_name(self) -> &'static str {
        match self {
            StmtKind::Select => "stmt.select",
            StmtKind::Insert => "stmt.insert",
            StmtKind::Update => "stmt.update",
            StmtKind::Delete => "stmt.delete",
            StmtKind::Ddl => "stmt.ddl",
        }
    }
}

/// The fixed set of engine latency histograms.
#[derive(Debug, Default)]
pub struct Histograms {
    /// Per-statement-kind execution time, indexed by [`StmtKind`].
    pub statements: [LatencyHistogram; StmtKind::COUNT],
    /// Durable-log fsync duration (device sync and checkpoint rotation).
    pub wal_fsync: LatencyHistogram,
    /// Bounded table-lock wait duration (contended acquisitions only).
    pub lock_wait: LatencyHistogram,
    /// Durable commit duration (WAL commit record + sync), recorded only for
    /// transactions that wrote.
    pub commit: LatencyHistogram,
    /// Full checkpoint duration (snapshot + flush + rotate + vacuum).
    pub checkpoint: LatencyHistogram,
    /// Vacuum sweep duration (full sweeps and targeted per-table sweeps).
    pub vacuum: LatencyHistogram,
}

impl Histograms {
    /// The execution-time histogram for one statement kind.
    #[inline]
    pub fn statement(&self, kind: StmtKind) -> &LatencyHistogram {
        &self.statements[kind as usize]
    }

    /// Every histogram with its `rel_histograms` row name.
    pub fn named(&self) -> Vec<(&'static str, &LatencyHistogram)> {
        let mut out = Vec::with_capacity(StmtKind::COUNT + 5);
        for kind in [
            StmtKind::Select,
            StmtKind::Insert,
            StmtKind::Update,
            StmtKind::Delete,
            StmtKind::Ddl,
        ] {
            out.push((kind.hist_name(), self.statement(kind)));
        }
        out.push(("wal.fsync", &self.wal_fsync));
        out.push(("lock.wait", &self.lock_wait));
        out.push(("txn.commit", &self.commit));
        out.push(("checkpoint", &self.checkpoint));
        out.push(("vacuum", &self.vacuum));
        out
    }

    /// Total samples across the per-statement-kind histograms. Once writers
    /// quiesce this equals the `statements_executed` counter — the chaos
    /// soak asserts exactly that.
    pub fn statement_total(&self) -> u64 {
        self.statements.iter().map(LatencyHistogram::count).sum()
    }
}

/// Where a statement's time went, for the slow-query breakdown and the
/// eviction-storm detector. Built from the statement's private [`OpStats`]
/// delta, so it costs nothing to produce.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaitBreakdown {
    /// Nanoseconds blocked on table locks.
    pub lock_wait_nanos: u64,
    /// Nanoseconds inside durable-log fsyncs.
    pub fsync_nanos: u64,
    /// Nanoseconds recycling buffer-pool frames.
    pub eviction_nanos: u64,
    /// Buffer-pool frames recycled.
    pub evictions: u64,
}

impl WaitBreakdown {
    /// The breakdown of a whole statement-local delta.
    pub fn of(local: &OpStats) -> WaitBreakdown {
        WaitBreakdown {
            lock_wait_nanos: local.lock_wait_nanos,
            fsync_nanos: local.wal_fsync_nanos,
            eviction_nanos: local.eviction_nanos,
            evictions: local.buffer_evictions,
        }
    }

    /// Component-wise `self - earlier`: the waits one batch binding added to
    /// a delta shared by the whole batch.
    pub fn delta_since(&self, earlier: &WaitBreakdown) -> WaitBreakdown {
        WaitBreakdown {
            lock_wait_nanos: self.lock_wait_nanos.saturating_sub(earlier.lock_wait_nanos),
            fsync_nanos: self.fsync_nanos.saturating_sub(earlier.fsync_nanos),
            eviction_nanos: self.eviction_nanos.saturating_sub(earlier.eviction_nanos),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// A single statement recycling this many buffer-pool frames is recorded as
/// an `eviction_storm` event: the working set no longer fits the pool.
pub const EVICTION_STORM_THRESHOLD: u64 = 64;

/// The engine's observability state: histograms, slow-query log, event ring.
/// One per [`Database`](crate::Database), shared via `Arc` with the WAL (for
/// fsync spans) and readable at any time without pausing writers.
#[derive(Debug, Default)]
pub struct Observability {
    /// Latency histograms.
    pub histograms: Histograms,
    /// The slow-query ring (disarmed until a threshold is set).
    pub slow_log: SlowQueryLog,
    /// Coarse engine spans: checkpoints, vacuums, recovery, eviction storms.
    pub events: EventRing,
}

impl Observability {
    /// Records a finished statement: one histogram sample, the optional
    /// prepared-statement profile, the slow-query check, and eviction-storm
    /// detection. `local` is the statement's private counter delta; the
    /// `slow_queries` counter is bumped in it when the statement is captured.
    #[inline]
    pub(crate) fn record_statement(
        &self,
        kind: StmtKind,
        nanos: u64,
        rows: u64,
        profile: Option<&Arc<StmtProfile>>,
        wait: WaitBreakdown,
        local: &mut OpStats,
    ) {
        self.histograms.statement(kind).record(nanos);
        if let Some(profile) = profile {
            profile.record(nanos, rows);
        }
        if self.slow_log.should_capture(nanos) {
            local.slow_queries += 1;
            self.slow_log.capture(SlowQueryEntry {
                seq: 0,
                sql: profile.map(|p| Arc::clone(p.sql())),
                kind,
                duration_nanos: nanos,
                rows,
                lock_wait_nanos: wait.lock_wait_nanos,
                fsync_nanos: wait.fsync_nanos,
                eviction_nanos: wait.eviction_nanos,
            });
        }
        if wait.evictions >= EVICTION_STORM_THRESHOLD {
            self.events.record(
                "eviction_storm",
                format!(
                    "one {} statement recycled {} buffer frame(s)",
                    kind.name(),
                    wait.evictions
                ),
                wait.eviction_nanos,
            );
        }
    }
}

/// Whether a (lower-cased) table name is served by the observability layer
/// when no real table shadows it. The `rel_` prefix check keeps this to a
/// single cheap comparison for ordinary table names.
#[inline]
pub fn is_system_table(lower_name: &str) -> bool {
    lower_name.starts_with("rel_")
        && matches!(
            lower_name,
            "rel_stats"
                | "rel_histograms"
                | "rel_statements"
                | "rel_slow_queries"
                | "rel_events"
                | "rel_table_stats"
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_kinds_classify_and_name() {
        use crate::sql::parse;
        let select = parse("SELECT * FROM t").unwrap();
        assert_eq!(StmtKind::of(&select), StmtKind::Select);
        let insert = parse("INSERT INTO t VALUES (1)").unwrap();
        assert_eq!(StmtKind::of(&insert), StmtKind::Insert);
        let ddl = parse("DROP TABLE t").unwrap();
        assert_eq!(StmtKind::of(&ddl), StmtKind::Ddl);
        assert_eq!(StmtKind::Select.hist_name(), "stmt.select");
        assert_eq!(StmtKind::Ddl.name(), "ddl");
    }

    #[test]
    fn record_statement_feeds_histogram_profile_and_slow_log() {
        let obs = Observability::default();
        let profile = Arc::new(StmtProfile::new(Arc::from("SELECT 1"), StmtKind::Select));
        let mut local = OpStats::default();

        obs.record_statement(
            StmtKind::Select,
            5_000,
            3,
            Some(&profile),
            WaitBreakdown::default(),
            &mut local,
        );
        assert_eq!(obs.histograms.statement(StmtKind::Select).count(), 1);
        assert_eq!(obs.histograms.statement_total(), 1);
        assert_eq!(profile.snapshot().calls, 1);
        assert_eq!(profile.snapshot().rows, 3);
        assert!(obs.slow_log.entries().is_empty(), "disarmed log captures nothing");
        assert_eq!(local.slow_queries, 0);

        obs.slow_log
            .set_threshold(Some(std::time::Duration::from_nanos(1_000)));
        obs.record_statement(
            StmtKind::Select,
            5_000,
            3,
            Some(&profile),
            WaitBreakdown {
                lock_wait_nanos: 200,
                ..Default::default()
            },
            &mut local,
        );
        let captured = obs.slow_log.entries();
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].duration_nanos, 5_000);
        assert_eq!(captured[0].lock_wait_nanos, 200);
        assert_eq!(captured[0].sql.as_deref(), Some("SELECT 1"));
        assert_eq!(local.slow_queries, 1);
    }

    #[test]
    fn eviction_storms_become_events() {
        let obs = Observability::default();
        let mut local = OpStats::default();
        obs.record_statement(
            StmtKind::Insert,
            1_000,
            1,
            None,
            WaitBreakdown {
                evictions: EVICTION_STORM_THRESHOLD,
                eviction_nanos: 777,
                ..Default::default()
            },
            &mut local,
        );
        let events = obs.events.entries();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "eviction_storm");
        assert_eq!(events[0].duration_nanos, 777);
    }

    #[test]
    fn system_table_names() {
        for name in [
            "rel_stats",
            "rel_histograms",
            "rel_statements",
            "rel_slow_queries",
            "rel_events",
        ] {
            assert!(is_system_table(name), "{name}");
        }
        assert!(!is_system_table("rel_other"));
        assert!(!is_system_table("jobs"));
        assert!(!is_system_table(""));
    }
}
