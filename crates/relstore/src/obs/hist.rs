//! Lock-free log-bucketed latency histograms.
//!
//! A histogram is 64 relaxed atomic counters, one per power-of-two bucket:
//! bucket `i` covers durations in `[2^i, 2^(i+1))` nanoseconds (bucket 0 also
//! absorbs 0 ns). Recording a sample is one `leading_zeros` and one relaxed
//! `fetch_add`; the exact maximum is kept with a load-then-`fetch_max` that
//! skips the RMW entirely unless the sample is a new high-water mark. There
//! is no lock anywhere, so any number of sessions can record concurrently
//! while a monitor reads quantiles.
//!
//! Quantiles are estimated by walking the bucket counts to the target rank
//! and interpolating linearly inside the bucket. Because bucket counts are
//! exact, the estimate always lands inside the same power-of-two bucket as
//! the true order statistic — the error is bounded by one bucket width.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per bit position of a `u64` nanosecond duration.
pub const BUCKETS: usize = 64;

/// Returns the bucket index for a duration: the position of its highest set
/// bit, i.e. `floor(log2(nanos))`, with 0 ns mapping to bucket 0.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    (63 - (nanos | 1).leading_zeros()) as usize
}

/// Inclusive lower bound of a bucket in nanoseconds.
#[inline]
pub fn bucket_low(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << index
    }
}

/// Inclusive upper bound of a bucket in nanoseconds.
#[inline]
pub fn bucket_high(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

/// A lock-free latency histogram with power-of-two buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample: one relaxed `fetch_add`, plus a `fetch_max` only
    /// when the sample beats the current maximum.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        if nanos > self.max_nanos.load(Ordering::Relaxed) {
            self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        }
    }

    /// Total samples recorded. Relaxed sum: exact once writers quiesce, and
    /// never off by more than the statements in flight while they don't.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Copies the bucket counts and maximum into an immutable snapshot for
    /// quantile estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a histogram's state, cheap to query repeatedly.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    max_nanos: u64,
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Largest sample ever recorded, in nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, or `None`
    /// if the histogram is empty. The estimate lies in the same
    /// power-of-two bucket as the true order statistic: the rank walk is
    /// exact, only the position inside the bucket is interpolated.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the order statistic we want.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        // The top rank is the maximum, which is tracked exactly.
        if target == count {
            return Some(self.max_nanos);
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lo = bucket_low(i);
                let hi = bucket_high(i);
                // Interpolate by rank position inside the bucket.
                let into = (target - seen - 1) as f64 / n as f64;
                let est = lo + ((hi - lo) as f64 * into) as u64;
                // The true maximum caps every quantile: never report an
                // estimate beyond a value that was actually observed.
                return Some(est.min(self.max_nanos.max(lo)));
            }
            seen += n;
        }
        Some(self.max_nanos)
    }

    /// Estimates the arithmetic mean in nanoseconds from bucket midpoints,
    /// or `None` if empty. Exact totals are deliberately not kept — that
    /// would cost a second hot-path RMW per sample.
    pub fn mean_nanos(&self) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| {
                let mid = (bucket_low(i) as f64 + bucket_high(i) as f64) / 2.0;
                mid * n as f64
            })
            .sum();
        Some(sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        for i in 1..64 {
            let boundary = 1u64 << i;
            assert_eq!(bucket_index(boundary), i, "2^{i} opens bucket {i}");
            assert_eq!(bucket_index(boundary - 1), i - 1, "2^{i}-1 closes bucket {}", i - 1);
        }
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_cover_u64_without_gaps() {
        assert_eq!(bucket_low(0), 0);
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "bucket {i} must abut bucket {}",
                i + 1
            );
        }
        assert_eq!(bucket_high(63), u64::MAX);
    }

    #[test]
    fn record_lands_in_the_right_bucket() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        h.record(1000); // bucket 9: [512, 1024)
        h.record(1024); // bucket 10
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.max_nanos(), 1024);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[9], 1);
        assert_eq!(snap.buckets[10], 1);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LatencyHistogram::default();
        // 100 samples at exactly 1 µs, 10 at 1 ms, 1 at 1 s.
        for _ in 0..100 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        h.record(1_000_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 111);

        let p50 = snap.quantile(0.50).unwrap();
        assert_eq!(bucket_index(p50), bucket_index(1_000), "p50 in the 1 µs bucket");
        let p95 = snap.quantile(0.95).unwrap();
        assert_eq!(bucket_index(p95), bucket_index(1_000_000), "p95 in the 1 ms bucket");
        let p100 = snap.quantile(1.0).unwrap();
        assert_eq!(p100, 1_000_000_000, "p100 is the exact maximum");
    }

    #[test]
    fn quantile_is_none_on_empty_and_capped_by_max() {
        let snap = LatencyHistogram::default().snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean_nanos(), None);

        let h = LatencyHistogram::default();
        h.record(600); // bucket 9 is [512, 1023]
        let snap = h.snapshot();
        // A single sample: every quantile must report a value no larger than
        // the one sample actually observed.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!(snap.quantile(q).unwrap() <= 600);
            assert!(snap.quantile(q).unwrap() >= 512);
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i * 7 + t);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn mean_estimate_tracks_bucket_scale() {
        let h = LatencyHistogram::default();
        for _ in 0..1000 {
            h.record(1_000);
        }
        let mean = h.snapshot().mean_nanos().unwrap();
        // All samples in bucket [512, 1023]; the midpoint estimate must stay
        // inside that bucket.
        assert!((512.0..1024.0).contains(&mean), "mean {mean}");
    }
}
