//! Per-statement execution profiles — a `pg_stat_statements` analogue.
//!
//! A [`StmtProfile`] is owned by the statement-cache entry for its SQL text
//! and shared (via `Arc`) with every [`Prepared`](crate::Prepared) handle for
//! that text, so recording an execution needs no lock and no hash lookup:
//! the handle already points at its profile. The profile table is therefore
//! bounded by the statement-cache LRU — when a cache entry is evicted its
//! profile leaves `rel_statements` with it, and a later re-prepare of the
//! same text starts a fresh profile. A `Prepared` handle that outlives the
//! eviction keeps recording into its (now unlisted) profile; the counts are
//! not lost, just no longer visible, which is the standard trade of an
//! LRU-bounded profile table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::StmtKind;

/// Lock-free cumulative execution counters for one normalized SQL text.
#[derive(Debug)]
pub struct StmtProfile {
    sql: Arc<str>,
    kind: StmtKind,
    calls: AtomicU64,
    rows: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl StmtProfile {
    /// Creates an empty profile for a statement text.
    pub fn new(sql: Arc<str>, kind: StmtKind) -> Self {
        StmtProfile {
            sql,
            kind,
            calls: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// The statement text this profile aggregates (as prepared, so bound
    /// parameters are already normalized to `?`).
    pub fn sql(&self) -> &Arc<str> {
        &self.sql
    }

    /// The statement kind (select/insert/update/delete/ddl).
    pub fn kind(&self) -> StmtKind {
        self.kind
    }

    /// Records one execution: relaxed adds for calls/time, a rows add only
    /// when rows were touched, and a `fetch_max` only on a new maximum.
    #[inline]
    pub(crate) fn record(&self, nanos: u64, rows: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        if rows != 0 {
            self.rows.fetch_add(rows, Ordering::Relaxed);
        }
        if nanos > self.max_nanos.load(Ordering::Relaxed) {
            self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        }
    }

    /// Copies the counters into an immutable snapshot.
    pub fn snapshot(&self) -> StmtProfileSnapshot {
        StmtProfileSnapshot {
            sql: Arc::clone(&self.sql),
            kind: self.kind,
            calls: self.calls.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one statement's profile.
#[derive(Debug, Clone)]
pub struct StmtProfileSnapshot {
    /// The normalized statement text.
    pub sql: Arc<str>,
    /// The statement kind.
    pub kind: StmtKind,
    /// Executions recorded.
    pub calls: u64,
    /// Rows returned (selects) or affected (writes), cumulative.
    pub rows: u64,
    /// Cumulative execution time in nanoseconds.
    pub total_nanos: u64,
    /// Slowest single execution in nanoseconds.
    pub max_nanos: u64,
}

impl StmtProfileSnapshot {
    /// Mean execution time in nanoseconds, or 0.0 before any call.
    pub fn mean_nanos(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.calls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_tracks_max() {
        let p = StmtProfile::new(Arc::from("SELECT 1"), StmtKind::Select);
        p.record(100, 1);
        p.record(300, 2);
        p.record(200, 0);
        let s = p.snapshot();
        assert_eq!(&*s.sql, "SELECT 1");
        assert_eq!(s.kind, StmtKind::Select);
        assert_eq!(s.calls, 3);
        assert_eq!(s.rows, 3);
        assert_eq!(s.total_nanos, 600);
        assert_eq!(s.max_nanos, 300);
        assert!((s.mean_nanos() - 200.0).abs() < f64::EPSILON);
    }

    #[test]
    fn concurrent_records_are_exact() {
        let p = Arc::new(StmtProfile::new(Arc::from("q"), StmtKind::Insert));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        p.record(10, 1);
                    }
                });
            }
        });
        let s = p.snapshot();
        assert_eq!(s.calls, 20_000);
        assert_eq!(s.rows, 20_000);
        assert_eq!(s.total_nanos, 200_000);
    }
}
