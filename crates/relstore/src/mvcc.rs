//! Multi-version concurrency control: row version chains and snapshots.
//!
//! The engine's readers never block on — or abort against — in-flight
//! writers. Instead of conflict-checking the lock table, every SELECT
//! (autocommit, in-transaction, and batched) carries a [`Snapshot`]: a
//! transaction-id watermark plus the set of writers that were in flight when
//! the snapshot was taken. Each table row is a [`VersionChain`] of
//! [`RowVersion`]s stamped with the transaction that created them (`begin`)
//! and, once superseded or deleted, the transaction that ended them (`end`).
//! A version is visible to a snapshot exactly when its `begin` is visible
//! and its `end` (if any) is not.
//!
//! Writers still serialise through the table-level lock manager for
//! write-write conflicts; MVCC only removes readers from the conflict graph.
//!
//! # Why there is no commit-status check
//!
//! Visibility never consults a commit log because the engine maintains two
//! invariants under the catalog write guard:
//!
//! * **aborted versions are removed physically** by rollback (and crash
//!   recovery rebuilds committed state only), so any version present in a
//!   chain belongs to a committed transaction, an in-flight one, or the
//!   pseudo-transaction [`COMMITTED_TXN`] used for recovered/bootstrap rows;
//! * a snapshot's `in_flight` set captures every transaction that was active
//!   when the snapshot was taken, and ids are allocated monotonically, so
//!   "`begin < high` and not in flight" is equivalent to "committed before
//!   the snapshot".
//!
//! # Garbage collection
//!
//! Dead versions (those with `end` set) are retained until no live snapshot
//! could still need them, then pruned by the table vacuum
//! ([`crate::table::Table::vacuum`]) — invoked from
//! [`crate::db::Database::checkpoint`] and, per table, when the count
//! of dead versions crosses a threshold after a write. The cutoff is the
//! [`TxnManager::snapshot_horizon`](crate::txn::TxnManager::snapshot_horizon):
//! the smallest transaction id some live snapshot does *not* see.

use crate::tuple::Row;
use crate::wal::TxnId;

/// The pseudo-transaction id carried by rows whose writer is no longer
/// relevant: rows rebuilt by crash recovery, restored by checkpoint replay,
/// or created through the physical (non-transactional) table API. Every
/// snapshot sees it: real transaction ids start at 1.
pub const COMMITTED_TXN: TxnId = TxnId(0);

/// One version of one row.
///
/// `begin` is the transaction that created the version; `end` is the
/// transaction that superseded (UPDATE) or deleted (DELETE) it, or `None`
/// while the version is current.
#[derive(Debug, Clone, PartialEq)]
pub struct RowVersion {
    /// Creator transaction.
    pub begin: TxnId,
    /// Transaction that ended this version, if any.
    pub end: Option<TxnId>,
    /// The row contents of this version.
    pub row: Row,
}

/// A consistent view of the database at one instant.
///
/// Taken per statement for autocommit reads and once at `begin()` for
/// explicit transactions (giving them repeatable reads). `high` is the
/// id watermark — transactions with `id >= high` began after the snapshot —
/// and `in_flight` lists the transactions that were active (hence not yet
/// committed) when it was taken, sorted ascending.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Transactions with `id >= high` are invisible (they began later).
    pub high: u64,
    /// Transactions active at snapshot time, sorted ascending; their
    /// versions are invisible even though their ids are below `high`.
    pub in_flight: Vec<TxnId>,
    /// The snapshot owner's own transaction, whose writes are always
    /// visible to itself. `None` for autocommit reads.
    pub own: Option<TxnId>,
}

/// The snapshot that sees every version whose `end` is unset: the *latest*
/// physical state. Writers use it — under the table's exclusive lock the
/// only uncommitted versions in a table are the writer's own, so "newest
/// version still open" is exactly the writer's view.
static LATEST: Snapshot = Snapshot {
    high: u64::MAX,
    in_flight: Vec::new(),
    own: None,
};

impl Snapshot {
    /// The all-seeing snapshot (current physical state): it considers every
    /// transaction committed, so a version is visible exactly when its
    /// `end` is unset.
    pub fn latest() -> &'static Snapshot {
        &LATEST
    }

    /// True when this snapshot considers `txn`'s effects committed-and-visible.
    #[inline]
    pub fn sees(&self, txn: TxnId) -> bool {
        if self.own == Some(txn) {
            return true;
        }
        txn.0 < self.high && !self.in_flight.contains(&txn)
    }

    /// True when `version` is the row state this snapshot should observe.
    #[inline]
    pub fn visible(&self, version: &RowVersion) -> bool {
        self.sees(version.begin)
            && match version.end {
                None => true,
                Some(end) => !self.sees(end),
            }
    }

    /// The smallest transaction id this snapshot does **not** see (ignoring
    /// `own`): the lower bound used to compute the global vacuum horizon.
    pub fn low_watermark(&self) -> u64 {
        match self.in_flight.first() {
            Some(t) => t.0.min(self.high),
            None => self.high,
        }
    }
}

/// All retained versions of one row, stored oldest → newest so that the hot
/// write path (pushing a new current version) is an O(1) `Vec::push`.
///
/// Invariants (maintained by [`crate::table::Table`] under the catalog write
/// guard): only the newest version may have `end == None`; every older
/// version's `end` is set. A chain whose newest version has `end` set is a
/// *tombstone* — the row is deleted in the latest state but still visible to
/// older snapshots until vacuumed.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionChain {
    versions: Vec<RowVersion>,
}

impl VersionChain {
    /// Creates a chain holding a single new version written by `txn`.
    pub fn new(txn: TxnId, row: Row) -> Self {
        VersionChain {
            versions: vec![RowVersion {
                begin: txn,
                end: None,
                row,
            }],
        }
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when no versions remain (only transiently, during vacuum).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The newest version.
    pub fn newest(&self) -> &RowVersion {
        self.versions.last().expect("chains are never empty")
    }

    /// The current row — the newest version if it has not been ended.
    pub fn current(&self) -> Option<&Row> {
        let v = self.newest();
        v.end.is_none().then_some(&v.row)
    }

    /// True when the newest version is open (the row exists in latest state).
    pub fn is_live(&self) -> bool {
        self.newest().end.is_none()
    }

    /// True when some retained version has been ended (vacuum candidate).
    pub fn has_dead(&self) -> bool {
        self.versions.len() > 1 || !self.is_live()
    }

    /// The row this snapshot observes, if any version is visible to it.
    /// Searched newest-first: the common case (current version visible)
    /// checks exactly one version.
    pub fn visible(&self, snapshot: &Snapshot) -> Option<&Row> {
        self.versions
            .iter()
            .rev()
            .find(|v| snapshot.visible(v))
            .map(|v| &v.row)
    }

    /// Iterates all retained versions (oldest first).
    pub fn versions(&self) -> impl Iterator<Item = &RowVersion> {
        self.versions.iter()
    }

    /// Ends the newest version (an UPDATE superseding it) and pushes the
    /// replacement written by `txn`.
    pub(crate) fn push_version(&mut self, txn: TxnId, row: Row) {
        self.versions
            .last_mut()
            .expect("chains are never empty")
            .end = Some(txn);
        self.versions.push(RowVersion {
            begin: txn,
            end: None,
            row,
        });
    }

    /// Marks the newest version deleted by `txn`.
    pub(crate) fn mark_deleted(&mut self, txn: TxnId) {
        self.versions
            .last_mut()
            .expect("chains are never empty")
            .end = Some(txn);
    }

    /// Rollback helper: clears a deletion mark left by `txn`.
    pub(crate) fn unmark_deleted(&mut self, txn: TxnId) {
        let newest = self.versions.last_mut().expect("chains are never empty");
        debug_assert_eq!(newest.end, Some(txn));
        newest.end = None;
    }

    /// Rollback helper: pops the newest version (written by the aborting
    /// `txn`) and re-opens the version it superseded. Returns the popped
    /// version so the table can retire its index entries.
    pub(crate) fn pop_version(&mut self, txn: TxnId) -> RowVersion {
        let popped = self.versions.pop().expect("chains are never empty");
        debug_assert_eq!(popped.begin, txn);
        if let Some(prev) = self.versions.last_mut() {
            if prev.end == Some(txn) {
                prev.end = None;
            }
        }
        popped
    }

    /// Prunes versions no live snapshot can still observe: every version
    /// whose `end` transaction id is below `horizon` (see the module docs).
    /// Returns the pruned versions so the table can retire index entries.
    /// After vacuuming with `horizon == u64::MAX` (no live snapshots) a live
    /// chain is exactly one version long and a tombstoned chain is empty.
    pub(crate) fn vacuum(&mut self, horizon: u64) -> Vec<RowVersion> {
        let mut pruned = Vec::new();
        let mut i = 0;
        while i < self.versions.len() {
            match self.versions[i].end {
                Some(end) if end.0 < horizon => pruned.push(self.versions.remove(i)),
                _ => i += 1,
            }
        }
        pruned
    }

    /// Approximate resident size of all retained versions, in bytes.
    pub fn approx_size(&self) -> usize {
        self.versions
            .iter()
            .map(|v| v.row.approx_size() + 24)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(n: i64) -> Row {
        Row::new(vec![Value::Int(n)])
    }

    fn snapshot(high: u64, in_flight: &[u64], own: Option<u64>) -> Snapshot {
        Snapshot {
            high,
            in_flight: in_flight.iter().map(|&t| TxnId(t)).collect(),
            own: own.map(TxnId),
        }
    }

    #[test]
    fn visibility_rules() {
        let snap = snapshot(5, &[3], Some(5));
        assert!(snap.sees(TxnId(0)), "bootstrap rows are always visible");
        assert!(snap.sees(TxnId(2)), "committed before the snapshot");
        assert!(!snap.sees(TxnId(3)), "in flight at snapshot time");
        assert!(snap.sees(TxnId(5)), "own writes are visible");
        assert!(!snap.sees(TxnId(7)), "began after the snapshot");

        // A version created by a visible txn and ended by an invisible one
        // is still the observed state.
        let v = RowVersion {
            begin: TxnId(2),
            end: Some(TxnId(3)),
            row: row(1),
        };
        assert!(snap.visible(&v));
        // Once the ender is visible too, the version is dead to us.
        let snap2 = snapshot(6, &[], None);
        assert!(!snap2.visible(&v));
    }

    #[test]
    fn latest_sees_only_open_versions() {
        let latest = Snapshot::latest();
        let open = RowVersion {
            begin: TxnId(9),
            end: None,
            row: row(1),
        };
        let ended = RowVersion {
            begin: TxnId(1),
            end: Some(TxnId(9)),
            row: row(0),
        };
        assert!(latest.visible(&open));
        assert!(!latest.visible(&ended));
    }

    #[test]
    fn chain_push_pop_round_trip() {
        let mut chain = VersionChain::new(TxnId(1), row(1));
        chain.push_version(TxnId(2), row(2));
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.current(), Some(&row(2)));

        // An old snapshot that predates txn 2 still reads the first version.
        let old = snapshot(2, &[], None);
        assert_eq!(chain.visible(&old), Some(&row(1)));

        // Rolling txn 2 back restores the chain exactly.
        let popped = chain.pop_version(TxnId(2));
        assert_eq!(popped.row, row(2));
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.current(), Some(&row(1)));
    }

    #[test]
    fn delete_marks_and_unmarks() {
        let mut chain = VersionChain::new(TxnId(1), row(1));
        chain.mark_deleted(TxnId(3));
        assert!(!chain.is_live());
        assert_eq!(chain.current(), None);
        // Old snapshots still see the row; new ones do not.
        assert_eq!(chain.visible(&snapshot(3, &[], None)), Some(&row(1)));
        assert_eq!(chain.visible(&snapshot(4, &[], None)), None);
        chain.unmark_deleted(TxnId(3));
        assert!(chain.is_live());
    }

    #[test]
    fn vacuum_respects_the_horizon() {
        let mut chain = VersionChain::new(TxnId(1), row(1));
        chain.push_version(TxnId(5), row(2));
        chain.push_version(TxnId(9), row(3));
        assert_eq!(chain.len(), 3);

        // A horizon below the enders keeps everything.
        assert!(chain.vacuum(5).is_empty());
        assert_eq!(chain.len(), 3);

        // Horizon 6 prunes the version ended by txn 5, keeps the one ended
        // by txn 9.
        let pruned = chain.vacuum(6);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].row, row(1));
        assert_eq!(chain.len(), 2);

        // No live snapshots: everything but the open version goes.
        let pruned = chain.vacuum(u64::MAX);
        assert_eq!(pruned.len(), 1);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.current(), Some(&row(3)));

        // A tombstoned chain vacuums down to empty.
        chain.mark_deleted(TxnId(12));
        let pruned = chain.vacuum(u64::MAX);
        assert_eq!(pruned.len(), 1);
        assert!(chain.is_empty());
    }

    #[test]
    fn low_watermark_bounds_the_horizon() {
        assert_eq!(snapshot(7, &[], None).low_watermark(), 7);
        assert_eq!(snapshot(7, &[3, 5], None).low_watermark(), 3);
    }
}
