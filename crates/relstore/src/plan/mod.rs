//! Query planning: `ANALYZE` statistics, cost-based access-path selection,
//! join ordering with predicate pushdown, and `EXPLAIN` rendering.
//!
//! The planner sits between parse and execution. Given a [`SelectStmt`] and
//! the catalog it produces a [`SelectPlan`]: an access path for the base
//! table, one [`JoinStep`] per join clause in *execution* order (greedy
//! smallest-estimated-build-side first when reordering is enabled), and the
//! single-table predicates pushed down to each input. The executor in
//! [`crate::exec`] drives row flow from the plan; the plan itself never
//! touches rows, so it can be cached on a prepared statement and reused
//! until DDL or an `ANALYZE` bumps the database's plan generation.
//!
//! Estimates come from two sources, both optional: `ANALYZE`-collected
//! [`TableStats`] (exact at collection time, stale afterwards) and live
//! index metadata ([`Table::index_stats_on`], never stale but
//! version-inflated). Plans must therefore only ever be a *performance*
//! hint: every access path yields a superset of the matching rows and the
//! executor re-applies the full predicate, so stale stats can cost time but
//! never correctness.

use crate::error::{Error, Result};
use crate::exec::{Catalog, QueryResult};
use crate::mvcc::Snapshot;
use crate::predicate::Expr;
use crate::sql::ast::{SelectItem, SelectStmt};
use crate::stats::OpStats;
use crate::table::Table;
use crate::tuple::Row;
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Per-column statistics collected by `ANALYZE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name (bare, lower-case).
    pub name: String,
    /// Number of distinct non-NULL values at collection time.
    pub distinct: usize,
    /// Number of NULLs at collection time.
    pub null_count: usize,
    /// Smallest non-NULL value, or [`Value::Null`] for an all-NULL column.
    pub min: Value,
    /// Largest non-NULL value, or [`Value::Null`] for an all-NULL column.
    pub max: Value,
}

/// Per-table statistics collected by `ANALYZE`, held by the catalog's
/// [`Table`] and consulted by the cost model. Statistics describe the table
/// at collection time and are *not* maintained by writes; `version` records
/// the table's physical version counter at collection so staleness is
/// observable (`rel_table_stats` reports it).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Live rows visible to the collecting snapshot.
    pub rows: usize,
    /// [`Table::version`] at collection time.
    pub version: u64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Statistics for `column` (bare lower-case name), if collected.
    pub fn column(&self, column: &str) -> Option<&ColumnStats> {
        let lc = crate::schema::lower_name(column);
        self.columns.iter().find(|c| c.name == lc.as_ref())
    }
}

/// Scans `table` at the latest committed state and computes fresh
/// [`TableStats`]: exact row count, per-column distinct/NULL counts and
/// min/max. Cost is one full scan plus a hash set per column, which is why
/// statistics are collected on demand (`ANALYZE`) rather than inline with
/// writes.
pub fn analyze_table(table: &Table) -> TableStats {
    let mut scratch = OpStats::default();
    let arity = table.schema.arity();
    let mut rows = 0usize;
    let mut distinct: Vec<HashSet<Value>> = (0..arity).map(|_| HashSet::new()).collect();
    let mut nulls = vec![0usize; arity];
    let mut mins: Vec<Value> = vec![Value::Null; arity];
    let mut maxs: Vec<Value> = vec![Value::Null; arity];
    let vis = Snapshot::latest();
    for stored in table.scan(vis, &mut scratch) {
        rows += 1;
        for (i, v) in stored.row.values.iter().enumerate() {
            if v.is_null() {
                nulls[i] += 1;
                continue;
            }
            if distinct[i].insert(v.clone()) {
                if mins[i].is_null() || v.total_cmp(&mins[i]) == std::cmp::Ordering::Less {
                    mins[i] = v.clone();
                }
                if maxs[i].is_null() || v.total_cmp(&maxs[i]) == std::cmp::Ordering::Greater {
                    maxs[i] = v.clone();
                }
            }
        }
    }
    let columns = table
        .schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| ColumnStats {
            name: c.name.to_string(),
            distinct: distinct[i].len(),
            null_count: nulls[i],
            min: std::mem::replace(&mut mins[i], Value::Null),
            max: std::mem::replace(&mut maxs[i], Value::Null),
        })
        .collect();
    TableStats {
        rows,
        version: table.version(),
        columns,
    }
}

/// Best available distinct-value estimate for `column`: `ANALYZE` stats
/// when present (live-accurate at collection time), otherwise the covering
/// index's distinct key count (an upper bound that needs no `ANALYZE`).
fn distinct_estimate(table: &Table, column: &str) -> Option<usize> {
    if let Some(stats) = table.table_stats() {
        if let Some(cs) = stats.column(column) {
            if cs.distinct > 0 {
                return Some(cs.distinct);
            }
        }
    }
    table.index_stats_on(column).map(|(d, _)| d.max(1))
}

/// How the executor reads one table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Index point lookup: a top-level conjunct pins `column` with equality.
    Point {
        /// The pinned indexed column (bare name).
        column: String,
        /// Whether the covering index is unique (est. one row).
        unique: bool,
    },
    /// Ordered index range scan: a conjunct bounds `column`.
    Range {
        /// The bounded indexed column (bare name).
        column: String,
    },
    /// Full heap scan.
    Scan,
}

/// A chosen access path plus its estimated output cardinality.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPlan {
    /// The path the executor should take.
    pub path: AccessPath,
    /// Estimated rows produced (after the pushed-down predicate).
    pub est_rows: f64,
}

impl AccessPlan {
    /// Human-readable form for EXPLAIN, e.g. `point lookup on jobs.job_id
    /// (unique)`.
    pub fn describe(&self, table: &str) -> String {
        match &self.path {
            AccessPath::Point { column, unique } => {
                let u = if *unique { " (unique)" } else { "" };
                format!("point lookup on {table}.{column}{u}")
            }
            AccessPath::Range { column } => format!("range scan on {table}.{column}"),
            AccessPath::Scan => format!("full scan of {table}"),
        }
    }
}

/// Borrowed form of [`AccessPath`] used on the single-table hot path, where
/// the chosen column can stay a borrow of the table's schema (no
/// allocation per query).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PathChoice<'a> {
    /// Point lookup on the named indexed column.
    Point(&'a str, bool),
    /// Range scan on the named indexed column.
    Range(&'a str),
    /// Full scan.
    Scan,
}

impl PathChoice<'_> {
    fn rank(&self) -> u8 {
        match self {
            PathChoice::Point(..) => 0,
            PathChoice::Range(_) => 1,
            PathChoice::Scan => 2,
        }
    }
}

/// Cost-based access-path selection: estimates the output of every index
/// the filter can use and picks the cheapest, preferring point over range
/// over scan on ties. Replaces the seed's first-match heuristic — with two
/// usable indexes the planner now takes the more selective one, not the one
/// that happens to come first in the index list.
pub(crate) fn choose_access_ref<'t>(
    table: &'t Table,
    filter: Option<&Expr>,
) -> (PathChoice<'t>, f64) {
    let rows = table.len() as f64;
    let name = &*table.schema.name;
    let mut best = (PathChoice::Scan, rows);
    let Some(filter) = filter else { return best };
    for col in table.indexed_columns() {
        let cand = if filter.pins_column(name, col) {
            let unique = table
                .index_stats_on(col)
                .map(|(_, unique)| unique)
                .unwrap_or(false);
            let est = if unique {
                rows.min(1.0)
            } else {
                let d = distinct_estimate(table, col).unwrap_or(1) as f64;
                (rows / d).min(rows)
            };
            Some((PathChoice::Point(col, unique), est))
        } else if filter.ranges_column(name, col) {
            Some((PathChoice::Range(col), rows / 3.0))
        } else {
            None
        };
        if let Some((path, est)) = cand {
            if est < best.1 || (est == best.1 && path.rank() < best.0.rank()) {
                best = (path, est);
            }
        }
    }
    best
}

/// Owned [`choose_access_ref`] for plans that outlive the catalog borrow
/// (cached plans, EXPLAIN output).
pub fn choose_access(table: &Table, filter: Option<&Expr>) -> AccessPlan {
    let (path, est_rows) = choose_access_ref(table, filter);
    let path = match path {
        PathChoice::Point(c, unique) => AccessPath::Point {
            column: c.to_string(),
            unique,
        },
        PathChoice::Range(c) => AccessPath::Range {
            column: c.to_string(),
        },
        PathChoice::Scan => AccessPath::Scan,
    };
    AccessPlan { path, est_rows }
}

/// How one join step combines the accumulated left rows with its table.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinStrategy {
    /// Equi hash join: build a hash of the right table on `build`, probe
    /// with the accumulated rows' `probe` column.
    Hash {
        /// Column reference (as written) resolved against the accumulated
        /// left schema at execution time.
        probe: String,
        /// Column reference (as written) resolved against the right table.
        build: String,
    },
    /// Nested loop evaluating the full `ON` predicate over each
    /// concatenated row pair — the fallback that makes non-equi `ON`
    /// predicates work.
    NestedLoop,
}

/// One planned join: which clause, which table, how to read it, and how to
/// combine it with the rows accumulated so far.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    /// Index into `stmt.joins` (the syntactic position of this clause).
    pub clause: usize,
    /// Right-hand table (lower-case).
    pub table: String,
    /// How the right side is read while building.
    pub access: AccessPlan,
    /// Single-table conjuncts of the WHERE clause applied while building
    /// the right side (strictly shrinks the build; the full filter is
    /// re-applied after all joins, so this is a pure optimization).
    pub pushdown: Option<Expr>,
    /// Hash or nested-loop.
    pub strategy: JoinStrategy,
    /// Estimated rows after this join.
    pub est_out_rows: f64,
    /// Whether the built side is reusable across executions of the same
    /// prepared statement (false when the pushdown references `?`
    /// parameters, whose values change per execution).
    pub cacheable: bool,
}

/// The full plan for a SELECT: base access + joins in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// Base table (lower-case).
    pub base_table: String,
    /// Base table access path.
    pub base: AccessPlan,
    /// Single-table conjuncts applied while reading the base table.
    pub base_pushdown: Option<Expr>,
    /// Joins in execution order (may differ from syntactic order).
    pub steps: Vec<JoinStep>,
    /// True when `steps` is not in syntactic order — the executor must then
    /// restore syntactic column order for `SELECT *`.
    pub reordered: bool,
}

fn get_table<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a Table> {
    catalog
        .get(crate::schema::lower_name(name).as_ref())
        .ok_or_else(|| Error::not_found(format!("table {name}")))
}

/// Resolves a column reference to the (lower-case) table in `scope` that
/// owns it. Qualified names resolve against their table; bare names resolve
/// when exactly one table in scope has the column. `None` means
/// unresolvable or ambiguous — the planner then leaves the predicate for
/// the executor, which reports the error with full context.
fn owner_of<'a>(catalog: &Catalog, scope: &'a [String], col: &str) -> Option<&'a str> {
    let lcol = crate::schema::lower_name(col);
    if let Some((q, c)) = lcol.split_once('.') {
        return scope
            .iter()
            .find(|t| {
                t.as_str() == q
                    && catalog
                        .get(t.as_str())
                        .is_some_and(|tab| tab.schema.column_index(c).is_ok())
            })
            .map(String::as_str);
    }
    let mut found: Option<&str> = None;
    for t in scope {
        if catalog
            .get(t.as_str())
            .is_some_and(|tab| tab.schema.column_index(lcol.as_ref()).is_ok())
        {
            if found.is_some() {
                return None;
            }
            found = Some(t);
        }
    }
    found
}

/// Flattens a top-level `AND` tree into its conjuncts.
fn split_conjuncts<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::And(l, r) = expr {
        split_conjuncts(l, out);
        split_conjuncts(r, out);
    } else {
        out.push(expr);
    }
}

/// Assigns each WHERE conjunct that references exactly one table (and no
/// subquery) to that table, AND-combining per table. Everything else stays
/// in the residual filter the executor applies after the joins.
fn pushdown_map(catalog: &Catalog, scope: &[String], filter: Option<&Expr>) -> HashMap<String, Expr> {
    let mut out: HashMap<String, Expr> = HashMap::new();
    let Some(filter) = filter else { return out };
    let mut conjuncts = Vec::new();
    split_conjuncts(filter, &mut conjuncts);
    for conj in conjuncts {
        if conj.contains_subquery() {
            continue;
        }
        let mut refs = Vec::new();
        conj.referenced_columns(&mut refs);
        if refs.is_empty() {
            continue;
        }
        let mut owner: Option<&str> = None;
        let mut single = true;
        for c in &refs {
            match owner_of(catalog, scope, c) {
                Some(t) if owner.is_none() || owner == Some(t) => owner = Some(t),
                _ => {
                    single = false;
                    break;
                }
            }
        }
        if let (true, Some(t)) = (single, owner) {
            let entry = out.remove(t);
            let combined = match entry {
                Some(prev) => prev.and(conj.clone()),
                None => conj.clone(),
            };
            out.insert(t.to_string(), combined);
        }
    }
    out
}

/// Plans a SELECT against the catalog. With `reorder` set, inner equi-joins
/// are placed greedily smallest-estimated-build-side first (classic
/// left-deep greedy ordering); otherwise joins keep their syntactic order
/// (the pre-planner behaviour, kept as an oracle and a bench baseline).
///
/// Join reordering is safe for this engine's join semantics: all joins are
/// inner, so the result set is order-independent — only intermediate sizes
/// (and `SELECT *` column order, which the executor restores) change.
pub fn plan_select(catalog: &Catalog, stmt: &SelectStmt, reorder: bool) -> Result<SelectPlan> {
    let base = get_table(catalog, &stmt.table)?;
    let base_name = crate::schema::lower_name(&stmt.table).into_owned();

    // Full FROM scope for pushdown assignment: a bare column ambiguous
    // across *any* joined table stays residual, matching the executor's
    // ambiguity errors.
    let mut scope = vec![base_name.clone()];
    for j in &stmt.joins {
        scope.push(crate::schema::lower_name(&j.table).into_owned());
    }
    let mut pushdown = pushdown_map(catalog, &scope, stmt.filter.as_ref());

    let base_pushdown = pushdown.remove(&base_name);
    let base_access = choose_access(base, base_pushdown.as_ref());
    let mut left_est = base_access.est_rows;

    let mut placed = vec![base_name.clone()];
    let mut remaining: Vec<usize> = (0..stmt.joins.len()).collect();
    let mut steps: Vec<JoinStep> = Vec::with_capacity(stmt.joins.len());

    while !remaining.is_empty() {
        // Evaluate every remaining clause against the tables placed so far.
        // Only clauses whose ON resolves entirely within the placed tables
        // plus their own are candidates; when none qualifies (forward or
        // unresolvable references), fall back to the first remaining clause
        // in syntactic order and let the executor report the error.
        let mut best: Option<(usize, JoinStep)> = None;
        let evaluate = |pos: usize, ji: usize, require_placeable: bool, best: &mut Option<(usize, JoinStep)>| -> Result<()> {
            let clause = &stmt.joins[ji];
            let right_name = crate::schema::lower_name(&clause.table).into_owned();
            let right = get_table(catalog, &clause.table)?;

            let mut local = placed.clone();
            local.push(right_name.clone());
            let mut refs = Vec::new();
            clause.on.referenced_columns(&mut refs);
            let placeable = refs
                .iter()
                .all(|c| owner_of(catalog, &local, c).is_some());
            if require_placeable && !placeable {
                return Ok(());
            }

            let strategy = match clause.equi_columns() {
                Some((a, b)) if placeable => {
                    let oa = owner_of(catalog, &local, a);
                    let ob = owner_of(catalog, &local, b);
                    match (oa, ob) {
                        (Some(ta), Some(tb)) if ta == right_name && tb != right_name => {
                            JoinStrategy::Hash {
                                probe: b.to_string(),
                                build: a.to_string(),
                            }
                        }
                        (Some(ta), Some(tb)) if tb == right_name && ta != right_name => {
                            JoinStrategy::Hash {
                                probe: a.to_string(),
                                build: b.to_string(),
                            }
                        }
                        _ => JoinStrategy::NestedLoop,
                    }
                }
                _ => JoinStrategy::NestedLoop,
            };

            let pd = pushdown.get(&right_name).cloned();
            let access = choose_access(right, pd.as_ref());
            let est_out = match &strategy {
                JoinStrategy::Hash { build, .. } => {
                    let bare = build.rsplit('.').next().unwrap_or(build);
                    let d = distinct_estimate(right, bare)
                        .unwrap_or_else(|| (access.est_rows as usize).max(1));
                    (left_est * access.est_rows / d.max(1) as f64).max(0.0)
                }
                JoinStrategy::NestedLoop => left_est * access.est_rows,
            };
            let cacheable = pd.as_ref().is_none_or(|e| e.param_count() == 0);
            let step = JoinStep {
                clause: ji,
                table: right_name,
                access,
                pushdown: pd,
                strategy,
                est_out_rows: est_out,
                cacheable,
            };
            let better = match best {
                None => true,
                Some((_, ref b)) => step.access.est_rows < b.access.est_rows,
            };
            if better {
                *best = Some((pos, step));
            }
            Ok(())
        };
        if reorder {
            for (pos, &ji) in remaining.iter().enumerate() {
                evaluate(pos, ji, true, &mut best)?;
            }
            if best.is_none() {
                evaluate(0, remaining[0], false, &mut best)?;
            }
        } else {
            evaluate(0, remaining[0], false, &mut best)?;
        }
        let (pos, step) = best.expect("fallback evaluation always yields a step");
        remaining.remove(pos);
        placed.push(step.table.clone());
        left_est = step.est_out_rows;
        steps.push(step);
    }

    let reordered = steps
        .iter()
        .enumerate()
        .any(|(i, s)| s.clause != i);
    Ok(SelectPlan {
        base_table: base_name,
        base: base_access,
        base_pushdown,
        steps,
        reordered,
    })
}

/// Actual row count and wall time of one plan operator, filled in by the
/// executor for `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepActuals {
    /// Rows the operator produced.
    pub rows: u64,
    /// Wall time spent in the operator, in nanoseconds.
    pub nanos: u64,
}

/// Per-operator actuals for a whole plan, parallel to the EXPLAIN rows:
/// base access, one entry per join step (execution order), residual filter,
/// output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProfile {
    /// Base-table access.
    pub base: StepActuals,
    /// One entry per join step, in execution order.
    pub joins: Vec<StepActuals>,
    /// Residual filter evaluation (zero when there is no filter).
    pub filter: StepActuals,
    /// Sort/limit/projection.
    pub output: StepActuals,
}

/// Renders a plan as rows through the normal query path. Columns are
/// `[step, operator, detail, est_rows]`, plus `[actual_rows, time_us]` when
/// `actuals` is present (`EXPLAIN ANALYZE`). Serving plans as a
/// [`QueryResult`] means EXPLAIN is transport-agnostic for free: the wire
/// protocol ships it like any other result set.
pub fn explain_result(
    plan: &SelectPlan,
    stmt: &SelectStmt,
    actuals: Option<&PlanProfile>,
) -> QueryResult {
    let mut names: Vec<Arc<str>> = vec![
        Arc::from("step"),
        Arc::from("operator"),
        Arc::from("detail"),
        Arc::from("est_rows"),
    ];
    if actuals.is_some() {
        names.push(Arc::from("actual_rows"));
        names.push(Arc::from("time_us"));
    }
    let mut rows: Vec<Row> = Vec::new();
    let push = |rows: &mut Vec<Row>, op: String, detail: String, est: f64, act: Option<StepActuals>| {
        let step = rows.len() as i64 + 1;
        let mut values = vec![
            Value::Int(step),
            Value::Text(op.into()),
            Value::Text(detail.into()),
            Value::Int(est.round() as i64),
        ];
        if actuals.is_some() {
            let act = act.unwrap_or_default();
            values.push(Value::Int(act.rows as i64));
            values.push(Value::Double(act.nanos as f64 / 1_000.0));
        }
        rows.push(Row::new(values));
    };

    let mut detail = plan.base.describe(&plan.base_table);
    if let Some(pd) = &plan.base_pushdown {
        detail.push_str(&format!(", pushdown {pd}"));
    }
    push(
        &mut rows,
        format!("Access({})", plan.base_table),
        detail,
        plan.base.est_rows,
        actuals.map(|a| a.base),
    );

    let mut last_est = plan.base.est_rows;
    for (i, step) in plan.steps.iter().enumerate() {
        let (op, mut detail) = match &step.strategy {
            JoinStrategy::Hash { probe, build } => (
                format!("HashJoin({})", step.table),
                format!(
                    "build {} on {build} via {}, probe {probe}",
                    step.table,
                    step.access.describe(&step.table)
                ),
            ),
            JoinStrategy::NestedLoop => (
                format!("NestedLoopJoin({})", step.table),
                format!(
                    "on {} via {}",
                    stmt.joins[step.clause].on,
                    step.access.describe(&step.table)
                ),
            ),
        };
        if let Some(pd) = &step.pushdown {
            detail.push_str(&format!(", pushdown {pd}"));
        }
        push(
            &mut rows,
            op,
            detail,
            step.est_out_rows,
            actuals.map(|a| a.joins.get(i).copied().unwrap_or_default()),
        );
        last_est = step.est_out_rows;
    }

    if let Some(filter) = &stmt.filter {
        push(
            &mut rows,
            "Filter".to_string(),
            filter.to_string(),
            last_est,
            actuals.map(|a| a.filter),
        );
    }

    let mut out_detail = if stmt
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }))
        || !stmt.group_by.is_empty()
    {
        "aggregate".to_string()
    } else if matches!(stmt.items.as_slice(), [SelectItem::Wildcard]) {
        "project *".to_string()
    } else {
        format!("project {} columns", stmt.items.len())
    };
    if !stmt.order_by.is_empty() {
        out_detail.push_str(", sort");
    }
    let est_out = match stmt.limit {
        Some(l) => last_est.min(l as f64),
        None => last_est,
    };
    if let Some(l) = stmt.limit {
        out_detail.push_str(&format!(", limit {l}"));
    }
    push(
        &mut rows,
        "Output".to_string(),
        out_detail,
        est_out,
        actuals.map(|a| a.output),
    );

    QueryResult {
        columns: names.into(),
        rows,
    }
}

/// A hash-join build side cached on a prepared statement, reusable while
/// the owning table is physically unchanged and the reader's snapshot is
/// identical (same visible row set).
#[derive(Debug)]
pub struct CachedBuild {
    /// [`Table::version`] when built.
    pub table_version: u64,
    /// The snapshot the build was made under.
    pub snapshot: Snapshot,
    /// Build-key value → owned right-table rows (post-pushdown).
    pub map: HashMap<Value, Vec<Row>>,
}

impl CachedBuild {
    /// True when the cached build still describes exactly the rows the
    /// caller would see: the table has had no physical change and the
    /// snapshot is the same visible set.
    pub fn valid_for(&self, table: &Table, vis: &Snapshot) -> bool {
        self.table_version == table.version() && self.snapshot == *vis
    }
}

/// The cached plan state of one prepared statement: the plan itself plus
/// any reusable hash-join build sides, all invalidated when `gen` falls
/// behind the database's plan generation (bumped by DDL and `ANALYZE`).
#[derive(Debug, Default)]
pub struct PlanSlot {
    /// Database plan generation this slot was filled under.
    pub gen: u64,
    /// The cached plan, if planned already.
    pub plan: Option<Arc<SelectPlan>>,
    /// Cached build sides, parallel to `plan.steps`.
    pub builds: Vec<Option<Arc<CachedBuild>>>,
}

/// Shareable plan-cache cell attached to a prepared statement.
pub type PlanCell = Mutex<PlanSlot>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::COMMITTED_TXN;
    use crate::schema::{Column, Schema};
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse;
    use crate::value::DataType;

    fn table(schema: Schema, rows: Vec<Vec<Value>>) -> Table {
        let mut t = Table::new(schema).unwrap();
        let mut stats = OpStats::default();
        for row in rows {
            t.insert(row, COMMITTED_TXN, &mut stats).unwrap();
        }
        t
    }

    /// jobs: 100 rows; matches: 100 rows; machines: 4 rows.
    fn catalog() -> Catalog {
        let jobs = table(
            Schema::new(
                "jobs",
                vec![
                    Column::not_null("job_id", DataType::Int),
                    Column::new("owner", DataType::Text),
                    Column::new("state", DataType::Text),
                ],
            )
            .with_primary_key("job_id")
            .with_index("state"),
            (0..100)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Text(format!("owner{}", i % 10).into()),
                        Value::Text(if i % 2 == 0 { "idle" } else { "running" }.into()),
                    ]
                })
                .collect(),
        );
        let matches = table(
            Schema::new(
                "matches",
                vec![
                    Column::not_null("job_id", DataType::Int),
                    Column::not_null("machine_id", DataType::Int),
                ],
            )
            .with_index("job_id"),
            (0..100)
                .map(|i| vec![Value::Int(i), Value::Int(i % 4)])
                .collect(),
        );
        let machines = table(
            Schema::new(
                "machines",
                vec![
                    Column::not_null("machine_id", DataType::Int),
                    Column::new("arch", DataType::Text),
                ],
            )
            .with_primary_key("machine_id"),
            (0..4)
                .map(|i| vec![Value::Int(i), Value::Text("x86".into())])
                .collect(),
        );
        let mut cat = Catalog::new();
        cat.insert("jobs".into(), jobs);
        cat.insert("matches".into(), matches);
        cat.insert("machines".into(), machines);
        cat
    }

    fn select_stmt(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn analyze_collects_exact_stats() {
        let cat = catalog();
        let stats = analyze_table(cat.get("jobs").unwrap());
        assert_eq!(stats.rows, 100);
        let owner = stats.column("owner").unwrap();
        assert_eq!(owner.distinct, 10);
        assert_eq!(owner.null_count, 0);
        let job_id = stats.column("job_id").unwrap();
        assert_eq!(job_id.distinct, 100);
        assert_eq!(job_id.min, Value::Int(0));
        assert_eq!(job_id.max, Value::Int(99));
        assert_eq!(stats.column("nope"), None);
    }

    #[test]
    fn analyze_counts_nulls_and_handles_empty_tables() {
        let t = table(
            Schema::new("t", vec![Column::new("a", DataType::Int)]),
            vec![vec![Value::Null], vec![Value::Int(1)], vec![Value::Null]],
        );
        let stats = analyze_table(&t);
        assert_eq!(stats.rows, 3);
        let a = stats.column("a").unwrap();
        assert_eq!(a.null_count, 2);
        assert_eq!(a.distinct, 1);
        assert_eq!(a.min, Value::Int(1));

        let empty = table(Schema::new("e", vec![Column::new("a", DataType::Int)]), vec![]);
        let stats = analyze_table(&empty);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.column("a").unwrap().min, Value::Null);
    }

    #[test]
    fn choose_access_prefers_unique_point_over_scan() {
        let cat = catalog();
        let jobs = cat.get("jobs").unwrap();
        let stmt = select_stmt("SELECT * FROM jobs WHERE job_id = 7");
        let plan = choose_access(jobs, stmt.filter.as_ref());
        assert_eq!(
            plan.path,
            AccessPath::Point {
                column: "job_id".into(),
                unique: true
            }
        );
        assert_eq!(plan.est_rows, 1.0);
    }

    #[test]
    fn choose_access_prefers_more_selective_index() {
        let cat = catalog();
        let jobs = cat.get("jobs").unwrap();
        // Both state (2 distinct) and job_id (unique) are pinned: the unique
        // index wins regardless of index declaration order.
        let stmt = select_stmt("SELECT * FROM jobs WHERE state = 'idle' AND job_id = 3");
        let plan = choose_access(jobs, stmt.filter.as_ref());
        assert!(matches!(plan.path, AccessPath::Point { ref column, .. } if column == "job_id"));
        // Range beats scan, loses to point.
        let stmt = select_stmt("SELECT * FROM jobs WHERE job_id > 50");
        let plan = choose_access(jobs, stmt.filter.as_ref());
        assert!(matches!(plan.path, AccessPath::Range { ref column } if column == "job_id"));
        // Unindexed predicate: full scan.
        let stmt = select_stmt("SELECT * FROM jobs WHERE owner = 'owner1'");
        let plan = choose_access(jobs, stmt.filter.as_ref());
        assert_eq!(plan.path, AccessPath::Scan);
        assert_eq!(plan.est_rows, 100.0);
    }

    #[test]
    fn planner_orders_smallest_build_side_first() {
        let cat = catalog();
        // Syntactically matches (100 rows) joins before machines (4 rows);
        // the planner flips them.
        let stmt = select_stmt(
            "SELECT * FROM jobs \
             JOIN matches ON jobs.job_id = matches.job_id \
             JOIN machines ON matches.machine_id = machines.machine_id",
        );
        let plan = plan_select(&cat, &stmt, true).unwrap();
        assert_eq!(plan.steps.len(), 2);
        // machines cannot be placed first (its ON references matches), so
        // ordering only kicks in when both are placeable — here the join
        // graph forces matches first. Use a star-shaped query instead:
        let stmt = select_stmt(
            "SELECT * FROM matches \
             JOIN jobs ON matches.job_id = jobs.job_id \
             JOIN machines ON matches.machine_id = machines.machine_id",
        );
        let plan = plan_select(&cat, &stmt, true).unwrap();
        assert_eq!(plan.steps[0].table, "machines", "smallest build side first");
        assert_eq!(plan.steps[1].table, "jobs");
        assert!(plan.reordered);
        // Without reordering the syntactic order is kept.
        let plan = plan_select(&cat, &stmt, false).unwrap();
        assert_eq!(plan.steps[0].table, "jobs");
        assert!(!plan.reordered);
    }

    #[test]
    fn pushdown_shrinks_build_estimates_and_marks_param_builds_uncacheable() {
        let cat = catalog();
        let stmt = select_stmt(
            "SELECT * FROM matches JOIN jobs ON matches.job_id = jobs.job_id \
             WHERE jobs.job_id = 3 AND matches.machine_id > 1",
        );
        let plan = plan_select(&cat, &stmt, true).unwrap();
        assert!(plan.base_pushdown.is_some(), "matches conjunct pushed to base");
        let step = &plan.steps[0];
        assert_eq!(step.table, "jobs");
        assert!(step.pushdown.is_some());
        assert!(
            matches!(step.access.path, AccessPath::Point { .. }),
            "pushed equality turns the build into a point lookup"
        );
        assert!(step.cacheable);

        let stmt = select_stmt(
            "SELECT * FROM matches JOIN jobs ON matches.job_id = jobs.job_id \
             WHERE jobs.state = ?",
        );
        let plan = plan_select(&cat, &stmt, true).unwrap();
        assert!(!plan.steps[0].cacheable, "param-dependent build must rebuild");
    }

    #[test]
    fn non_equi_on_plans_nested_loop() {
        let cat = catalog();
        let stmt = select_stmt(
            "SELECT * FROM jobs JOIN matches ON jobs.job_id < matches.job_id",
        );
        let plan = plan_select(&cat, &stmt, true).unwrap();
        assert_eq!(plan.steps[0].strategy, JoinStrategy::NestedLoop);
        // Compound ON predicates also fall back to nested loop.
        let stmt = select_stmt(
            "SELECT * FROM jobs JOIN matches \
             ON jobs.job_id = matches.job_id AND matches.machine_id > 1",
        );
        let plan = plan_select(&cat, &stmt, true).unwrap();
        assert_eq!(plan.steps[0].strategy, JoinStrategy::NestedLoop);
    }

    #[test]
    fn explain_renders_operators_and_estimates() {
        let cat = catalog();
        let stmt = select_stmt(
            "SELECT jobs.owner FROM matches \
             JOIN jobs ON matches.job_id = jobs.job_id \
             JOIN machines ON matches.machine_id = machines.machine_id \
             WHERE machines.arch = 'x86' ORDER BY jobs.owner LIMIT 5",
        );
        let plan = plan_select(&cat, &stmt, true).unwrap();
        let r = explain_result(&plan, &stmt, None);
        assert_eq!(r.column_names(), vec!["step", "operator", "detail", "est_rows"]);
        let ops: Vec<String> = r
            .rows
            .iter()
            .map(|row| row.get(1).to_string())
            .collect();
        assert!(ops[0].contains("Access(matches)"), "{ops:?}");
        assert!(ops.iter().any(|o| o.contains("HashJoin(machines)")));
        assert!(ops.last().unwrap().contains("Output"));
        // EXPLAIN ANALYZE adds actual columns.
        let r = explain_result(&plan, &stmt, Some(&PlanProfile::default()));
        assert_eq!(
            r.column_names(),
            vec!["step", "operator", "detail", "est_rows", "actual_rows", "time_us"]
        );
    }

    #[test]
    fn unknown_table_errors_at_plan_time() {
        let cat = catalog();
        let stmt = select_stmt("SELECT * FROM nope");
        assert!(plan_select(&cat, &stmt, true).is_err());
    }

    #[test]
    fn cached_build_validity_tracks_version_and_snapshot() {
        let cat = catalog();
        let jobs = cat.get("jobs").unwrap();
        let vis = Snapshot::latest();
        let build = CachedBuild {
            table_version: jobs.version(),
            snapshot: vis.clone(),
            map: HashMap::new(),
        };
        assert!(build.valid_for(jobs, vis));
        let other = Snapshot {
            high: vis.high.wrapping_sub(1),
            ..vis.clone()
        };
        assert!(!build.valid_for(jobs, &other));
    }
}
