//! Typed conversions between Rust values and the SQL surface.
//!
//! This module is the boundary layer of the typed client API:
//!
//! * [`IntoParams`] turns a tuple of ordinary Rust values into the positional
//!   parameter bindings of a prepared statement, so call sites write
//!   `session.query(&stmt, (job_id, "idle"))` instead of hand-building
//!   `&[Value::Int(..), Value::from(..)]` slices;
//! * [`FromValue`] decodes one [`Value`] into a concrete Rust type (with
//!   `Option<T>` mapping SQL NULL to `None`);
//! * [`RowView`] pairs a result row with its output column names, resolving
//!   `row.get("col")` against the interned `Arc<str>` names the executor
//!   shares with the table schema;
//! * [`FromRow`] decodes a whole row into a struct, powering
//!   [`Session::query_as`](crate::Session::query_as) and
//!   [`QueryResult::decode`](crate::QueryResult::decode);
//! * [`ToStatement`] lets the session API accept either SQL text (routed
//!   through the statement cache) or an already-prepared handle.

use crate::db::{Database, Prepared};
use crate::error::{Error, Result};
use crate::tuple::Row;
use crate::value::Value;
use std::sync::Arc;

// --- parameter binding -------------------------------------------------------

/// A set of positional parameter values for a prepared statement.
///
/// Implemented for tuples of up to eight `Into<Value>` types (including the
/// empty tuple for statements with no placeholders), and for `Vec<Value>` /
/// `&[Value]` when the binding count is only known at runtime (as in the
/// entity layer's dynamically shaped statements).
pub trait IntoParams {
    /// Converts into the positional binding list.
    fn into_params(self) -> Vec<Value>;
}

impl IntoParams for Vec<Value> {
    fn into_params(self) -> Vec<Value> {
        self
    }
}

impl IntoParams for &[Value] {
    fn into_params(self) -> Vec<Value> {
        self.to_vec()
    }
}

impl<const N: usize> IntoParams for [Value; N] {
    fn into_params(self) -> Vec<Value> {
        self.into()
    }
}

macro_rules! impl_into_params_for_tuple {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Into<Value>),*> IntoParams for ($($name,)*) {
            fn into_params(self) -> Vec<Value> {
                vec![$(self.$idx.into()),*]
            }
        }
    };
}

impl IntoParams for () {
    fn into_params(self) -> Vec<Value> {
        Vec::new()
    }
}
impl_into_params_for_tuple!(A: 0);
impl_into_params_for_tuple!(A: 0, B: 1);
impl_into_params_for_tuple!(A: 0, B: 1, C: 2);
impl_into_params_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_into_params_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_into_params_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_into_params_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_into_params_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

// --- value decoding ----------------------------------------------------------

/// Decodes one SQL [`Value`] into a concrete Rust type.
///
/// Numeric decoding follows the engine's coercion rules: `i64` accepts
/// timestamps, `f64` accepts integers. `Option<T>` decodes SQL NULL to
/// `None`; every non-`Option` type reports NULL as a type error rather than
/// inventing a default.
pub trait FromValue: Sized {
    /// Decodes the value, or reports why it does not fit.
    fn from_value(value: &Value) -> Result<Self>;
}

impl FromValue for Value {
    fn from_value(value: &Value) -> Result<Self> {
        Ok(value.clone())
    }
}

impl FromValue for i64 {
    fn from_value(value: &Value) -> Result<Self> {
        value.as_int()
    }
}

impl FromValue for i32 {
    fn from_value(value: &Value) -> Result<Self> {
        let wide = value.as_int()?;
        i32::try_from(wide)
            .map_err(|_| Error::type_err(format!("{wide} does not fit in an i32")))
    }
}

impl FromValue for u32 {
    fn from_value(value: &Value) -> Result<Self> {
        let wide = value.as_int()?;
        u32::try_from(wide)
            .map_err(|_| Error::type_err(format!("{wide} does not fit in a u32")))
    }
}

impl FromValue for u64 {
    fn from_value(value: &Value) -> Result<Self> {
        let wide = value.as_int()?;
        u64::try_from(wide)
            .map_err(|_| Error::type_err(format!("{wide} does not fit in a u64")))
    }
}

impl FromValue for f64 {
    fn from_value(value: &Value) -> Result<Self> {
        value.as_double()
    }
}

impl FromValue for bool {
    fn from_value(value: &Value) -> Result<Self> {
        value.as_bool()
    }
}

impl FromValue for String {
    fn from_value(value: &Value) -> Result<Self> {
        value.as_text().map(str::to_string)
    }
}

impl<T: FromValue> FromValue for Option<T> {
    fn from_value(value: &Value) -> Result<Self> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

// --- row views and typed row decoding ----------------------------------------

/// Resolves an output column name to its ordinal, case-insensitively and
/// accepting `col` for a qualified output column named `table.col` (as long
/// as the suffix is unambiguous).
pub(crate) fn resolve_column(columns: &[Arc<str>], column: &str) -> Option<usize> {
    let want = column.to_ascii_lowercase();
    if let Some(i) = columns.iter().position(|c| c.eq_ignore_ascii_case(&want)) {
        return Some(i);
    }
    let suffix = format!(".{want}");
    let mut found = None;
    for (i, c) in columns.iter().enumerate() {
        if c.to_ascii_lowercase().ends_with(&suffix) {
            if found.is_some() {
                return None;
            }
            found = Some(i);
        }
    }
    found
}

/// One result row paired with its output column names: the input to
/// [`FromRow`] decoding and the home of by-name access.
///
/// The column names are the interned `Arc<str>`s the executor shares with the
/// table schema, so resolving a name compares against the same strings the
/// catalog holds — no per-row name copies exist anywhere on this path.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    columns: &'a [Arc<str>],
    row: &'a Row,
}

impl<'a> RowView<'a> {
    /// Creates a view over `row` with the given output columns.
    pub fn new(columns: &'a [Arc<str>], row: &'a Row) -> Self {
        RowView { columns, row }
    }

    /// Decodes the value in `column` (by name, case-insensitive, accepting
    /// the unqualified form of a qualified output name). Unknown columns are
    /// a [`Error::NotFound`]; NULL in a non-`Option` target is a type error.
    pub fn get<T: FromValue>(&self, column: &str) -> Result<T> {
        let idx = resolve_column(self.columns, column)
            .ok_or_else(|| Error::not_found(format!("output column {column}")))?;
        T::from_value(self.row.get(idx)).map_err(|e| {
            Error::type_err(format!("column {column}: {e}"))
        })
    }

    /// Decodes the value at ordinal `idx` (for tuple decoding and generic
    /// consumers that iterate the column list themselves).
    pub fn get_at<T: FromValue>(&self, idx: usize) -> Result<T> {
        if idx >= self.row.arity() {
            return Err(Error::not_found(format!("output column ordinal {idx}")));
        }
        T::from_value(self.row.get(idx))
            .map_err(|e| Error::type_err(format!("column ordinal {idx}: {e}")))
    }

    /// The output column names, in projection order.
    pub fn columns(&self) -> &'a [Arc<str>] {
        self.columns
    }

    /// The underlying row.
    pub fn raw(&self) -> &'a Row {
        self.row
    }
}

/// Decodes one result row into a typed value.
///
/// Implement this for the hot entities a service decodes repeatedly; the
/// by-name [`RowView::get`] calls make the mapping robust against projection
/// reordering, unlike positional indexing.
///
/// ```
/// use relstore::{Database, FromRow, Result, RowView};
///
/// struct Job { id: i64, owner: String, runtime_ms: Option<i64> }
///
/// impl FromRow for Job {
///     fn from_row(row: &RowView<'_>) -> Result<Self> {
///         Ok(Job {
///             id: row.get("job_id")?,
///             owner: row.get("owner")?,
///             runtime_ms: row.get("runtime_ms")?,
///         })
///     }
/// }
///
/// let db = Database::new();
/// db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT, runtime_ms INT)")?;
/// db.execute("INSERT INTO jobs VALUES (1, 'alice', NULL)")?;
/// let jobs: Vec<Job> = db.session().query_as("SELECT * FROM jobs", ())?;
/// assert_eq!(jobs[0].owner, "alice");
/// assert_eq!(jobs[0].runtime_ms, None);
/// # Ok::<(), relstore::Error>(())
/// ```
pub trait FromRow: Sized {
    /// Decodes the row, or reports which column did not fit.
    fn from_row(row: &RowView<'_>) -> Result<Self>;
}

macro_rules! impl_from_row_for_tuple {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: FromValue),*> FromRow for ($($name,)*) {
            fn from_row(row: &RowView<'_>) -> Result<Self> {
                Ok(($(row.get_at::<$name>($idx)?,)*))
            }
        }
    };
}

impl_from_row_for_tuple!(A: 0);
impl_from_row_for_tuple!(A: 0, B: 1);
impl_from_row_for_tuple!(A: 0, B: 1, C: 2);
impl_from_row_for_tuple!(A: 0, B: 1, C: 2, D: 3);

// --- statement sources -------------------------------------------------------

/// A statement source for the session API: either SQL text (resolved through
/// the database's statement cache) or an already-[`Prepared`] handle (no
/// lookup at all — the cached AST is shared).
pub trait ToStatement {
    /// Resolves to a prepared statement against `db`.
    fn to_prepared(&self, db: &Database) -> Result<Prepared>;
}

impl ToStatement for Prepared {
    fn to_prepared(&self, _db: &Database) -> Result<Prepared> {
        Ok(self.clone())
    }
}

impl ToStatement for &Prepared {
    fn to_prepared(&self, _db: &Database) -> Result<Prepared> {
        Ok((*self).clone())
    }
}

impl ToStatement for &str {
    fn to_prepared(&self, db: &Database) -> Result<Prepared> {
        db.prepare(self)
    }
}

impl ToStatement for String {
    fn to_prepared(&self, db: &Database) -> Result<Prepared> {
        db.prepare(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_bind_in_order() {
        let params = (7i64, "idle", 2.5f64, true).into_params();
        assert_eq!(
            params,
            vec![
                Value::Int(7),
                Value::Text("idle".into()),
                Value::Double(2.5),
                Value::Bool(true)
            ]
        );
        assert!(().into_params().is_empty());
        assert_eq!((Value::Null,).into_params(), vec![Value::Null]);
        assert_eq!(
            (Some(1i64), Option::<i64>::None).into_params(),
            vec![Value::Int(1), Value::Null]
        );
        // Runtime-shaped bindings pass through unchanged.
        let dynamic = vec![Value::Int(1), Value::Text("x".into())];
        assert_eq!(dynamic.clone().into_params(), dynamic);
        assert_eq!(dynamic.as_slice().into_params(), dynamic);
    }

    #[test]
    fn from_value_decodes_and_rejects() {
        assert_eq!(i64::from_value(&Value::Int(4)).unwrap(), 4);
        assert_eq!(i64::from_value(&Value::Timestamp(9)).unwrap(), 9);
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
        assert_eq!(String::from_value(&Value::Text("a".into())).unwrap(), "a");
        assert!(bool::from_value(&Value::Bool(true)).unwrap());
        assert_eq!(i32::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(i32::from_value(&Value::Int(i64::MAX)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        // NULL only fits Option targets.
        assert!(i64::from_value(&Value::Null).is_err());
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i64>::from_value(&Value::Int(3)).unwrap(), Some(3));
        assert_eq!(Value::from_value(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn row_view_resolves_names_like_query_results() {
        let columns: Vec<Arc<str>> = vec!["jobs.job_id".into(), "state".into()];
        let row = Row::new(vec![Value::Int(1), Value::Text("idle".into())]);
        let view = RowView::new(&columns, &row);
        assert_eq!(view.get::<i64>("job_id").unwrap(), 1);
        assert_eq!(view.get::<i64>("JOBS.JOB_ID").unwrap(), 1);
        assert_eq!(view.get::<String>("state").unwrap(), "idle");
        assert_eq!(view.get_at::<i64>(0).unwrap(), 1);
        assert!(view.get::<i64>("missing").is_err());
        assert!(view.get_at::<i64>(5).is_err());
        assert_eq!(view.columns().len(), 2);
        assert_eq!(view.raw().arity(), 2);
    }

    #[test]
    fn tuple_from_row_decodes_positionally() {
        let columns: Vec<Arc<str>> = vec!["a".into(), "b".into()];
        let row = Row::new(vec![Value::Int(1), Value::Text("x".into())]);
        let view = RowView::new(&columns, &row);
        let (a, b): (i64, String) = FromRow::from_row(&view).unwrap();
        assert_eq!((a, b.as_str()), (1, "x"));
        assert!(<(i64, i64, i64)>::from_row(&view).is_err());
    }
}
